"""Fig. 21: concurrent-stride workload — mice and background FCTs."""

from conftest import emit, run_once
from repro.experiments import fig21_concurrent_stride as exp
from repro.experiments.report import format_cdf
from repro.metrics import percentile


def test_bench_fig21(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run())
    emit(capsys, "Fig. 21a — mice (16 KB) FCT (ms)\n" + "\n".join(
        format_cdf(result[k]["mice_fcts"], f"mice {k}", unit="ms", scale=1e3)
        for k in result))
    emit(capsys, "Fig. 21b — background FCT (s)\n" + "\n".join(
        format_cdf(result[k]["background_fcts"], f"bg {k}", unit="s")
        for k in result))
    cubic = result["cubic"]
    acdc = result["acdc"]
    dctcp = result["dctcp"]
    assert all(v["mice_done"] > 0.95 for v in result.values())
    # Mice: AC/DC (like DCTCP) cuts the CUBIC median and slashes the tail.
    assert percentile(acdc["mice_fcts"], 50) < 0.5 * percentile(
        cubic["mice_fcts"], 50)
    assert percentile(acdc["mice_fcts"], 99.9) < 0.3 * percentile(
        cubic["mice_fcts"], 99.9)
    # Background transfers are not hurt.
    assert percentile(acdc["background_fcts"], 50) <= 1.2 * percentile(
        cubic["background_fcts"], 50)
