"""Engine microbenchmarks — the repo's tracked perf trajectory.

Unlike the figure benchmarks (which regenerate the paper's evaluation),
this suite measures the *simulator itself*: raw calendar throughput
(events/sec), timer-churn throughput under lazy deletion (the RTO
pattern: most scheduled events are cancelled before firing), and
end-to-end simulated-packets/sec on the dumbbell and incast topologies.

Every test records its measurement, and a session-scoped fixture writes
them all to ``BENCH_ENGINE.json`` (``REPRO_BENCH_DIR`` overrides the
directory) so each future PR has a perf baseline to move.  Set
``REPRO_BENCH_QUICK=1`` for the CI perf-smoke job's reduced scale.

Wall-clock reads are fine here: benchmarks time the host, not the
simulation (repro-lint's RL003 governs ``src/`` only).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.common import ACDC, DCTCP
from repro.experiments.runners import run_dumbbell, run_incast
from repro.sim import Simulator

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Very loose floors — they catch order-of-magnitude regressions (an
#: accidentally quadratic hot path), not CI-runner jitter.
MIN_EVENTS_PER_SEC = 20_000.0
MIN_PACKETS_PER_SEC = 2_000.0

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def bench_report():
    """Collect every measurement and write BENCH_ENGINE.json at the end."""
    yield
    if not RESULTS:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    payload = {
        "schema": "repro-bench-engine/v1",
        "quick": QUICK,
        "unix_time": time.time(),
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "results": RESULTS,
    }
    path = out_dir / "BENCH_ENGINE.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _record(name: str, **fields) -> None:
    RESULTS[name] = fields


# ---------------------------------------------------------------------------
# Raw calendar throughput
# ---------------------------------------------------------------------------
def test_bench_event_throughput(capsys):
    """events/sec through the hot loop: K interleaved periodic chains."""
    sim = Simulator()
    total = 100_000 if QUICK else 1_000_000
    chains = 32
    per_chain = total // chains

    def tick(chain: int, remaining: int) -> None:
        if remaining:
            sim.schedule(1e-6 * (chain + 1), tick, chain, remaining - 1)

    for chain in range(chains):
        sim.schedule(0.0, tick, chain, per_chain - 1)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    rate = sim.events_processed / elapsed
    _record("event_throughput",
            events=sim.events_processed, seconds=elapsed,
            events_per_sec=rate)
    with capsys.disabled():
        print(f"\nengine event throughput: {rate:,.0f} events/s "
              f"({sim.events_processed} events in {elapsed:.3f}s)")
    assert sim.events_processed == chains * per_chain
    assert rate > MIN_EVENTS_PER_SEC


def test_bench_timer_churn(capsys):
    """The RTO pattern: nearly every scheduled timer is cancelled.

    Exercises lazy deletion end to end — free-list recycling of fired and
    cancelled events plus heap compaction once corpses dominate.
    """
    sim = Simulator()
    rounds = 20_000 if QUICK else 200_000

    state = {"pending": None, "n": 0}

    def on_ack() -> None:
        # Each "ACK" defuses the previous RTO and arms a new one.
        if state["pending"] is not None:
            state["pending"].cancel()
        state["n"] += 1
        if state["n"] < rounds:
            state["pending"] = sim.schedule(0.2, rto_fire)
            sim.schedule(1e-7, on_ack)

    def rto_fire() -> None:  # pragma: no cover - timers are cancelled
        raise AssertionError("cancelled RTO fired")

    sim.schedule(0.0, on_ack)
    start = time.perf_counter()
    # All ACK rounds land well before the first (never-cancelled, final)
    # RTO deadline at ~0.2, so nothing cancelled ever fires.
    sim.run(until=0.1)
    elapsed = time.perf_counter() - start
    scheduled = state["n"] * 2  # one RTO + one ACK per round
    rate = scheduled / elapsed
    _record("timer_churn",
            scheduled_events=scheduled, seconds=elapsed,
            events_per_sec=rate, heap_compactions=sim.heap_compactions,
            freelist_size=len(sim._free))
    with capsys.disabled():
        print(f"\nengine timer churn: {rate:,.0f} scheduled events/s, "
              f"{sim.heap_compactions} heap compactions, "
              f"free-list {len(sim._free)}")
    assert state["n"] == rounds
    # The cancelled-corpse fraction crossed the threshold at least once.
    assert sim.heap_compactions >= 1
    assert rate > MIN_EVENTS_PER_SEC


# ---------------------------------------------------------------------------
# End-to-end simulated-packet throughput
# ---------------------------------------------------------------------------
def _packets_and_events(result) -> tuple:
    topo = result.topology
    packets = sum(sw.total_tx_packets() for sw in topo.switches.values())
    return packets, result.sim.events_processed


def test_bench_dumbbell_packet_rate(capsys):
    """Simulated packets/sec on the Fig. 7a dumbbell under AC/DC."""
    duration = 0.02 if QUICK else 0.1
    start = time.perf_counter()
    result = run_dumbbell(ACDC, pairs=5, duration=duration, mtu=1500,
                          rate_bps=1e9, rtt_probe=False)
    elapsed = time.perf_counter() - start
    packets, events = _packets_and_events(result)
    _record("dumbbell_packet_rate",
            topology="dumbbell", scheme="acdc", packets=packets,
            events=events, seconds=elapsed,
            packets_per_sec=packets / elapsed,
            events_per_sec=events / elapsed)
    with capsys.disabled():
        print(f"\ndumbbell (acdc): {packets / elapsed:,.0f} simulated "
              f"packets/s, {events / elapsed:,.0f} events/s")
    assert packets > 0
    assert packets / elapsed > MIN_PACKETS_PER_SEC


def test_bench_incast_packet_rate(capsys):
    """Simulated packets/sec on the Fig. 18 incast star under DCTCP."""
    duration = 0.02 if QUICK else 0.1
    n = 8 if QUICK else 16
    start = time.perf_counter()
    result = run_incast(DCTCP, n_senders=n, duration=duration, mtu=1500)
    elapsed = time.perf_counter() - start
    packets, events = _packets_and_events(result)
    _record("incast_packet_rate",
            topology="incast", scheme="dctcp", senders=n, packets=packets,
            events=events, seconds=elapsed,
            packets_per_sec=packets / elapsed,
            events_per_sec=events / elapsed)
    with capsys.disabled():
        print(f"\nincast x{n} (dctcp): {packets / elapsed:,.0f} simulated "
              f"packets/s, {events / elapsed:,.0f} events/s")
    assert packets > 0
    assert packets / elapsed > MIN_PACKETS_PER_SEC
