"""Fig. 8 + §5.1 canonical numbers: dumbbell RTT CDF and throughput."""

from conftest import emit, run_once
from repro.experiments import fig08_dumbbell_rtt as exp
from repro.experiments.report import format_cdf, format_table


def test_bench_fig08(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.6))
    rows = [[k, v["avg_tput_gbps"], v["fairness"],
             v["rtt"]["p50"] * 1e6, v["rtt"]["p999"] * 1e6,
             v["drop_rate"] * 100]
            for k, v in result.items()]
    emit(capsys, format_table(
        ["scheme", "avg_gbps", "jain", "rtt_p50_us", "rtt_p999_us", "drop_%"],
        rows, title="Fig. 8 — dumbbell, 5 long-lived flows"))
    emit(capsys, "\n".join(
        format_cdf(result[k]["rtt_samples"], f"RTT {k}", unit="us", scale=1e6)
        for k in result))
    cubic, dctcp, acdc = (result[k] for k in ("cubic", "dctcp", "acdc"))
    # All three schemes share the bottleneck at ~2 Gb/s per flow.
    for v in result.values():
        assert 1.8 < v["avg_tput_gbps"] < 2.1
    # AC/DC tracks DCTCP's low RTT; CUBIC is an order of magnitude above.
    assert acdc["rtt"]["p50"] < 1.5 * dctcp["rtt"]["p50"]
    assert cubic["rtt"]["p50"] > 8 * dctcp["rtt"]["p50"]
    assert acdc["fairness"] > 0.99 and dctcp["fairness"] > 0.99
