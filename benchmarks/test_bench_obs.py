"""Telemetry-overhead benchmarks for the repro.obs layer.

The contract under test is the issue's acceptance bound: with tracing
OFF, the instrumented datapath (one ``is None`` test per hook) must stay
within a small tolerance of the committed ``BENCH_ENGINE.json``
packet-rate baseline.  The default tolerance is deliberately generous —
CI runners and the baseline host differ by far more than the hook cost —
and ``REPRO_OBS_TOL`` tightens it for a same-host check (the 2% bound
was verified locally with back-to-back A/B medians before the baseline
was committed).

A second, informational pass runs the same cell with a full
:class:`~repro.obs.ObsContext` attached and reports the traced-mode
slowdown; tracing is a debugging mode, so it gets a sanity assertion,
not a bound.

Wall-clock reads are fine here: benchmarks time the host, not the
simulation (repro-lint's RL003 governs ``src/`` only).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.common import ACDC, DCTCP
from repro.experiments.runners import run_dumbbell, run_incast
from repro.obs import ObsContext

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Allowed fractional regression vs the committed baseline.  Override
#: with REPRO_OBS_TOL (e.g. 0.05 for a same-host regression check).
TOLERANCE = float(os.environ.get("REPRO_OBS_TOL", "0.5"))

#: The committed perf baseline; REPRO_BENCH_BASELINE overrides the path.
BASELINE_PATH = Path(os.environ.get(
    "REPRO_BENCH_BASELINE",
    Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json"))

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def bench_report():
    """Write every measurement to BENCH_OBS.json at session end."""
    yield
    if not RESULTS:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    payload = {
        "schema": "repro-bench-obs/v1",
        "quick": QUICK,
        "tolerance": TOLERANCE,
        "results": RESULTS,
    }
    path = out_dir / "BENCH_OBS.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _baseline_rate(key: str) -> float:
    if not BASELINE_PATH.exists():
        pytest.skip(f"no perf baseline at {BASELINE_PATH}")
    data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    result = data.get("results", {}).get(key)
    if not result or "packets_per_sec" not in result:
        pytest.skip(f"baseline has no {key} measurement")
    return float(result["packets_per_sec"])


def _dumbbell(obs=None):
    duration = 0.02 if QUICK else 0.1
    start = time.perf_counter()
    result = run_dumbbell(ACDC, pairs=5, duration=duration, mtu=1500,
                          rate_bps=1e9, rtt_probe=False, obs=obs)
    elapsed = time.perf_counter() - start
    packets = sum(sw.total_tx_packets()
                  for sw in result.topology.switches.values())
    return packets / elapsed, result


def _incast(obs=None):
    duration = 0.02 if QUICK else 0.1
    n = 8 if QUICK else 16
    start = time.perf_counter()
    result = run_incast(DCTCP, n_senders=n, duration=duration, mtu=1500,
                        obs=obs)
    elapsed = time.perf_counter() - start
    packets = sum(sw.total_tx_packets()
                  for sw in result.topology.switches.values())
    return packets / elapsed, result


def _best_of(fn, reps: int = 3) -> float:
    return max(fn()[0] for _ in range(reps))


# ---------------------------------------------------------------------------
# Tracing OFF: the hooks must be free
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("key,fn", [
    ("dumbbell_packet_rate", _dumbbell),
    ("incast_packet_rate", _incast),
])
def test_bench_tracing_off_overhead(key, fn, capsys):
    baseline = _baseline_rate(key)
    rate = _best_of(fn)
    ratio = rate / baseline
    RESULTS[f"tracing_off_{key}"] = {
        "packets_per_sec": rate, "baseline_packets_per_sec": baseline,
        "ratio": ratio,
    }
    with capsys.disabled():
        print(f"\ntracing-off {key}: {rate:,.0f} pk/s vs baseline "
              f"{baseline:,.0f} ({(ratio - 1) * 100:+.1f}%)")
    assert ratio >= 1.0 - TOLERANCE, (
        f"tracing-off datapath regressed {(1 - ratio) * 100:.1f}% vs "
        f"baseline (tolerance {TOLERANCE * 100:.0f}%)")


# ---------------------------------------------------------------------------
# Tracing ON: informational — debugging mode, no bound
# ---------------------------------------------------------------------------
def test_bench_traced_dumbbell_informational(capsys):
    off_rate = _best_of(_dumbbell, reps=1)
    obs = ObsContext()
    on_rate, result = _dumbbell(obs=obs)
    summary = obs.bus.summary()
    assert summary["recorded"] > 0, "traced run produced no events"
    RESULTS["traced_dumbbell"] = {
        "packets_per_sec": on_rate,
        "tracing_off_packets_per_sec": off_rate,
        "slowdown": off_rate / on_rate if on_rate else float("inf"),
        "events_recorded": summary["recorded"],
        "events_emitted": summary["emitted"],
    }
    with capsys.disabled():
        print(f"\ntraced dumbbell: {on_rate:,.0f} pk/s "
              f"({off_rate / on_rate:.2f}x slowdown, "
              f"{summary['recorded']} events recorded "
              f"of {summary['emitted']} emitted)")
