"""Table 1: AC/DC works with many guest congestion-control variants."""

from conftest import emit, run_once
from repro.experiments import table1_cc_variants as exp
from repro.experiments.report import format_table


def test_bench_table1(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.4))
    for mtu, rows_data in result.items():
        rows = [[r["variant"], r["rtt_p50_us"], r["rtt_p99_us"],
                 r["avg_tput_gbps"], r["fairness"]] for r in rows_data]
        emit(capsys, format_table(
            ["variant", "rtt_p50_us", "rtt_p99_us", "avg_gbps", "jain"],
            rows, title=f"Table 1 — MTU {mtu}"))
        by_name = {r["variant"]: r for r in rows_data}
        dctcp_star = by_name["DCTCP*"]
        cubic_star = by_name["CUBIC*"]
        # CUBIC* is the outlier: big RTT, worse fairness.
        assert cubic_star["rtt_p50_us"] > 5 * dctcp_star["rtt_p50_us"]
        # Every guest stack under AC/DC tracks DCTCP*.
        for name, row in by_name.items():
            if not name.startswith("AC/DC"):
                continue
            assert row["rtt_p50_us"] < 2.0 * dctcp_star["rtt_p50_us"], name
            assert abs(row["avg_tput_gbps"]
                       - dctcp_star["avg_tput_gbps"]) < 0.2, name
            # Vegas at 1.5 KB MTU self-limits below AC/DC's enforcement
            # point (its 4-packet backlog target x 5 flows stays under K,
            # so no marks ever bind RWND) and keeps its own ~0.94
            # fairness; every other guest/MTU reaches the paper's 0.99.
            # See EXPERIMENTS.md.
            floor = 0.90 if (name == "AC/DC(vegas)" and mtu == 1500) else 0.97
            assert row["fairness"] > floor, name
