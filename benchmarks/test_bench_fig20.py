"""Fig. 20: RTT through the most congested port, ~all ports congested."""

from conftest import emit, run_once
from repro.experiments import fig20_all_ports_congested as exp
from repro.experiments.report import format_table


def test_bench_fig20(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.5))
    rows = [[k, v["rtt_ms"].get("p50"), v["rtt_ms"].get("p95"),
             v["rtt_ms"].get("p99"), v["rtt_ms"].get("p999"),
             v["drop_rate_pct"], v["fairness"]]
            for k, v in result.items()]
    emit(capsys, format_table(
        ["scheme", "p50_ms", "p95_ms", "p99_ms", "p999_ms", "drop_%",
         "jain"],
        rows, title="Fig. 20 — probe RTT with ~all switch ports congested"))
    cubic, dctcp, acdc = (result[k] for k in ("cubic", "dctcp", "acdc"))
    # CUBIC under buffer pressure: order-of-magnitude RTT inflation and
    # a severely lossy hottest port.
    assert cubic["rtt_ms"]["p50"] > 10 * acdc["rtt_ms"]["p50"]
    assert cubic["rtt_ms"]["p999"] > 10 * acdc["rtt_ms"]["p999"]
    assert cubic["drop_rate_pct"] > 0.5
    # AC/DC keeps the shared buffer calm: zero drops.
    assert acdc["drop_rate_pct"] == 0.0
