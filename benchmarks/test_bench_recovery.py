"""Durability-overhead benchmarks for repro.recovery.

Two contracts, one measurement file:

* **Snapshotting off is free.**  A :class:`~repro.recovery.DurableService`
  with ``checkpoint_every=0`` adds only a supervisor-level epoch loop
  around the same engine run; its wall-clock must stay within a small
  tolerance of the plain :class:`~repro.control.service.Service` path.
  The default tolerance is deliberately generous — CI runners are noisy —
  and ``REPRO_RECOVERY_TOL`` tightens it for a same-host check (the
  issue's 2% bound was verified locally with back-to-back A/B medians).
* **Snapshot cost is measured, not guessed.**  With checkpointing on,
  per-epoch snapshot size and write latency (and the restore+replay
  latency) are recorded to ``BENCH_RECOVERY.json`` so future PRs that
  grow the pickled graph see the trend.

Wall-clock reads are fine here: benchmarks time the host, not the
simulation (repro-lint's RL003 governs ``src/`` only).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.control.service import Service, ServiceConfig
from repro.recovery import DurableService

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Allowed fractional slowdown of the snapshotting-off supervisor vs the
#: plain service path.  Override with REPRO_RECOVERY_TOL (e.g. 0.02 for
#: the same-host 2% check).
TOLERANCE = float(os.environ.get("REPRO_RECOVERY_TOL", "0.25"))

CONFIG = dict(n_hosts=4, epoch_s=0.01, arrival_rate_hz=400.0,
              msg_sizes=[16_384, 65_536], msg_weights=[3, 1],
              peers=2, seed=5, guard=True)
EPOCHS = 3 if QUICK else 6

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def bench_report():
    """Write every measurement to BENCH_RECOVERY.json at session end."""
    yield
    if not RESULTS:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    payload = {
        "schema": "repro-bench-recovery/v1",
        "quick": QUICK,
        "tolerance": TOLERANCE,
        "results": RESULTS,
    }
    path = out_dir / "BENCH_RECOVERY.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _plain_run() -> float:
    start = time.perf_counter()
    Service(ServiceConfig(**CONFIG)).run(EPOCHS)
    return time.perf_counter() - start


def _supervised_run(root, checkpoint_every: int) -> tuple:
    start = time.perf_counter()
    supervisor = DurableService(config=CONFIG, root=root,
                                checkpoint_every=checkpoint_every)
    supervisor.run(EPOCHS)
    elapsed = time.perf_counter() - start
    supervisor.close()
    return elapsed, supervisor


def test_bench_snapshotting_off_overhead(tmp_path, capsys):
    """checkpoint_every=0: the supervisor must cost (close to) nothing.

    The A/B pairs are interleaved (plain, supervised, plain, ...) and
    compared by median: back-to-back batches pick up host frequency
    drift that dwarfs the actual supervisor cost.
    """
    reps = 3 if QUICK else 5
    plain_samples, supervised_samples = [], []
    for i in range(reps):
        plain_samples.append(_plain_run())
        supervised_samples.append(
            _supervised_run(tmp_path / f"off-{i}", checkpoint_every=0)[0])
    plain = statistics.median(plain_samples)
    supervised = statistics.median(supervised_samples)
    overhead = supervised / plain - 1.0
    RESULTS["snapshotting_off"] = {
        "plain_s": plain, "supervised_s": supervised, "overhead": overhead,
    }
    with capsys.disabled():
        print(f"\nsnapshotting-off supervisor: {supervised:.3f}s vs plain "
              f"{plain:.3f}s ({overhead * 100:+.1f}%)")
    assert overhead <= TOLERANCE, (
        f"snapshotting-off supervisor is {overhead * 100:.1f}% slower than "
        f"the plain service path (tolerance {TOLERANCE * 100:.0f}%)")


def test_bench_snapshot_size_and_latency(tmp_path, capsys):
    """Per-epoch checkpoint cost: payload bytes and write seconds."""
    elapsed, supervisor = _supervised_run(tmp_path, checkpoint_every=1)
    stats = supervisor.stats
    assert stats.snapshots == EPOCHS
    mean_s = stats.snapshot_s_total / stats.snapshots
    mean_bytes = stats.snapshot_bytes_total / stats.snapshots
    RESULTS["snapshot_cost"] = {
        "epochs": EPOCHS,
        "run_s": elapsed,
        "snapshot_bytes_last": stats.snapshot_bytes_last,
        "snapshot_bytes_mean": mean_bytes,
        "snapshot_s_mean": mean_s,
        "snapshot_s_total": stats.snapshot_s_total,
        "snapshot_share_of_run": stats.snapshot_s_total / elapsed,
    }
    with capsys.disabled():
        print(f"\nsnapshot cost: {mean_bytes / 1024:.0f} KiB and "
              f"{mean_s * 1e3:.1f} ms per epoch "
              f"({stats.snapshot_s_total / elapsed * 100:.1f}% of the run)")
    # Sanity, not a bound: a snapshot should be far smaller than "the
    # whole process" and far faster than the epoch it closes.
    assert 0 < stats.snapshot_bytes_last < 64 * 1024 * 1024


def test_bench_restore_latency(tmp_path, capsys):
    """Cold restore+replay from the newest checkpoint."""
    _supervised_run(tmp_path, checkpoint_every=1)
    samples = []
    for _ in range(3):
        start = time.perf_counter()
        resumed = DurableService(root=tmp_path)
        samples.append(time.perf_counter() - start)
        assert resumed.restored_from is not None
        resumed.close()
    restore_s = statistics.median(samples)
    RESULTS["restore"] = {"restore_s": restore_s,
                          "restored_epoch": EPOCHS}
    with capsys.disabled():
        print(f"\nrestore+replay latency: {restore_s * 1e3:.1f} ms")
