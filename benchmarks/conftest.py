"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment once under pytest-benchmark (the timing of interest is the
simulation itself), prints the paper-shaped rows/series, and asserts the
qualitative shape (who wins, by roughly what factor).
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture.

    The experiments are deterministic and expensive; statistical timing
    over many rounds would measure the simulator, not the paper.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(capsys, text: str) -> None:
    """Print experiment output past pytest's capture."""
    with capsys.disabled():
        print()
        print(text)
