"""Chaos sweep: goodput degradation vs fault intensity, all schemes."""

from conftest import emit, run_once
from repro.experiments import chaos as exp
from repro.experiments.report import format_table


def test_bench_chaos(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(seed=0))
    rows = []
    for scheme, points in result.items():
        for p in points:
            rows.append([
                scheme, p["intensity"], round(p["goodput_gbps"], 3),
                f'{p["completed"]}/{p["flows"]}', p["injected_events"],
                p.get("resurrections", "-"), p.get("feedback_resyncs", "-"),
            ])
    emit(capsys, format_table(
        ["scheme", "intensity", "goodput_gbps", "done", "events",
         "resurrect", "resync"],
        rows, title="Chaos — goodput vs fault intensity (all injectors)"))

    for scheme, points in result.items():
        clean = points[0]
        assert clean["intensity"] == 0.0
        # Fault-free completion, near line rate, zero fault events.
        assert clean["completed"] == clean["flows"]
        assert clean["goodput_gbps"] > 8.0
        assert clean["injected_events"] == 0
        for p in points[1:]:
            # Ledger consistency: every injector activation is recorded,
            # per cause, and nothing else is.
            assert sum(p["fault_counts"].values()) == p["injected_events"]
            assert p["injected_events"] > 0
            assert all(n > 0 for n in p["fault_counts"].values())
            # Monotone headline: faults cost goodput.
            assert p["goodput_gbps"] < clean["goodput_gbps"]

    acdc = result["acdc"]
    for p in acdc[1:]:
        # The restart fired on two hosts and entries were rebuilt mid-flow.
        assert p["fault_counts"].get("vswitch_restart") == 2
        assert p["restarts"] == 2
        assert p["resurrections"] > 0
    # Datacenter-realistic fault rates (1-2%): AC/DC transfers still
    # complete — the vSwitch layer adds no new fragility vs plain OVS.
    for p in acdc:
        if 0.0 < p["intensity"] <= 0.02:
            assert p["completed"] == p["flows"]
