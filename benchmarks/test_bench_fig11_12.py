"""Fig. 11/12: CPU overhead — AC/DC adds < 1 percentage point."""

from conftest import emit, run_once
from repro.experiments import fig11_12_cpu_overhead as exp
from repro.experiments.report import format_table


def test_bench_fig11_12(benchmark, capsys):
    rows_data = run_once(
        benchmark,
        lambda: exp.run(counts=(100, 500, 1000, 5000, 10000), duration=0.12))
    rows = [[r["connections"],
             r["sender_baseline_pct"], r["sender_acdc_pct"],
             r["sender_delta_pp"],
             r["receiver_baseline_pct"], r["receiver_acdc_pct"],
             r["receiver_delta_pp"]]
            for r in rows_data]
    emit(capsys, format_table(
        ["conns", "snd_base_%", "snd_acdc_%", "snd_delta_pp",
         "rcv_base_%", "rcv_acdc_%", "rcv_delta_pp"],
        rows, title="Fig. 11/12 — CPU overhead, sender and receiver"))
    for r in rows_data:
        # The headline claim: less than one percentage point, every count.
        assert 0 <= r["sender_delta_pp"] < 1.0, r["connections"]
        assert 0 <= r["receiver_delta_pp"] < 1.0, r["connections"]
    # Baseline CPU grows with connection count (the paper's bar shape).
    senders = [r["sender_baseline_pct"] for r in rows_data]
    assert senders == sorted(senders)
