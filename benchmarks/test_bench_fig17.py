"""Fig. 17: AC/DC restores fairness across heterogeneous guest stacks."""

from conftest import emit, run_once
from repro.experiments import fig17_fairness_mixed_cc as exp
from repro.experiments.report import format_table


def test_bench_fig17(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(runs=2, duration=0.6))
    rows = []
    for label, data in result.items():
        for i, test in enumerate(data["tests"]):
            rows.append([label, i + 1, test["max"], test["min"],
                         test["mean"], test["median"], test["fairness"]])
    emit(capsys, format_table(
        ["config", "test", "max", "min", "mean", "median", "jain"],
        rows, title="Fig. 17 — all-DCTCP vs 5 different CCs under AC/DC"))
    acdc = result["acdc-mixed"]
    dctcp = result["all-dctcp"]
    # AC/DC over a heterogeneous mix tracks the all-DCTCP ideal.
    assert acdc["mean_fairness"] > 0.97
    assert abs(acdc["mean_fairness"] - dctcp["mean_fairness"]) < 0.03
    for test in acdc["tests"]:
        assert test["max"] - test["min"] < 0.8  # Gb/s spread stays small
