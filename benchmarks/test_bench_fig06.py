"""Fig. 6: bounding RWND controls throughput exactly like bounding CWND."""

import pytest

from conftest import emit, run_once
from repro.experiments import fig06_rwnd_vs_cwnd_clamp as exp
from repro.experiments.report import format_table


@pytest.mark.parametrize("mtu", [1500, 9000])
def test_bench_fig06(benchmark, capsys, mtu):
    result = run_once(benchmark, lambda: exp.run(mtu=mtu, duration=0.15))
    rows = []
    for c, r in zip(result["cwnd"], result["rwnd"]):
        rows.append([c["clamp_mss"], c["tput_gbps"], r["tput_gbps"]])
    emit(capsys, format_table(
        ["clamp_mss", "cwnd_clamp_gbps", "rwnd_clamp_gbps"], rows,
        title=f"Fig. 6 — throughput vs window clamp (MTU {mtu})"))
    # The two mechanisms must coincide at every point (the paper's claim).
    for c, r in zip(result["cwnd"], result["rwnd"]):
        assert r["tput_gbps"] == pytest.approx(c["tput_gbps"], rel=0.15), \
            c["clamp_mss"]
    # Monotone non-decreasing, saturating at the line rate.
    tputs = [c["tput_gbps"] for c in result["cwnd"]]
    assert all(b >= a - 0.2 for a, b in zip(tputs, tputs[1:]))
    assert tputs[-1] > 9.0
    assert tputs[0] < 3.0
