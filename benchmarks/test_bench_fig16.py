"""Fig. 16: CUBIC's latency in the coexistence trap, with/without AC/DC."""

from conftest import emit, run_once
from repro.experiments import fig15_16_ecn_coexistence as exp
from repro.experiments.report import format_cdf
from repro.metrics import percentile


def test_bench_fig16(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.8))
    emit(capsys, "Fig. 16 — CUBIC-side message RTT (ms)\n" + "\n".join(
        format_cdf(result[k]["rtt_samples"], f"CUBIC {k}", unit="ms",
                   scale=1e3)
        for k in ("default", "acdc")))
    default = result["default"]["rtt_samples"]
    acdc = result["acdc"]["rtt_samples"]
    assert default and acdc
    # Without AC/DC the tail is retransmission-dominated (tens of ms);
    # with AC/DC it collapses to queueing delay (sub-ms).
    assert percentile(default, 99) > 20 * percentile(acdc, 99)
    assert percentile(acdc, 99) < 0.002
    # The trap also shows up as real packet loss for the CUBIC flow.
    assert result["default"]["cubic_retransmits"] > 0
    assert result["acdc"]["cubic_retransmits"] == 0
