"""Fig. 2: rate-limited CUBIC still fills buffers; DCTCP keeps RTT low."""

from conftest import emit, run_once
from repro.experiments import fig02_rate_limiting_insufficient as exp
from repro.experiments.report import format_cdf


def test_bench_fig02(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.8))
    lines = [format_cdf(result[k]["rtt_samples"], f"RTT {k}", unit="ms",
                        scale=1e3)
             for k in ("cubic_rl2g", "dctcp")]
    emit(capsys, "Fig. 2 — RTT CDF, CUBIC@2Gbps/flow rate limit vs DCTCP\n"
         + "\n".join(lines))
    cubic_p50 = result["cubic_rl2g"]["rtt"]["p50"]
    dctcp_p50 = result["dctcp"]["rtt"]["p50"]
    # Rate limiting alone leaves ~10x the queueing latency.
    assert cubic_p50 > 5 * dctcp_p50
    # Both configurations still deliver the 2 Gb/s shares.
    assert all(1.5 < g < 2.3 for g in result["cubic_rl2g"]["tput_gbps"])
