"""Fig. 18: incast throughput and fairness vs sender count."""

from conftest import emit, run_once
from repro.experiments import fig18_19_incast as exp
from repro.experiments.report import format_table

COUNTS = (16, 32, 47)


def test_bench_fig18(benchmark, capsys):
    rows_data = run_once(
        benchmark, lambda: exp.run(counts=COUNTS, duration=0.35))
    rows = []
    for row in rows_data:
        for scheme in ("cubic", "dctcp", "acdc"):
            d = row[scheme]
            rows.append([row["senders"], scheme, d["avg_tput_mbps"],
                         d["fairness"]])
    emit(capsys, format_table(
        ["senders", "scheme", "avg_tput_mbps", "jain"], rows,
        title="Fig. 18 — N-to-1 incast: throughput and fairness"))
    for row in rows_data:
        n = row["senders"]
        fair_share = 10e3 / n  # Mb/s
        for scheme in ("cubic", "dctcp", "acdc"):
            # Everyone delivers roughly line-rate / N on average.
            assert row[scheme]["avg_tput_mbps"] > 0.8 * fair_share, (n, scheme)
        # DCTCP and AC/DC are near-perfectly fair; CUBIC is below.
        assert row["dctcp"]["fairness"] > 0.99
        assert row["acdc"]["fairness"] > 0.99
        assert row["cubic"]["fairness"] < row["acdc"]["fairness"]
