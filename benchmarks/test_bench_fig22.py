"""Fig. 22: shuffle workload — mice and background FCTs."""

from conftest import emit, run_once
from repro.experiments import fig22_shuffle as exp
from repro.experiments.report import format_cdf
from repro.metrics import percentile


def test_bench_fig22(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run())
    emit(capsys, "Fig. 22a — mice (16 KB) FCT (ms)\n" + "\n".join(
        format_cdf(result[k]["mice_fcts"], f"mice {k}", unit="ms", scale=1e3)
        for k in result))
    emit(capsys, "Fig. 22b — background (shuffle block) FCT (s)\n" + "\n".join(
        format_cdf(result[k]["background_fcts"], f"bg {k}", unit="s")
        for k in result))
    cubic, acdc = result["cubic"], result["acdc"]
    # Mice gain sharply under AC/DC (paper: ~71% median reduction).
    assert percentile(acdc["mice_fcts"], 50) < 0.5 * percentile(
        cubic["mice_fcts"], 50)
    # Large transfers complete comparably (within ~30% median).
    assert percentile(acdc["background_fcts"], 50) < 1.3 * percentile(
        cubic["background_fcts"], 50)
    # Most of the shuffle finished inside the window for every scheme.
    assert all(v["background_done"] > 0.85 for v in result.values())
