"""Fig. 10: with a CUBIC host, AC/DC's RWND is the limiting window."""

from conftest import emit, run_once
from repro.experiments import fig10_limiting_window as exp


def test_bench_fig10(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.35))
    emit(capsys,
         "Fig. 10 — who limits a CUBIC guest under AC/DC?\n"
         f"mean AC/DC RWND = {result['mean_rwnd_mss']:.1f} MSS, "
         f"mean host CWND = {result['mean_cwnd_mss']:.1f} MSS, "
         f"RWND limiting {result['fraction_rwnd_limiting'] * 100:.1f}% "
         "of samples")
    # The paper: AC/DC's window is the limiter essentially always, while
    # the unimpeded CUBIC CWND parks well above it.
    assert result["fraction_rwnd_limiting"] > 0.95
    assert result["mean_cwnd_mss"] > 1.5 * result["mean_rwnd_mss"]
