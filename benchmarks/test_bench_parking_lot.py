"""§5.1 parking-lot topology: multi-bottleneck throughput/fairness/RTT."""

from conftest import emit, run_once
from repro.experiments import parking_lot_results as exp
from repro.experiments.report import format_table


def test_bench_parking_lot(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.6))
    rows = [[k, v["avg_tput_gbps"], v["fairness"],
             v["rtt"].get("p50", 0) * 1e6, v["rtt"].get("p999", 0) * 1e6]
            for k, v in result.items()]
    emit(capsys, format_table(
        ["scheme", "avg_gbps", "jain", "rtt_p50_us", "rtt_p999_us"], rows,
        title="§5.1 — parking lot (Fig. 7b), 5 flows"))
    # Paper: DCTCP/AC-DC fairness 0.99 vs CUBIC 0.94; RTT ~130 us vs ms.
    assert result["acdc"]["fairness"] > result["cubic"]["fairness"]
    assert result["acdc"]["fairness"] > 0.97
    assert result["dctcp"]["fairness"] > 0.97
    assert result["cubic"]["rtt"]["p50"] > 5 * result["acdc"]["rtt"]["p50"]
    assert abs(result["acdc"]["avg_tput_gbps"]
               - result["dctcp"]["avg_tput_gbps"]) < 0.2
