"""Fig. 23: trace-driven workloads — mice FCT CDFs."""

from conftest import emit, run_once
from repro.experiments import fig23_trace_driven as exp
from repro.experiments.report import format_cdf
from repro.metrics import percentile


def test_bench_fig23(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=1.2))
    for workload, schemes in result.items():
        emit(capsys, f"Fig. 23 — {workload}: mice (<10 KB) FCT (ms)\n"
             + "\n".join(
                 format_cdf(schemes[k]["mice_fcts"], f"{workload} {k}",
                            unit="ms", scale=1e3)
                 for k in schemes))
    for workload, schemes in result.items():
        cubic = schemes["cubic"]["mice_fcts"]
        dctcp = schemes["dctcp"]["mice_fcts"]
        acdc = schemes["acdc"]["mice_fcts"]
        assert cubic and dctcp and acdc
        # AC/DC tracks DCTCP and clearly beats CUBIC at the tail.
        assert percentile(acdc, 99.9) < 0.8 * percentile(cubic, 99.9), workload
        assert percentile(acdc, 50) <= 1.5 * percentile(dctcp, 50), workload
