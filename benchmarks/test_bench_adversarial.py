"""Adversarial-tenant sweep: guard on/off under misbehaving guests.

Headline claim: at a 25% violator share, conforming tenants keep >= 80%
of their fair share with the guard enabled, versus near-total collapse
without it — and every guard decision is a deterministic, auditable
event stream.
"""

from conftest import emit, run_once
from repro.experiments import adversarial as exp
from repro.experiments.report import format_table


def test_bench_adversarial(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(seed=0))
    sweep, detection, pressure = (
        result["sweep"], result["detection"], result["pressure"])

    rows = [[name, round(p["conforming_retention"], 3), round(p["jain"], 3),
             round(p["violating_mean_bps"] / 1e6, 1),
             round(p["conforming_mean_bps"] / 1e6, 1),
             sum(p["guard_events"].values())]
            for name, p in sweep.items()]
    emit(capsys, format_table(
        ["point", "conforming_retention", "jain", "violator_mbps",
         "conforming_mbps", "guard_events"],
        rows, title="Adversarial tenants — ignore_rwnd sweep"))
    rows = [[name, dict(p["guard_events"]), p.get("fallbacks", 0)]
            for name, p in detection.items()]
    emit(capsys, format_table(
        ["adversary", "guard_events", "fallbacks"], rows,
        title="Detection-only adversaries (25% share, guard on)"))

    # --- headline: protection of the conforming majority ----------------
    on = sweep["share=0.25,guard=on"]
    off = sweep["share=0.25,guard=off"]
    assert on["conforming_retention"] >= 0.8
    assert off["conforming_retention"] < 0.2
    assert on["jain"] > off["jain"]
    # Cheaters are contained, not merely diluted.
    assert on["violating_mean_bps"] < off["violating_mean_bps"] / 10
    assert on["guard_events"]["guard_escalate"] >= 2
    assert on["police_drops"] > 0
    assert all(level >= 2 for _, level, _ in on["final_levels"])

    # --- zero false positives on an all-conforming tenant mix -----------
    clean = sweep["share=0,guard=on"]
    assert clean["guard_events"] == {}
    assert clean["police_drops"] == 0
    assert clean["quarantine_drops"] == 0
    # And the guard costs conforming tenants nothing.
    baseline = sweep["share=0,guard=off"]
    assert clean["conforming_mean_bps"] >= 0.95 * baseline["conforming_mean_bps"]

    # --- the guard holds as the violator share grows ---------------------
    heavy = sweep["share=0.5,guard=on"]
    assert heavy["conforming_retention"] >= 0.8
    assert heavy["violating_mean_bps"] < sweep[
        "share=0.5,guard=off"]["violating_mean_bps"] / 10

    # --- detection-only adversaries are surfaced as guard events ---------
    assert detection["ack_division"]["guard_events"]["guard_escalate"] >= 1
    assert detection["ack_division"]["quarantine_drops"] > 0
    assert detection["ecn_bleach"]["guard_events"]["guard_escalate"] >= 1
    assert detection["option_strip"]["fallbacks"] >= 1
    assert detection["option_strip"]["guard_events"][
        "guard_feedback_fallback"] >= 1

    # --- watchdog: deliberate shedding keeps traffic flowing -------------
    assert pressure["sheds"] > 0
    assert pressure["shed_entries"] > 0
    assert pressure["guard_events"]["guard_shed"] == pressure["sheds"]
    assert pressure["total_goodput_bps"] > 0.6e9

    # --- same seed, same transition history ------------------------------
    a = exp.run_point(0.25, True, seed=0, n_senders=4, duration=0.08)
    b = exp.run_point(0.25, True, seed=0, n_senders=4, duration=0.08)
    assert a["event_signature"] == b["event_signature"]
