"""Fig. 15: ECN coexistence — CUBIC starves next to DCTCP; AC/DC fixes it."""

from conftest import emit, run_once
from repro.experiments import fig15_16_ecn_coexistence as exp
from repro.experiments.report import format_table


def test_bench_fig15(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.8))
    rows = [[k, v["cubic_gbps"], v["dctcp_gbps"], v["cubic_share"],
             v["drop_rate"] * 100] for k, v in result.items()]
    emit(capsys, format_table(
        ["config", "cubic_gbps", "dctcp_gbps", "cubic_share", "drop_%"],
        rows, title="Fig. 15 — CUBIC (no ECN) vs DCTCP (ECN), same bottleneck"))
    default = result["default"]
    acdc = result["acdc"]
    # Default: the non-ECT flow starves behind the marking threshold.
    assert default["cubic_share"] < 0.1
    # AC/DC: both flows become ECN-capable and split the link fairly.
    assert 0.4 < acdc["cubic_share"] < 0.6
    assert acdc["cubic_gbps"] + acdc["dctcp_gbps"] > 9.0
