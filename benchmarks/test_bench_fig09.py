"""Fig. 9: AC/DC's computed RWND tracks a native DCTCP CWND."""

from conftest import emit, run_once
from repro.experiments import fig09_window_tracking as exp
from repro.experiments.report import format_series


def test_bench_fig09(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(duration=0.35))
    emit(capsys,
         "Fig. 9 — AC/DC RWND vs host DCTCP CWND (MSS, log-only mode)\n"
         + format_series(result["rwnd_ma100ms"][:2000], "RWND(ma100ms)",
                         every=100) + "\n"
         + format_series(result["cwnd_ma100ms"][:2000], "CWND(ma100ms)",
                         every=100) + "\n"
         + f"mean RWND={result['mean_rwnd_mss']:.1f} MSS, "
           f"mean CWND={result['mean_cwnd_mss']:.1f} MSS, "
           f"mean |err|={result['mean_abs_err_mss']:.2f} MSS, "
           f"rel err={result['mean_rel_err'] * 100:.1f}%")
    # The vSwitch recreation tracks the host window closely (paper Fig. 9).
    assert result["mean_rel_err"] < 0.25
    assert abs(result["mean_rwnd_mss"] - result["mean_cwnd_mss"]) < 5.0
