"""Ablation benches for the design choices DESIGN.md calls out (A1–A4)."""

from conftest import emit, run_once
from repro.experiments import ablations
from repro.experiments.report import format_table


def test_bench_ablation_policing(benchmark, capsys):
    """A1: a stack that ignores RWND, with and without the policer."""
    result = run_once(benchmark, lambda: ablations.run_policing(duration=0.5))
    rows = [[k, v["cheater_gbps"], sum(v["conforming_gbps"]) / 4,
             v["cheater_advantage"], v["fairness"], v["policer_drops"]]
            for k, v in result.items()]
    emit(capsys, format_table(
        ["config", "cheater_gbps", "conform_avg_gbps", "advantage",
         "jain", "policer_drops"],
        rows, title="A1 — policing a non-conforming (RWND-ignoring) stack"))
    off, on = result["no-policing"], result["policing"]
    # Without policing, cheating pays hugely; with it, it does not.
    assert off["cheater_advantage"] > 5.0
    assert on["cheater_advantage"] < 1.0
    assert on["policer_drops"] > 0
    assert on["fairness"] > off["fairness"]


def test_bench_ablation_feedback(benchmark, capsys):
    """A2: PACK piggy-backing vs a FACK-only feedback channel."""
    result = run_once(benchmark,
                      lambda: ablations.run_feedback_modes(duration=0.5))
    rows = [[k, v["avg_tput_gbps"], v["fairness"], v["rtt_p50_us"],
             v["packs"], v["facks"]] for k, v in result.items()]
    emit(capsys, format_table(
        ["mode", "avg_gbps", "jain", "rtt_p50_us", "packs", "facks"],
        rows, title="A2 — feedback channel: PACK vs FACK-only"))
    pack, fack = result["pack"], result["fack-only"]
    # Same congestion signal either way: performance is equivalent.
    assert abs(pack["avg_tput_gbps"] - fack["avg_tput_gbps"]) < 0.15
    assert abs(pack["rtt_p50_us"] - fack["rtt_p50_us"]) < 40
    # But the channels are what they claim to be.
    assert pack["packs"] > 0 and pack["facks"] == 0
    assert fack["facks"] > 0 and fack["packs"] == 0


def test_bench_ablation_ecn_hiding(benchmark, capsys):
    """A3: hiding ECN from an ECN-capable guest vs double reaction."""
    result = run_once(benchmark,
                      lambda: ablations.run_ecn_hiding(duration=0.5))
    rows = [[k, v["total_gbps"], v["fairness"], v["rtt_p50_us"],
             v["guests_reacted"]] for k, v in result.items()]
    emit(capsys, format_table(
        ["mode", "total_gbps", "jain", "rtt_p50_us", "guests_reacted"],
        rows, title="A3 — hiding ECN feedback from the guest"))
    hide, expose = result["hide-ecn"], result["expose-ecn"]
    # With hiding, the guests never react to congestion themselves —
    # AC/DC owns the control loop (the §3.2 design point).  Without
    # hiding, every guest performs its own conservative reduction too.
    assert hide["guests_reacted"] == 0
    assert expose["guests_reacted"] == 5
    # The double reaction must not *gain* anything: hiding is never worse.
    assert hide["total_gbps"] >= expose["total_gbps"] - 0.1


def test_bench_ablation_floor(benchmark, capsys):
    """A4: AC/DC's RWND floor vs DCTCP's 2-packet CWND floor (incast)."""
    result = run_once(benchmark,
                      lambda: ablations.run_window_floor(n_senders=32,
                                                         duration=0.35))
    rows = [[k, v["rtt_p50_ms"], v["rtt_p999_ms"], v["avg_tput_mbps"],
             v["fairness"]] for k, v in result.items()]
    emit(capsys, format_table(
        ["floor", "rtt_p50_ms", "rtt_p999_ms", "avg_tput_mbps", "jain"],
        rows, title="A4 — window floor vs incast RTT (32-to-1)"))
    # RTT orders by the floor: half-MSS < 1 MSS < 2 MSS; and AC/DC at a
    # 2-MSS floor reproduces native DCTCP's standing queue.
    assert result["acdc-halfmss-floor"]["rtt_p50_ms"] < \
        result["acdc-1mss-floor"]["rtt_p50_ms"] < \
        result["acdc-2mss-floor"]["rtt_p50_ms"]
    assert abs(result["acdc-2mss-floor"]["rtt_p50_ms"]
               - result["dctcp-2mss-floor"]["rtt_p50_ms"]) < \
        result["dctcp-2mss-floor"]["rtt_p50_ms"]
    # Throughput is the same everywhere (the floor only moves the queue).
    tputs = [v["avg_tput_mbps"] for v in result.values()]
    assert max(tputs) - min(tputs) < 20
