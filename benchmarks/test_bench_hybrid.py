"""Hybrid-fidelity benchmark: effective packets/sec with fluid background.

The tentpole claim: carrying background load on the fluid tier buys at
least **10x effective simulated packets per wall-second** over the
pure-packet engine baseline (``test_bench_engine``'s dumbbell), at an
offered load at least as large as the baseline's.

Accounting is calibrated against the baseline itself.  The baseline's
switch counters pay ~4 port traversals per delivered MSS (data through
two switches, plus the ACK path), so one delivered fluid MSS is
credited ``equiv_factor = baseline_switch_packets /
baseline_delivered_mss`` effective packets — the exact packet-counter
cost the same bytes would have incurred on the packet tier.  Foreground
packets are counted directly off the switch counters, same as the
baseline.

Results land in ``BENCH_HYBRID.json`` (``REPRO_BENCH_DIR`` overrides
the directory); ``REPRO_BENCH_QUICK=1`` selects the CI smoke scale.
Wall-clock reads are fine here: benchmarks time the host, not the
simulation (repro-lint's RL003 governs ``src/`` only).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.common import ACDC
from repro.experiments.hybrid import run_hybrid_dumbbell
from repro.experiments.runners import run_dumbbell
from repro.workloads.background import BackgroundFlowGroup

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

MSS = 1460

#: The tentpole floor: hybrid effective packets/sec vs the pure-packet
#: dumbbell baseline measured fresh on the same host (machine-speed
#: independent ratio).
MIN_SPEEDUP = 10.0

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def bench_report():
    """Collect every measurement and write BENCH_HYBRID.json at the end."""
    yield
    if not RESULTS:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    payload = {
        "schema": "repro-bench-hybrid/v1",
        "quick": QUICK,
        "unix_time": time.time(),
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
        },
        "results": RESULTS,
    }
    path = out_dir / "BENCH_HYBRID.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _stored_engine_baseline() -> float:
    """The committed BENCH_ENGINE.json dumbbell figure, for the report."""
    path = Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return float(payload["results"]["dumbbell_packet_rate"]
                     ["packets_per_sec"])
    except (OSError, KeyError, ValueError):
        return 0.0


def _switch_packets(result) -> int:
    return sum(sw.total_tx_packets()
               for sw in result.topology.switches.values())


def _fluid_delivered(result) -> float:
    return sum(p["delivered_bytes"] for p in result.fluid.get("ports", ()))


#: The hybrid scenario's background: a large DCTCP cohort plus a non-ECT
#: Reno cohort sharing the 10 G bottleneck — aggregate demand far above
#: the baseline's offered load (5 pairs at 1 G).
BACKGROUND = (
    BackgroundFlowGroup("bg-dctcp", n_flows=128, rtt_s=1e-3, cc="dctcp"),
    BackgroundFlowGroup("bg-reno", n_flows=32, rtt_s=1e-3, cc="reno"),
)


def test_bench_hybrid_effective_packet_rate(capsys):
    """>= 10x effective packets/sec over the fresh pure-packet baseline."""
    duration = 0.02 if QUICK else 0.1

    # -- pure-packet baseline: the exact test_bench_engine dumbbell ----
    start = time.perf_counter()
    base = run_dumbbell(ACDC, pairs=5, duration=duration, mtu=1500,
                        rate_bps=1e9, rtt_probe=False)
    base_elapsed = time.perf_counter() - start
    base_packets = _switch_packets(base)
    base_pps = base_packets / base_elapsed
    base_mss = sum(f.bytes_acked for f in base.flows) / MSS
    # Switch-counter packets the packet tier pays per delivered MSS
    # (data + ACK traversals); credits fluid bytes at the same rate.
    equiv_factor = base_packets / base_mss

    # -- hybrid: 1 paced foreground pair + 160 fluid background flows --
    start = time.perf_counter()
    hybrid = run_hybrid_dumbbell(
        ACDC, fg_pairs=1, background=BACKGROUND, duration=duration,
        mtu=1500, rate_bps=10e9, seed=0, bg_start_at=0.002,
        fg_conn_opts={"pacing_rate_bps": 200e6})
    hybrid_elapsed = time.perf_counter() - start
    hybrid_packets = _switch_packets(hybrid)
    fluid_bytes = _fluid_delivered(hybrid)
    effective = hybrid_packets + (fluid_bytes / MSS) * equiv_factor
    effective_pps = effective / hybrid_elapsed
    speedup = effective_pps / base_pps

    stored = _stored_engine_baseline()
    RESULTS["hybrid_dumbbell"] = {
        "duration_s": duration,
        "baseline": {
            "packets": base_packets, "seconds": base_elapsed,
            "packets_per_sec": base_pps,
            "delivered_mss": base_mss,
            "equiv_factor": equiv_factor,
            "stored_bench_engine_pps": stored,
        },
        "hybrid": {
            "switch_packets": hybrid_packets,
            "fluid_delivered_bytes": fluid_bytes,
            "fluid_equiv_packets": fluid_bytes / MSS * equiv_factor,
            "seconds": hybrid_elapsed,
            "effective_packets_per_sec": effective_pps,
            "fg_tput_bps": hybrid.tputs_bps[0],
            "events": hybrid.sim.events_processed,
            "background_flows": sum(g.n_flows for g in BACKGROUND),
        },
        "speedup": speedup,
    }
    with capsys.disabled():
        print(f"\nhybrid: {effective_pps:,.0f} effective pkts/s vs "
              f"baseline {base_pps:,.0f} pkts/s -> {speedup:.1f}x "
              f"(equiv factor {equiv_factor:.2f}, fg "
              f"{hybrid.tputs_bps[0] / 1e6:.0f} Mb/s)")
    # The scenario must still be a real hybrid: live foreground traffic
    # and background actually delivered through the coupled port.
    assert hybrid.tputs_bps[0] > 0
    assert fluid_bytes > 0
    assert speedup >= MIN_SPEEDUP


def test_bench_hybrid_vs_allpacket_same_scenario(capsys):
    """Wall-clock speedup, same scenario: background fluid vs packet.

    Apples-to-apples at a size the packet tier can still afford: the
    identical background cohort carried as fluid classes vs expanded
    into real packet flows (``tier_mode='packet'``).
    """
    duration = 0.015 if QUICK else 0.05
    n_bg = 8 if QUICK else 24
    bg = (BackgroundFlowGroup("bg", n_flows=n_bg, rtt_s=1e-3,
                              cc="dctcp"),)
    kwargs = dict(fg_pairs=1, background=bg, duration=duration, mtu=1500,
                  rate_bps=1e9, seed=0, bg_start_at=0.002,
                  fg_conn_opts={"pacing_rate_bps": 200e6})

    start = time.perf_counter()
    fluid_run = run_hybrid_dumbbell(ACDC, tier_mode="auto", **kwargs)
    fluid_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    packet_run = run_hybrid_dumbbell(ACDC, tier_mode="packet", **kwargs)
    packet_elapsed = time.perf_counter() - start

    wall_speedup = packet_elapsed / fluid_elapsed
    RESULTS["hybrid_vs_allpacket"] = {
        "duration_s": duration,
        "background_flows": n_bg,
        "fluid_seconds": fluid_elapsed,
        "fluid_events": fluid_run.sim.events_processed,
        "packet_seconds": packet_elapsed,
        "packet_events": packet_run.sim.events_processed,
        "wall_speedup": wall_speedup,
    }
    with capsys.disabled():
        print(f"\nsame scenario, {n_bg} background flows: fluid "
              f"{fluid_elapsed:.2f}s vs all-packet {packet_elapsed:.2f}s "
              f"-> {wall_speedup:.1f}x")
    assert fluid_run.fluid["active"]
    assert not packet_run.fluid
    # Loose floor: the point is the recorded curve, not CI jitter.
    assert wall_speedup > 2.0
