"""Fig. 19: incast RTT and drop rate — AC/DC beats DCTCP's 2-MSS floor."""

from conftest import emit, run_once
from repro.experiments import fig18_19_incast as exp
from repro.experiments.report import format_table

COUNTS = (16, 32, 47)


def test_bench_fig19(benchmark, capsys):
    rows_data = run_once(
        benchmark, lambda: exp.run(counts=COUNTS, duration=0.35))
    rows = []
    for row in rows_data:
        for scheme in ("cubic", "dctcp", "acdc"):
            d = row[scheme]
            rows.append([row["senders"], scheme, d["rtt_p50_ms"],
                         d["rtt_p999_ms"], d["drop_rate_pct"]])
    emit(capsys, format_table(
        ["senders", "scheme", "rtt_p50_ms", "rtt_p999_ms", "drop_%"], rows,
        title="Fig. 19 — incast RTT and packet drops"))
    for row in rows_data:
        # CUBIC's RTT is the buffer-filling disaster.
        assert row["cubic"]["rtt_p50_ms"] > 4 * row["dctcp"]["rtt_p50_ms"]
        # AC/DC's byte-granular floor undercuts DCTCP's 2-packet floor.
        assert row["acdc"]["rtt_p50_ms"] < row["dctcp"]["rtt_p50_ms"]
        # AC/DC never drops; CUBIC does.
        assert row["acdc"]["drop_rate_pct"] == 0.0
        assert row["cubic"]["drop_rate_pct"] > 0.0
    # DCTCP's RTT grows with N (the standing-queue effect the paper and
    # Judd both observed); AC/DC's grows far slower.
    dctcp_rtts = [r["dctcp"]["rtt_p50_ms"] for r in rows_data]
    assert dctcp_rtts[-1] > 1.5 * dctcp_rtts[0]
