"""Fig. 13: differentiated throughput via the QoS beta of Equation 1."""

from conftest import emit, run_once
from repro.experiments import fig13_qos_beta as exp
from repro.experiments.report import format_table


def test_bench_fig13(benchmark, capsys):
    rows_data = run_once(benchmark, lambda: exp.run(duration=0.6))
    rows = [[r["combo"]] + [round(g, 2) for g in r["tput_gbps"]]
            for r in rows_data]
    emit(capsys, format_table(
        ["betas", "F1", "F2", "F3", "F4", "F5"], rows,
        title="Fig. 13 — per-flow throughput (Gb/s) under beta-priority CC"))
    for r in rows_data:
        # Higher beta class => higher mean throughput.
        assert r["monotonic_in_beta"], r["combo"]
        # Flows sharing a beta get similar throughput.
        for beta, fairness in r["within_class_fairness"].items():
            assert fairness > 0.92, (r["combo"], beta)
    # The (4,4,4,0,0) case: beta-1 flows clearly dominate beta-0 flows.
    extreme = rows_data[-1]
    assert extreme["class_means_gbps"][1.0] > 1.5 * extreme["class_means_gbps"][0.0]
