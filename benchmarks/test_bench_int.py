"""INT-overhead benchmarks for the in-network telemetry pipeline.

The contract under test is the issue's acceptance bound: with INT OFF
(no :class:`~repro.obs.IntTelemetry` bound, i.e. every ``_int`` /
``int_tel`` hook attribute holding ``None``), the datapath must stay
within a small tolerance of the committed ``BENCH_ENGINE.json``
packet-rate baseline.  The default tolerance is deliberately generous —
CI runners and the baseline host differ by far more than one ``is
None`` test per hop — and ``REPRO_INT_TOL`` tightens it for a same-host
check (the 2% bound was verified locally with back-to-back A/B medians
before the baseline was committed).

A second, informational pass runs the same cells with INT on (stamping
at every hop, sink echoes, sender-side views) and reports the slowdown;
telemetry is an observability mode, so it gets sanity assertions (the
pipeline actually produced reports), not a bound.

Wall-clock reads are fine here: benchmarks time the host, not the
simulation (repro-lint's RL003 governs ``src/`` only).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.common import ACDC, DCTCP
from repro.experiments.runners import run_dumbbell, run_incast
from repro.obs import IntTelemetry

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Allowed fractional regression vs the committed baseline.  Override
#: with REPRO_INT_TOL (e.g. 0.05 for a same-host regression check).
TOLERANCE = float(os.environ.get("REPRO_INT_TOL", "0.5"))

#: The committed perf baseline; REPRO_BENCH_BASELINE overrides the path.
BASELINE_PATH = Path(os.environ.get(
    "REPRO_BENCH_BASELINE",
    Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json"))

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def bench_report():
    """Write every measurement to BENCH_INT.json at session end."""
    yield
    if not RESULTS:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    payload = {
        "schema": "repro-bench-int/v1",
        "quick": QUICK,
        "tolerance": TOLERANCE,
        "results": RESULTS,
    }
    path = out_dir / "BENCH_INT.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nwrote {path}")


def _baseline_rate(key: str) -> float:
    if not BASELINE_PATH.exists():
        pytest.skip(f"no perf baseline at {BASELINE_PATH}")
    data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    result = data.get("results", {}).get(key)
    if not result or "packets_per_sec" not in result:
        pytest.skip(f"baseline has no {key} measurement")
    return float(result["packets_per_sec"])


def _dumbbell(int_tel=None):
    duration = 0.02 if QUICK else 0.1
    start = time.perf_counter()
    result = run_dumbbell(ACDC, pairs=5, duration=duration, mtu=1500,
                          rate_bps=1e9, rtt_probe=False, int_tel=int_tel)
    elapsed = time.perf_counter() - start
    packets = sum(sw.total_tx_packets()
                  for sw in result.topology.switches.values())
    return packets / elapsed, result


def _incast(int_tel=None, scheme=DCTCP):
    duration = 0.02 if QUICK else 0.1
    n = 8 if QUICK else 16
    start = time.perf_counter()
    result = run_incast(scheme, n_senders=n, duration=duration, mtu=1500,
                        int_tel=int_tel)
    elapsed = time.perf_counter() - start
    packets = sum(sw.total_tx_packets()
                  for sw in result.topology.switches.values())
    return packets / elapsed, result


def _best_of(fn, reps: int = 3) -> float:
    return max(fn()[0] for _ in range(reps))


# ---------------------------------------------------------------------------
# INT OFF: the hooks must be free
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("key,fn", [
    ("dumbbell_packet_rate", _dumbbell),
    ("incast_packet_rate", _incast),
])
def test_bench_int_off_overhead(key, fn, capsys):
    baseline = _baseline_rate(key)
    rate = _best_of(fn)
    ratio = rate / baseline
    RESULTS[f"int_off_{key}"] = {
        "packets_per_sec": rate, "baseline_packets_per_sec": baseline,
        "ratio": ratio,
    }
    with capsys.disabled():
        print(f"\nint-off {key}: {rate:,.0f} pk/s vs baseline "
              f"{baseline:,.0f} ({(ratio - 1) * 100:+.1f}%)")
    assert ratio >= 1.0 - TOLERANCE, (
        f"int-off datapath regressed {(1 - ratio) * 100:.1f}% vs "
        f"baseline (tolerance {TOLERANCE * 100:.0f}%)")


# ---------------------------------------------------------------------------
# INT ON: informational — observability mode, no bound
# ---------------------------------------------------------------------------
def _incast_acdc(int_tel=None):
    # The sink/echo half of the pipeline lives in the AC/DC vSwitch, so
    # the INT-on measurement needs a vswitch-backed scheme (host-stack
    # DCTCP stamps at the switches but nothing terminates the stacks).
    return _incast(int_tel=int_tel, scheme=ACDC)


@pytest.mark.parametrize("name,fn", [
    ("dumbbell", _dumbbell),
    ("incast", _incast_acdc),
])
def test_bench_int_on_informational(name, fn, capsys):
    off_rate = _best_of(fn, reps=1)
    tel = IntTelemetry()
    on_rate, result = fn(int_tel=tel)
    snap = tel.snapshot()
    assert snap["stamped"] > 0, "INT run stamped nothing"
    assert snap["reports_ok"] > 0, "INT run produced no reports"
    RESULTS[f"int_on_{name}"] = {
        "packets_per_sec": on_rate,
        "int_off_packets_per_sec": off_rate,
        "slowdown": off_rate / on_rate if on_rate else float("inf"),
        "stamped": snap["stamped"],
        "reports_ok": snap["reports_ok"],
    }
    with capsys.disabled():
        print(f"\nint-on {name}: {on_rate:,.0f} pk/s "
              f"({off_rate / on_rate:.2f}x slowdown, "
              f"{snap['stamped']} stacks stamped, "
              f"{snap['reports_ok']} reports)")
