"""Fig. 1: heterogeneous congestion controls are unfair (problem setup)."""

from conftest import emit, run_once
from repro.experiments import fig01_heterogeneous_unfairness as exp
from repro.experiments.report import format_table


def test_bench_fig01(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(runs=2, duration=0.6))
    rows = []
    for label in ("heterogeneous", "all-cubic"):
        for i, test in enumerate(result[label]["tests"]):
            rows.append([label, i + 1, test["max"], test["min"],
                         test["mean"], test["median"], test["fairness"]])
    emit(capsys, format_table(
        ["config", "test", "max_gbps", "min_gbps", "mean", "median", "jain"],
        rows, title="Fig. 1 — five different CCs vs all-CUBIC (dumbbell)"))
    hetero = result["heterogeneous"]
    cubic = result["all-cubic"]
    # Paper shape: heterogeneous mix is clearly less fair than all-CUBIC.
    assert hetero["mean_fairness"] < cubic["mean_fairness"] - 0.05
    # Aggressive Illinois beats delay-based Vegas in every test.
    for test in hetero["tests"]:
        per_flow = test["per_flow_gbps"]
        assert per_flow["illinois"] > per_flow["vegas"]
