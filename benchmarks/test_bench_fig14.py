"""Fig. 14: convergence test — flows join/leave a shared bottleneck."""

from conftest import emit, run_once
from repro.experiments import fig14_convergence as exp
from repro.experiments.report import format_table


def test_bench_fig14(benchmark, capsys):
    result = run_once(benchmark, lambda: exp.run(epoch=0.35))
    rows = []
    for scheme, data in result.items():
        for epoch in data["epochs"]:
            rows.append([scheme, f"{epoch['t_mid']:.2f}", epoch["active"],
                         " ".join(f"{x:.0f}" for x in epoch["rates_mbps"]),
                         epoch["max_share_error"]])
    emit(capsys, format_table(
        ["scheme", "t_mid_s", "active", "per-flow Mb/s", "max_share_err"],
        rows, title="Fig. 14 — convergence (flows added/removed per epoch)"))
    # DCTCP and AC/DC converge essentially drop-free (a handful of
    # flow-start transients at most); CUBIC drops orders of magnitude more.
    assert result["dctcp"]["drop_rate"] < 5e-5
    assert result["acdc"]["drop_rate"] < 5e-5
    assert result["cubic"]["drop_rate"] > 1e-3
    # Steady epochs (skip each epoch right after a flow change): DCTCP and
    # AC/DC stay near the fair share.
    for scheme in ("dctcp", "acdc"):
        errors = [e["max_share_error"]
                  for e in result[scheme]["epochs"][2:]]
        assert sum(errors) / len(errors) < 0.5, scheme
