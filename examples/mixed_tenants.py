#!/usr/bin/env python3
"""Multi-tenant fabric: five different guest TCP stacks, one cheater.

Scenario (the paper's motivation, §1/§2): tenants bring whatever stack
they like — aggressive Illinois, delay-based Vegas, plain CUBIC — and one
tenant runs a hacked stack that ignores the receive window entirely.

The demo runs the mix three ways:
  1. plain OVS (no control)         -> aggressive stacks win, Vegas starves;
  2. AC/DC                          -> fair shares, low latency;
  3. AC/DC + a cheater, policed     -> cheating stops paying.

Run:  python examples/mixed_tenants.py
"""

from repro import AcdcConfig, AcdcVswitch, PlainOvs, Simulator, dumbbell
from repro.metrics import jain_index
from repro.workloads import BulkSender, Sink

DURATION = 0.6
TENANTS = ("cubic", "illinois", "highspeed", "reno", "vegas")


def run(mode: str) -> dict:
    sim = Simulator()
    switch_ecn = mode != "plain"
    topo, senders, receivers = dumbbell(sim, pairs=5, ecn_enabled=switch_ecn)
    for host in senders + receivers:
        if mode == "plain":
            host.attach_vswitch(PlainOvs(host))
        else:
            config = AcdcConfig(police=(mode == "policed"))
            host.attach_vswitch(AcdcVswitch(host, config=config))
    flows = []
    for i, (sender, receiver) in enumerate(zip(senders, receivers)):
        opts = {"cc": TENANTS[i], "ecn": TENANTS[i] == "dctcp"}
        if mode == "policed" and i == 1:
            opts["ignore_rwnd"] = True  # tenant 2 hacked its stack
        Sink(receiver, 5000, cc=opts["cc"], ecn=opts["ecn"])
        flows.append(BulkSender(sim, sender, receiver.addr, 5000,
                                conn_opts=opts))
    sim.run(until=DURATION)
    tputs = [f.bytes_acked * 8 / DURATION / 1e9 for f in flows]
    drops = sum(
        h.vswitch.policer.drops for h in senders
        if isinstance(h.vswitch, AcdcVswitch))
    return {"tputs": tputs, "fairness": jain_index(tputs),
            "policer_drops": drops}


def main() -> None:
    labels = {
        "plain": "plain OVS (tenants fight it out)",
        "acdc": "AC/DC (DCTCP enforced in the vSwitch)",
        "policed": "AC/DC + cheater on flow 2, policing ON",
    }
    header = " ".join(f"{t:>10}" for t in TENANTS)
    print(f"{'mode':36} {header} {'jain':>7}")
    for mode in ("plain", "acdc", "policed"):
        r = run(mode)
        row = " ".join(f"{g:10.2f}" for g in r["tputs"])
        print(f"{labels[mode]:36} {row} {r['fairness']:7.3f}"
              + (f"   (policer drops: {r['policer_drops']})"
                 if mode == "policed" else ""))


if __name__ == "__main__":
    main()
