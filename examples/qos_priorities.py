#!/usr/bin/env python3
"""Per-flow QoS via priority-parameterised congestion control (§3.4).

An administrator assigns each tenant flow a priority beta in [0, 1] and
AC/DC runs Equation 1 — DCTCP whose multiplicative decrease softens with
beta — plus a hard bandwidth cap on one flow via an RWND clamp.

Run:  python examples/qos_priorities.py
"""

from repro import AcdcVswitch, FlowPolicy, PolicyEngine, Simulator, dumbbell
from repro.core.priority import rwnd_cap_for_rate
from repro.workloads import BulkSender, Sink

DURATION = 0.8

#: (flow name, beta priority, optional bandwidth cap in bit/s)
FLOW_CLASSES = (
    ("gold", 1.00, None),
    ("gold", 1.00, None),
    ("silver", 0.50, None),
    ("silver", 0.50, None),
    ("capped", 1.00, 1e9),   # hard 1 Gb/s cap via max RWND
)


def main() -> None:
    sim = Simulator()
    topo, senders, receivers = dumbbell(sim, pairs=5, ecn_enabled=True)

    # Policy: per-source rules (in practice: per tenant / service class).
    engine = PolicyEngine()
    base_rtt = 40e-6  # uncongested dumbbell RTT, the Fig. 6 conversion
    for i, (_name, beta, cap_bps) in enumerate(FLOW_CLASSES):
        max_rwnd = (rwnd_cap_for_rate(cap_bps, base_rtt)
                    if cap_bps is not None else None)
        engine.add_rule(PolicyEngine.match_src(f"s{i + 1}"),
                        FlowPolicy(beta=beta, max_rwnd=max_rwnd))

    for host in senders + receivers:
        host.attach_vswitch(AcdcVswitch(host, policy=engine))

    flows = []
    for sender, receiver in zip(senders, receivers):
        Sink(receiver, 5000)
        flows.append(BulkSender(sim, sender, receiver.addr, 5000,
                                conn_opts={"cc": "cubic"}))
    sim.run(until=DURATION)

    print(f"{'flow':8} {'class':8} {'beta':>5} {'cap':>8} {'Gb/s':>7}")
    for i, ((name, beta, cap), flow) in enumerate(zip(FLOW_CLASSES, flows)):
        gbps = flow.bytes_acked * 8 / DURATION / 1e9
        cap_s = f"{cap / 1e9:.1f}G" if cap else "-"
        print(f"s{i + 1:<7} {name:8} {beta:5.2f} {cap_s:>8} {gbps:7.2f}")
    print("\nGold flows outrank silver; the capped flow stays below its cap\n(the RWND clamp is computed from the uncongested RTT, a lower bound).")


if __name__ == "__main__":
    main()
