#!/usr/bin/env python3
"""Incast: why AC/DC's byte-granular window beats even native DCTCP.

A partition/aggregate stage fans 40 workers into one aggregator.  DCTCP's
Linux implementation floors the congestion window at 2 packets, so with
N senders the switch queue holds at least N x 2 x MSS bytes — the RTT
grows linearly with fan-in (§5.2, Fig. 19).  AC/DC enforces a *byte*
window (RWND) and can go below that floor.

Run:  python examples/incast_burst.py
"""

from repro import AcdcConfig, AcdcVswitch, PlainOvs, Simulator
from repro.net.topology import star
from repro.metrics import RttRecorder, jain_index, percentile
from repro.workloads import BulkSender, EchoSink, PingPong, Sink

SENDERS = 40
DURATION = 0.4


def run(scheme: str) -> dict:
    sim = Simulator()
    ecn = scheme != "cubic"
    topo, hosts, switch = star(sim, SENDERS + 1, mtu=9000, ecn_enabled=ecn)
    receiver, workers = hosts[0], hosts[1:]
    for host in hosts:
        if scheme == "acdc":
            host.attach_vswitch(AcdcVswitch(host))
        else:
            host.attach_vswitch(PlainOvs(host))
    opts = {"cc": "dctcp", "ecn": True} if scheme == "dctcp" else {"cc": "cubic"}
    Sink(receiver, 5000, **opts)
    flows = [BulkSender(sim, w, receiver.addr, 5000, send_at=0.01,
                        conn_opts=dict(opts)) for w in workers]
    rtts = RttRecorder()
    EchoSink(receiver, 6000, **opts)
    PingPong(sim, workers[0], receiver.addr, 6000, rtts, interval_s=0.002,
             warmup_s=0.1, conn_opts=dict(opts))
    sim.run(until=DURATION)
    tputs = [f.bytes_acked * 8 / DURATION for f in flows]
    return {
        "rtt_p50_ms": percentile(rtts.samples, 50) * 1e3,
        "fairness": jain_index(tputs),
        "drops": switch.total_drops(),
    }


def main() -> None:
    print(f"{SENDERS}-to-1 incast of long-lived flows, 10 GbE, 9 KB MTU\n")
    print(f"{'scheme':8} {'rtt_p50':>9} {'jain':>7} {'switch drops':>13}")
    for scheme in ("cubic", "dctcp", "acdc"):
        r = run(scheme)
        print(f"{scheme:8} {r['rtt_p50_ms']:7.2f}ms {r['fairness']:7.3f} "
              f"{r['drops']:13}")
    print("\nDCTCP's 2-packet CWND floor keeps a standing queue that grows "
          "with fan-in;\nAC/DC's byte-granular RWND halves it.")


if __name__ == "__main__":
    main()
