#!/usr/bin/env python3
"""Quickstart: enforce DCTCP from the vSwitch over unmodified CUBIC guests.

Builds the paper's dumbbell (Fig. 7a), runs five long-lived flows under
three configurations — plain CUBIC, native DCTCP, and AC/DC (CUBIC guests,
DCTCP enforced in the vSwitch) — and prints throughput, fairness, and the
application-level RTT a sockperf-style probe sees.

Run:  python examples/quickstart.py
"""

from repro import AcdcVswitch, PlainOvs, Simulator, dumbbell
from repro.metrics import RttRecorder, jain_index, percentile
from repro.workloads import BulkSender, EchoSink, PingPong, Sink

DURATION = 0.6  # seconds of virtual time


def run(scheme: str) -> dict:
    """One dumbbell run; scheme is 'cubic', 'dctcp' or 'acdc'."""
    sim = Simulator()
    switch_ecn = scheme in ("dctcp", "acdc")
    topo, senders, receivers = dumbbell(sim, pairs=5, ecn_enabled=switch_ecn)

    # Attach the datapath: plain OVS, or AC/DC enforcing DCTCP.
    for host in senders + receivers:
        if scheme == "acdc":
            host.attach_vswitch(AcdcVswitch(host))
        else:
            host.attach_vswitch(PlainOvs(host))

    # Guest stacks: CUBIC everywhere, except the native-DCTCP baseline.
    conn_opts = ({"cc": "dctcp", "ecn": True} if scheme == "dctcp"
                 else {"cc": "cubic"})

    flows = []
    for sender, receiver in zip(senders, receivers):
        Sink(receiver, 5000, **conn_opts)
        flows.append(BulkSender(sim, sender, receiver.addr, 5000,
                                conn_opts=dict(conn_opts)))

    # A sockperf-style RTT probe across the bottleneck.
    rtts = RttRecorder()
    EchoSink(receivers[0], 6000, **conn_opts)
    PingPong(sim, senders[0], receivers[0].addr, 6000, rtts,
             interval_s=0.001, warmup_s=0.05, conn_opts=dict(conn_opts))

    sim.run(until=DURATION)
    tputs = [f.bytes_acked * 8 / DURATION / 1e9 for f in flows]
    return {
        "per_flow_gbps": tputs,
        "fairness": jain_index(tputs),
        "rtt_p50_us": percentile(rtts.samples, 50) * 1e6,
        "rtt_p99_us": percentile(rtts.samples, 99) * 1e6,
    }


def main() -> None:
    print(f"{'scheme':8} {'per-flow Gb/s':>38} {'jain':>6} "
          f"{'rtt p50':>9} {'rtt p99':>9}")
    for scheme in ("cubic", "dctcp", "acdc"):
        r = run(scheme)
        flows = " ".join(f"{g:.2f}" for g in r["per_flow_gbps"])
        print(f"{scheme:8} {flows:>38} {r['fairness']:6.3f} "
              f"{r['rtt_p50_us']:7.0f}us {r['rtt_p99_us']:7.0f}us")
    print("\nAC/DC gives CUBIC tenants DCTCP's fairness and latency — "
          "without touching the guests.")


if __name__ == "__main__":
    main()
