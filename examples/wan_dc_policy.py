#!/usr/bin/env python3
"""Per-flow CC assignment: DC-internal flows get DCTCP, WAN flows CUBIC.

§3.4: "flows destined to the WAN may be assigned CUBIC and flows destined
within the datacenter may be set to DCTCP" — even when both originate
from the same VM (a webserver).  Here one host talks simultaneously to a
datacenter peer and to a (simulated, higher-latency) WAN gateway; the
policy engine enforces vSwitch-DCTCP on the internal flow and
vSwitch-CUBIC on the WAN flow, and a third rule shows full passthrough
(``algorithm="none"``) for a legacy destination.

Run:  python examples/wan_dc_policy.py
"""

from repro import AcdcVswitch, FlowPolicy, PolicyEngine, Simulator
from repro.net.topology import Topology
from repro.workloads import BulkSender, Sink

DURATION = 0.8


def main() -> None:
    sim = Simulator()
    topo = Topology(sim)
    sw = topo.add_switch("sw", ecn_enabled=True)
    web = topo.add_host("webserver")
    db = topo.add_host("dc-db")
    wan = topo.add_host("wan-gw")
    legacy = topo.add_host("legacy-box")
    topo.link_host(web, sw, rate_bps=10e9, delay_s=5e-6)
    topo.link_host(db, sw, rate_bps=10e9, delay_s=5e-6)
    # The WAN leg: 10 Gb/s but 5 ms of propagation (a metro RTT).
    topo.link_host(wan, sw, rate_bps=10e9, delay_s=5e-3)
    topo.link_host(legacy, sw, rate_bps=10e9, delay_s=5e-6)
    topo.finalize()

    engine = PolicyEngine(default=FlowPolicy(algorithm="dctcp"))
    engine.add_rule(PolicyEngine.match_dst_prefix("wan-"),
                    FlowPolicy(algorithm="cubic"))
    engine.add_rule(PolicyEngine.match_dst_prefix("legacy-"),
                    FlowPolicy(algorithm="none"))

    for host in (web, db, wan, legacy):
        host.attach_vswitch(AcdcVswitch(host, policy=engine))

    flows = {}
    for dst in ("dc-db", "wan-gw", "legacy-box"):
        Sink(topo.hosts[dst], 5000)
        flows[dst] = BulkSender(sim, web, dst, 5000,
                                conn_opts={"cc": "cubic"})
    sim.run(until=DURATION)

    vsw = web.vswitch
    print(f"{'destination':12} {'Gb/s':>6} {'vSwitch CC':>11} "
          f"{'rwnd rewrites':>14}")
    for name, flow in flows.items():
        entry = vsw.table.lookup(flow.conn.key())
        gbps = flow.bytes_acked * 8 / DURATION / 1e9
        print(f"{name:12} {gbps:6.2f} {entry.policy.algorithm:>11} "
              f"{entry.enforcer.rewrites:14}")
    print("\nOne VM, three flows, three administrator-chosen congestion "
          "controls:\nDCTCP inside the DC, CUBIC toward the WAN, and full "
          "passthrough for the legacy box.")


if __name__ == "__main__":
    main()
