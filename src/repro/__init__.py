"""AC/DC TCP reproduction: virtual congestion control enforcement.

Public API tour
---------------
>>> from repro import Simulator, dumbbell, AcdcVswitch, AcdcConfig
>>> sim = Simulator()
>>> topo, senders, receivers = dumbbell(sim, pairs=2)
>>> for host in list(senders) + list(receivers):
...     host.attach_vswitch(AcdcVswitch(host))
>>> # ... start workloads from repro.workloads, then sim.run(until=1.0)

Package layout:

* ``repro.sim`` — discrete-event engine;
* ``repro.net`` — packets, links, shared-buffer switches, hosts,
  topologies;
* ``repro.tcp`` — the guest TCP stack with pluggable congestion control;
* ``repro.core`` — **the paper's contribution**: the AC/DC vSwitch
  datapath (conntrack, DCTCP-in-the-vSwitch, PACK/FACK feedback, RWND
  enforcement, policing, per-flow policy);
* ``repro.workloads`` — iperf/sockperf/FCT applications and the §5.2
  workload generators;
* ``repro.metrics`` — percentiles, fairness, throughput meters, the CPU
  cost model;
* ``repro.faults`` — seeded fault injection wrapping any vSwitch
  datapath (loss, corruption, duplication, reordering, delay, link
  flaps, mid-run vSwitch restarts);
* ``repro.experiments`` — one module per paper figure/table, plus the
  chaos robustness sweep.
"""

from .core import (
    AcdcConfig,
    AcdcVswitch,
    FlowPolicy,
    PlainOvs,
    PolicyEngine,
)
from .net import Host, Packet, Switch, Topology, dumbbell, parking_lot, star
from .sim import Simulator
from .tcp import TcpConnection
from .tcp.cc import available as available_cc

__version__ = "1.0.0"

__all__ = [
    "AcdcConfig",
    "AcdcVswitch",
    "FlowPolicy",
    "Host",
    "Packet",
    "PlainOvs",
    "PolicyEngine",
    "Simulator",
    "Switch",
    "TcpConnection",
    "Topology",
    "available_cc",
    "dumbbell",
    "parking_lot",
    "star",
    "__version__",
]
