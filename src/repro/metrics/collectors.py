"""Measurement instruments: throughput meters, window logs, FCT records.

These are the simulation stand-ins for the paper's tools: iperf
(throughput), sockperf (RTT — implemented as the ping-pong app in
``repro.workloads.apps``), tcpprobe (window timeseries) and the simple
TCP application that measures flow completion times.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.timers import PeriodicTimer


class ThroughputMeter:
    """Samples a cumulative byte counter into a (time, bits/s) series.

    ``byte_source`` is any zero-argument callable returning cumulative
    bytes (e.g. ``lambda: conn.bytes_acked_total``).
    """

    def __init__(self, sim: Simulator, byte_source: Callable[[], int],
                 interval_s: float = 0.1):
        self.sim = sim
        self.byte_source = byte_source
        self.interval = interval_s
        self.series: List[Tuple[float, float]] = []
        self._last_bytes = 0
        self._last_time = sim.now
        self._timer = PeriodicTimer(sim, interval_s, self._sample)

    def start(self) -> None:
        self._last_bytes = self.byte_source()
        self._last_time = self.sim.now
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        # Rate over the *actual* elapsed virtual time since the previous
        # sample, not the configured interval: a meter started mid-run or
        # restarted after stop() would otherwise misreport its first
        # window (and any tick the timer delivered late).
        current = self.byte_source()
        elapsed = self.sim.now - self._last_time
        if elapsed <= 0.0:
            return
        bps = (current - self._last_bytes) * 8.0 / elapsed
        self._last_bytes = current
        self._last_time = self.sim.now
        self.series.append((self.sim.now, bps))

    def average_bps(self) -> float:
        if not self.series:
            return 0.0
        return sum(v for _, v in self.series) / len(self.series)


class WindowLogger:
    """Accumulates (time, window bytes) samples, per flow.

    Plug :meth:`acdc_callback` into ``AcdcVswitch(window_cb=...)`` for the
    vSwitch's computed RWND (Fig. 9/10), or :meth:`probe` into
    ``TcpConnection.window_probe`` for the guest stack's CWND (tcpprobe).
    """

    def __init__(self) -> None:
        self.samples: Dict[object, List[Tuple[float, float]]] = {}

    def acdc_callback(self, key, now: float, wnd_bytes: int) -> None:
        self.samples.setdefault(key, []).append((now, float(wnd_bytes)))

    def probe(self, conn) -> None:
        key = conn.key()
        self.samples.setdefault(key, []).append(
            (conn.sim.now, float(conn.cwnd)))

    def series(self, key=None) -> List[Tuple[float, float]]:
        if key is None:
            if len(self.samples) != 1:
                raise ValueError(
                    f"{len(self.samples)} flows logged; specify a key")
            key = next(iter(self.samples))
        return self.samples[key]


@dataclass
class FlowRecord:
    """One completed (or in-flight) transfer."""

    label: str
    size_bytes: int
    start: float
    end: Optional[float] = None

    @property
    def fct(self) -> float:
        if self.end is None:
            raise ValueError(f"flow {self.label!r} has not completed")
        return self.end - self.start


class FctRecorder:
    """Flow-completion-time ledger shared by workload apps."""

    def __init__(self) -> None:
        self.records: List[FlowRecord] = []

    def open(self, label: str, size_bytes: int, start: float) -> FlowRecord:
        record = FlowRecord(label=label, size_bytes=size_bytes, start=start)
        self.records.append(record)
        return record

    def completed(self, label_prefix: str = "") -> List[FlowRecord]:
        return [r for r in self.records
                if r.end is not None and r.label.startswith(label_prefix)]

    def fcts(self, label_prefix: str = "") -> List[float]:
        return [r.fct for r in self.completed(label_prefix)]

    def completion_fraction(self, label_prefix: str = "") -> float:
        relevant = [r for r in self.records if r.label.startswith(label_prefix)]
        if not relevant:
            return 0.0
        done = sum(1 for r in relevant if r.end is not None)
        return done / len(relevant)


class RttRecorder:
    """Application-level RTT samples (sockperf stand-in)."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, rtt_s: float) -> None:
        if rtt_s < 0:
            raise ValueError("negative RTT sample")
        self.samples.append(rtt_s)


@dataclass(frozen=True)
class Event:
    """One structured degradation/guard event.

    ``detail`` is a sorted tuple of (key, value) pairs so events are
    hashable and two runs of the same seed produce comparable logs.
    """

    time: float
    kind: str
    flow: Optional[object] = None
    detail: Tuple[Tuple[str, object], ...] = ()


class EventLog:
    """Ordered ledger of structured events (guard transitions, watchdog
    shedding, fallback activations).

    Complements :class:`FaultRecorder`'s per-cause counts with the full
    (time, kind, flow, detail) sequence, which is what determinism
    assertions and the DESIGN.md state-machine audit trail consume.

    .. deprecated::
        Prefer :class:`repro.obs.adapters.EventLogAdapter` — the same
        ledger, plus every record mirrored onto the run's trace bus.
    """

    def __init__(self) -> None:
        if type(self) is EventLog:
            warnings.warn(
                "EventLog is deprecated; use "
                "repro.obs.adapters.EventLogAdapter (same API, trace-bus "
                "aware)", DeprecationWarning, stacklevel=2)
        self.events: List[Event] = []

    def record(self, time: float, kind: str, flow=None, **detail) -> None:
        self.events.append(Event(time=time, kind=kind, flow=flow,
                                 detail=tuple(sorted(detail.items()))))

    def kinds(self) -> Dict[str, int]:
        counts: Counter = Counter(e.kind for e in self.events)
        return dict(counts)

    def for_flow(self, flow) -> List[Event]:
        return [e for e in self.events if e.flow == flow]

    def signature(self) -> List[tuple]:
        """Canonical, comparable form of the whole log (determinism checks)."""
        return [(e.time, e.kind, e.flow, e.detail) for e in self.events]

    def __len__(self) -> int:
        return len(self.events)


class FaultRecorder:
    """Per-cause ledger of injected faults (see :mod:`repro.faults`).

    Every fault event records under its cause name ("loss", "corrupt",
    "duplicate", "reorder", "delay", "link_flap", "vswitch_restart"), so
    experiments can assert that the counters sum to the events the
    injectors report and break degradation down by cause.

    .. deprecated::
        Prefer :class:`repro.obs.adapters.FaultRecorderAdapter` — the
        same ledger, plus every record mirrored onto the trace bus.
    """

    def __init__(self) -> None:
        if type(self) is FaultRecorder:
            warnings.warn(
                "FaultRecorder is deprecated; use "
                "repro.obs.adapters.FaultRecorderAdapter (same API, "
                "trace-bus aware)", DeprecationWarning, stacklevel=2)
        self.counts: Counter = Counter()

    def record(self, cause: str, n: int = 1) -> None:
        self.counts[cause] += n

    def total(self) -> int:
        return sum(self.counts.values())

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counts)

    def merge(self, other: "FaultRecorder") -> None:
        """Fold another recorder's counts into this one."""
        self.counts.update(other.counts)
