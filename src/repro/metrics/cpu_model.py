"""CPU-overhead model for the Fig. 11/12 reproduction.

The paper measures system-wide CPU with ``sar`` while N concurrent flows
each push 10 Mb/s.  In simulation we cannot measure real cycles, so the
substitution (documented in DESIGN.md) is an explicit cost model:

    cpu% = floor + stack_work + datapath_work       (per side)

* **floor** — fixed per-side overhead (interrupts, softirq polling, the
  benchmark tooling), identical for baseline and AC/DC.
* **stack_work** — the host TCP/IP stack: a per-byte term (buffer
  management dominates TCP cost, Menon & Zwaenepoel [42]) plus a
  per-segment term, plus per-connection bookkeeping (timers, epoll,
  burst wakeups).  Identical for baseline and AC/DC, as in the testbed.
* **datapath_work** — the vSwitch, priced per recorded operation
  (:mod:`repro.core.ops`).  Plain OVS records only lookup+forward; AC/DC
  adds conntrack, ECN rewriting, feedback and enforcement ops.

Crucially, the prototype sits *above* TSO/GRO (§4): it executes once per
large segment, not once per wire packet.  The simulator records ops per
MTU-sized wire packet, so both op counts and stack packet counts are
divided by :data:`TSO_GRO_FACTOR` before pricing.

Constants are calibrated once so the *baseline* curves land in the
paper's range (Fig. 11 sender: ~21% at 100 conns to ~46% at 10 K;
Fig. 12 receiver: ~10% to ~16%).  The claim under test — AC/DC adds
**less than one percentage point** — is then an output of the measured
op counts, not an input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

#: ns per datapath operation (vSwitch work, per TSO/GRO segment).
DEFAULT_OP_COSTS_NS: Dict[str, float] = {
    "flow_lookup": 70.0,      # RCU hash lookup
    "flow_insert": 450.0,
    "flow_resurrect": 450.0,  # same alloc+insert path as a SYN insert
    "flow_migrate": 200.0,    # in-place CC retune / rebuild, no realloc
    "flow_remove": 300.0,
    "seq_update": 20.0,
    "ecn_mark": 12.0,
    "ecn_strip": 12.0,
    "counters_update": 15.0,
    "pack_attach": 90.0,      # header memmove into skb headroom
    "fack_create": 260.0,     # allocate + build a packet
    "feedback_extract": 30.0,
    "cc_update": 80.0,        # Fig. 5 arithmetic
    "rwnd_rewrite": 15.0,     # a memcpy
    "policing_check": 10.0,
    "checksum_recalc": 45.0,  # incremental IP checksum
    "forward": 120.0,         # baseline OVS actions
}

#: Wire packets per TSO/GRO segment seen by the vSwitch and the stack.
TSO_GRO_FACTOR = 16.0

#: Host stack costs (identical across schemes; dominate total CPU).
STACK_NS_PER_SEGMENT_TX = 1500.0
STACK_NS_PER_SEGMENT_RX = 1200.0
STACK_NS_PER_BYTE_TX = 0.5        # skb alloc/copy/completion per byte
STACK_NS_PER_BYTE_RX = 0.15
SENDER_CONN_TICK_NS = 100_000.0   # per conn per second: timers, wakeups
RECEIVER_CONN_TICK_NS = 35_000.0
SENDER_FLOOR_PERCENT = 17.0
RECEIVER_FLOOR_PERCENT = 7.0
CORES = 6                          # the testbed's Xeon has 6 cores


@dataclass
class CpuReport:
    """CPU utilisation breakdown for one side of the transfer."""

    stack_percent: float
    datapath_percent: float
    floor_percent: float = 0.0

    @property
    def total_percent(self) -> float:
        return self.floor_percent + self.stack_percent + self.datapath_percent


def datapath_seconds(op_counts: Mapping[str, int],
                     op_costs_ns: Mapping[str, float] = None,
                     tso_factor: float = TSO_GRO_FACTOR) -> float:
    """CPU-seconds for the recorded vSwitch ops, TSO/GRO-amortised."""
    costs = DEFAULT_OP_COSTS_NS if op_costs_ns is None else op_costs_ns
    total_ns = 0.0
    for op, count in op_counts.items():
        total_ns += costs.get(op, 0.0) * count
    return total_ns * 1e-9 / max(tso_factor, 1.0)


def cpu_percent(
    op_counts: Mapping[str, int],
    tx_packets: int,
    rx_packets: int,
    tx_bytes: int,
    rx_bytes: int,
    connections: int,
    duration_s: float,
    cores: int = CORES,
    floor_percent: float = 0.0,
    conn_tick_ns: float = SENDER_CONN_TICK_NS,
) -> CpuReport:
    """System-wide CPU utilisation (percent) over ``duration_s``."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    tx_segments = tx_packets / TSO_GRO_FACTOR
    rx_segments = rx_packets / TSO_GRO_FACTOR
    stack_s = (
        tx_segments * STACK_NS_PER_SEGMENT_TX
        + rx_segments * STACK_NS_PER_SEGMENT_RX
        + tx_bytes * STACK_NS_PER_BYTE_TX
        + rx_bytes * STACK_NS_PER_BYTE_RX
        + connections * conn_tick_ns * duration_s
    ) * 1e-9
    datapath_s = datapath_seconds(op_counts)
    budget = cores * duration_s
    return CpuReport(
        stack_percent=100.0 * stack_s / budget,
        datapath_percent=100.0 * datapath_s / budget,
        floor_percent=floor_percent,
    )
