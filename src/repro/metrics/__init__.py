"""Measurement: statistics, collectors, and the CPU-overhead model."""

from .collectors import (
    Event,
    EventLog,
    FaultRecorder,
    FctRecorder,
    FlowRecord,
    RttRecorder,
    ThroughputMeter,
    WindowLogger,
)
from .cpu_model import CpuReport, cpu_percent, datapath_seconds
from .stats import Ewma, cdf_points, jain_index, moving_average, percentile, summarize

__all__ = [
    "CpuReport",
    "Event",
    "EventLog",
    "Ewma",
    "FaultRecorder",
    "FctRecorder",
    "FlowRecord",
    "RttRecorder",
    "ThroughputMeter",
    "WindowLogger",
    "cdf_points",
    "cpu_percent",
    "datapath_seconds",
    "jain_index",
    "moving_average",
    "percentile",
    "summarize",
]
