"""Statistics helpers: percentiles, CDFs, Jain's fairness index.

The paper's metrics (§5): TCP RTT percentiles, average throughput, flow
completion times, loss rate and Jain's fairness index [32].  Everything
here is pure-Python over plain lists so tests can reason about exact
values.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (like numpy's default).

    ``p`` is in [0, 100].  Raises on an empty sample set — silently
    returning 0 has hidden too many broken experiments.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p!r}")
    return _percentile_sorted(sorted(samples), p)


def _percentile_sorted(ordered: Sequence[float], p: float) -> float:
    """:func:`percentile` over an **already-sorted** sample set.

    The sorted-input fast path for callers that compute several
    percentiles of one distribution (``summarize`` sits on the per-epoch
    p99-FCT canary/SLO gating hot path; re-sorting the same list once
    per percentile is pure waste).  Inputs are assumed validated.
    """
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # Clamp: float interpolation may escape the bracket by an epsilon.
    return min(max(value, ordered[low]), ordered[high])


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) pairs."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 is fair."""
    if not values:
        raise ValueError("fairness of empty allocation")
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0  # everyone got exactly nothing: technically fair
    return (total * total) / (len(values) * squares)


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """The summary rows the paper's tables report."""
    if not samples:
        raise ValueError("summary of empty sample set")
    ordered = sorted(samples)
    return {
        "count": float(len(ordered)),
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
        "p50": _percentile_sorted(ordered, 50),
        "p95": _percentile_sorted(ordered, 95),
        "p99": _percentile_sorted(ordered, 99),
        "p999": _percentile_sorted(ordered, 99.9),
    }


class Ewma:
    """Exponentially weighted moving average (DCTCP's alpha estimator
    shape); ``gain`` is the weight of each new observation."""

    def __init__(self, gain: float, initial: float = 0.0):
        if not 0.0 < gain <= 1.0:
            raise ValueError(f"gain must be in (0, 1], got {gain!r}")
        self.gain = gain
        self.value = initial

    def update(self, observation: float) -> float:
        self.value = (1.0 - self.gain) * self.value + self.gain * observation
        return self.value


def moving_average(series: Iterable[Tuple[float, float]],
                   window_s: float) -> List[Tuple[float, float]]:
    """Time-windowed moving average of a (time, value) series.

    Used for the Fig. 9b "100 ms moving average" view of window sizes.
    Timestamps must be non-decreasing: the sliding eviction pointer
    assumes time order, and out-of-order input used to under- or
    over-evict silently (the average went wrong with no error).  A point
    exactly ``window_s`` old is still inside the window (inclusive left
    edge).
    """
    points = list(series)
    if window_s <= 0:
        raise ValueError("window must be positive")
    out: List[Tuple[float, float]] = []
    start = 0
    acc = 0.0
    prev_t: Optional[float] = None
    for i, (t, v) in enumerate(points):
        if prev_t is not None and t < prev_t:
            raise ValueError(
                f"moving_average needs non-decreasing timestamps: point "
                f"{i} at t={t!r} follows t={prev_t!r}; sort the series "
                f"before averaging")
        prev_t = t
        acc += v
        while points[start][0] < t - window_s:
            acc -= points[start][1]
            start += 1
        out.append((t, acc / (i - start + 1)))
    return out
