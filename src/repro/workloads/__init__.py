"""Traffic: applications, workload orchestrators, trace distributions."""

from .apps import BulkSender, EchoSink, MessageStream, PingPong, Sink
from .background import BackgroundFlowGroup, TierRouter
from .generators import ConcurrentStride, Shuffle, TraceDriven, start_incast
from .traces import (
    DATA_MINING_CDF,
    MICE_CUTOFF_BYTES,
    WEB_SEARCH_CDF,
    FlowSizeDistribution,
    data_mining,
    web_search,
)

__all__ = [
    "BackgroundFlowGroup",
    "BulkSender",
    "ConcurrentStride",
    "DATA_MINING_CDF",
    "EchoSink",
    "FlowSizeDistribution",
    "MICE_CUTOFF_BYTES",
    "MessageStream",
    "PingPong",
    "Shuffle",
    "Sink",
    "TierRouter",
    "TraceDriven",
    "WEB_SEARCH_CDF",
    "data_mining",
    "start_incast",
    "web_search",
]
