"""Traffic applications: the simulation's iperf, sockperf and FCT tools.

* :class:`Sink` — a listening endpoint; counts delivered bytes and routes
  delivery notifications to registered per-connection consumers.
* :class:`EchoSink` — request/response server for the ping-pong probe.
* :class:`BulkSender` — iperf stand-in: one connection, optionally
  unlimited data, optional fixed transfer size.
* :class:`PingPong` — sockperf stand-in: application-level RTT samples
  over a long-lived connection.
* :class:`MessageStream` — the "simple TCP application [that] sends
  messages of specified sizes to measure FCTs" (§5.2): a persistent
  connection carrying framed messages whose completion is detected at the
  receiver.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from ..metrics.collectors import FctRecorder, FlowRecord, RttRecorder
from ..net.host import Host
from ..sim.engine import Simulator
from ..tcp.connection import TcpConnection

ConnKey = Tuple[str, int, str, int]


class Sink:
    """Listening application that accepts everything on a port."""

    def __init__(self, host: Host, port: int, **conn_opts):
        self.host = host
        self.port = port
        self.bytes_received = 0
        self._consumers: Dict[ConnKey, Callable[[int], None]] = {}
        host.listen(port, on_accept=self._accept, **conn_opts)

    def _accept(self, conn: TcpConnection) -> None:
        # partial, not a lambda: connection callbacks are reachable from
        # the engine heap, which checkpoint/restore pickles.
        conn.on_data = partial(self._on_data, conn)

    def _on_data(self, conn: TcpConnection, nbytes: int) -> None:
        self.bytes_received += nbytes
        consumer = self._consumers.get(conn.key())
        if consumer is not None:
            consumer(nbytes)

    def register_for(self, sender_conn: TcpConnection,
                     consumer: Callable[[int], None]) -> None:
        """Route deliveries of ``sender_conn``'s bytes to ``consumer``.

        The receiver-side key is the mirror of the sender's key.
        """
        key = (sender_conn.raddr, sender_conn.rport,
               sender_conn.laddr, sender_conn.lport)
        self._consumers[key] = consumer


class EchoSink:
    """Server half of the ping-pong probe: echo every full request."""

    def __init__(self, host: Host, port: int, msg_bytes: int = 16, **conn_opts):
        self.msg_bytes = msg_bytes
        self._pending: Dict[ConnKey, int] = {}
        host.listen(port, on_accept=self._accept, **conn_opts)

    def _accept(self, conn: TcpConnection) -> None:
        self._pending[conn.key()] = 0
        conn.on_data = partial(self._on_data, conn)

    def _on_data(self, conn: TcpConnection, nbytes: int) -> None:
        acc = self._pending[conn.key()] + nbytes
        while acc >= self.msg_bytes:
            acc -= self.msg_bytes
            conn.send(self.msg_bytes)
        self._pending[conn.key()] = acc


class BulkSender:
    """iperf stand-in: a single long-lived or fixed-size transfer."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        port: int,
        size_bytes: Optional[int] = None,
        start_at: float = 0.0,
        send_at: Optional[float] = None,
        stop_at: Optional[float] = None,
        conn_opts: Optional[dict] = None,
        on_start: Optional[Callable[["BulkSender"], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.dst = dst
        self.port = port
        self.size_bytes = size_bytes
        self.send_at = send_at
        self.stop_at = stop_at
        self.conn_opts = conn_opts or {}
        self.conn: Optional[TcpConnection] = None
        self.started_at: Optional[float] = None
        self.on_start = on_start
        sim.schedule_at(start_at, self._start)

    def _start(self) -> None:
        self.started_at = self.sim.now
        self.conn = self.host.connect(self.dst, self.port, **self.conn_opts)
        self.conn.on_established = self._established
        if self.on_start is not None:
            self.on_start(self)

    def _established(self) -> None:
        assert self.conn is not None
        if self.send_at is not None and self.send_at > self.sim.now:
            # Pre-established connection; the data phase starts on cue
            # (incast methodology: connect first, then the storm).
            self.sim.schedule_at(self.send_at, self._established_now)
            return
        self._established_now()

    def _established_now(self) -> None:
        if self.size_bytes is None:
            self.conn.send_forever()
            if self.stop_at is not None:
                self.sim.schedule_at(self.stop_at, self._stop)
        else:
            self.conn.send(self.size_bytes)
            self.conn.close()

    def _stop(self) -> None:
        if self.conn is not None:
            self.conn.unlimited_data = False
            self.conn.close()

    @property
    def bytes_acked(self) -> int:
        return self.conn.bytes_acked_total if self.conn is not None else 0

    def goodput_bps(self, duration_s: float) -> float:
        """Average goodput over ``duration_s`` of sending time."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return self.bytes_acked * 8.0 / duration_s


class PingPong:
    """sockperf stand-in: request/response RTT probe.

    Two modes, mirroring sockperf's:

    * **ping-pong** (default): the next request goes out ``interval_s``
      after the previous response lands, so at most one message is in
      flight;
    * **pipelined** (``pipelined=True``, sockperf's under-load mode):
      requests go out every ``interval_s`` unconditionally and responses
      are matched FIFO — this keeps producing samples even when the path
      is so lossy that individual requests take many RTOs (the Fig. 16
      coexistence trap), at the cost of measuring queueing behind one's
      own earlier requests.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        port: int,
        recorder: RttRecorder,
        msg_bytes: int = 16,
        interval_s: float = 0.001,
        start_at: float = 0.0,
        warmup_s: float = 0.0,
        pipelined: bool = False,
        conn_opts: Optional[dict] = None,
    ):
        self.sim = sim
        self.host = host
        self.dst = dst
        self.port = port
        self.recorder = recorder
        self.msg_bytes = msg_bytes
        self.interval = interval_s
        self.warmup = warmup_s
        self.pipelined = pipelined
        self.conn_opts = conn_opts or {}
        self.conn: Optional[TcpConnection] = None
        self._sent_at: Optional[float] = None
        self._outstanding: List[float] = []
        self._acc = 0
        sim.schedule_at(start_at, self._start)

    def _start(self) -> None:
        self.conn = self.host.connect(self.dst, self.port, **self.conn_opts)
        self.conn.on_established = self._warmed_start
        self.conn.on_data = self._on_response_bytes

    def _warmed_start(self) -> None:
        """Connect early (before congestion builds), ping after warm-up so
        the samples reflect the loaded network only."""
        if self.warmup > 0:
            self.sim.schedule(self.warmup, self._send_request)
        else:
            self._send_request()

    def _send_request(self) -> None:
        assert self.conn is not None
        if self.conn.state != "ESTABLISHED":
            return
        if self.pipelined:
            self._outstanding.append(self.sim.now)
            self.conn.send(self.msg_bytes)
            self.sim.schedule(self.interval, self._send_request)
        else:
            self._sent_at = self.sim.now
            self.conn.send(self.msg_bytes)

    def _on_response_bytes(self, nbytes: int) -> None:
        self._acc += nbytes
        while self._acc >= self.msg_bytes:
            self._acc -= self.msg_bytes
            if self.pipelined:
                if self._outstanding:
                    self.recorder.record(self.sim.now - self._outstanding.pop(0))
            else:
                if self._sent_at is not None:
                    self.recorder.record(self.sim.now - self._sent_at)
                    self._sent_at = None
                self.sim.schedule(self.interval, self._send_request)


class _SequentialChain:
    """Completion handler driving back-to-back sends (picklable).

    :meth:`MessageStream.send_sequential` installs one of these instead
    of a closure so a stream captured by a service checkpoint still
    pickles; it chains to whatever handler the user had installed.
    """

    def __init__(self, stream: "MessageStream",
                 user_cb: Optional[Callable[["FlowRecord"], None]],
                 remaining: List[int]):
        self.stream = stream
        self.user_cb = user_cb
        self.remaining = remaining

    def __call__(self, record: "FlowRecord") -> None:
        if self.user_cb is not None:
            self.user_cb(record)
        if self.remaining:
            self.stream.send_message(self.remaining.pop(0))


class MessageStream:
    """Framed messages over one persistent connection, FCT per message.

    The sender calls :meth:`send_message`; completion fires when the
    receiver has delivered the message's last byte (the ``Sink`` routes
    delivery notifications back here).  Messages may overlap: a new send
    while an earlier one is in flight simply queues more bytes, and
    boundaries are tracked cumulatively — matching how the paper's
    fixed-interval "mice" messages behave under congestion.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        port: int,
        sink: Sink,
        recorder: FctRecorder,
        label: str,
        conn_opts: Optional[dict] = None,
        start_at: Optional[float] = None,
    ):
        self.sim = sim
        self.host = host
        self.dst = dst
        self.port = port
        self.sink = sink
        self.recorder = recorder
        self.label = label
        self.conn_opts = conn_opts or {}
        self.conn: Optional[TcpConnection] = None
        self.established = False
        self._delivered = 0
        self._queued = 0
        # (cumulative-boundary, FlowRecord) in send order.
        self._boundaries: List[Tuple[int, FlowRecord]] = []
        self._backlog: List[int] = []     # messages requested pre-establish
        self.on_message_complete: Optional[Callable[[FlowRecord], None]] = None
        if start_at is None:
            self._start()  # open the connection now (works mid-run too)
        else:
            sim.schedule_at(start_at, self._start)

    def _start(self) -> None:
        self.conn = self.host.connect(self.dst, self.port, **self.conn_opts)
        self.conn.on_established = self._established_cb
        self.sink.register_for(self.conn, self._on_delivered)

    def _established_cb(self) -> None:
        self.established = True
        backlog, self._backlog = self._backlog, []
        for size in backlog:
            self._enqueue(size)

    # ------------------------------------------------------------------
    def send_message(self, size_bytes: int) -> FlowRecord:
        """Queue one message now; returns its (open) flow record."""
        if size_bytes <= 0:
            raise ValueError("message size must be positive")
        record = self.recorder.open(self.label, size_bytes, self.sim.now)
        self._queued += size_bytes
        self._boundaries.append((self._queued, record))
        if self.established:
            self._enqueue(size_bytes)
        else:
            self._backlog.append(size_bytes)
        return record

    def send_every(self, size_bytes: int, interval_s: float,
                   until: float) -> None:
        """Fixed-interval sends (the 16 KB / 100 ms mice of §5.2)."""
        def tick() -> None:
            if self.sim.now > until:
                return
            self.send_message(size_bytes)
            self.sim.schedule(interval_s, tick)
        tick()

    def send_sequential(self, sizes: List[int]) -> None:
        """Send ``sizes`` back-to-back: next begins when previous lands.

        Installs this stream's completion handler (chaining any existing
        one), so a stream should be either sequential or free-form.  The
        handler is a module-level class, not a closure, so streams stay
        picklable when a service checkpoint reaches them.
        """
        remaining = list(sizes)
        self.on_message_complete = _SequentialChain(
            self, self.on_message_complete, remaining)
        if remaining:
            self.send_message(remaining.pop(0))

    # ------------------------------------------------------------------
    def _enqueue(self, size_bytes: int) -> None:
        assert self.conn is not None
        self.conn.send(size_bytes)

    def _on_delivered(self, nbytes: int) -> None:
        self._delivered += nbytes
        while self._boundaries and self._delivered >= self._boundaries[0][0]:
            _boundary, record = self._boundaries.pop(0)
            record.end = self.sim.now
            if self.on_message_complete is not None:
                self.on_message_complete(record)
