"""Flow-size distributions for the trace-driven workloads (Fig. 23).

The paper samples message sizes from two published datacenter workloads:

* **web-search** — the DCTCP paper's production cluster [3]: most flows
  are a few KB of query traffic, with a modest heavy tail of background
  transfers up to tens of MB.
* **data-mining** — the VL2 cluster [25]: an extremely heavy tail; over
  half the flows are under 1 KB while a tiny fraction reach hundreds of
  MB and carry most of the bytes.

We encode each as a piecewise log-linear CDF matching the published
curves and sample by inverse transform.  ``scale`` lets experiments shrink
sizes proportionally (the simulator trades absolute duration for shape;
see EXPERIMENTS.md).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple

from ..sim import rng as rng_registry

#: (size_bytes, cumulative probability) control points.
WEB_SEARCH_CDF: List[Tuple[float, float]] = [
    (1_000, 0.00),
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.50),
    (33_000, 0.60),
    (53_000, 0.70),
    (133_000, 0.80),
    (667_000, 0.90),
    (1_300_000, 0.95),
    (6_600_000, 0.98),
    (20_000_000, 1.00),
]

DATA_MINING_CDF: List[Tuple[float, float]] = [
    (100, 0.00),
    (300, 0.20),
    (1_000, 0.50),
    (2_000, 0.60),
    (10_000, 0.78),
    (100_000, 0.90),
    (1_000_000, 0.95),
    (10_000_000, 0.975),
    (100_000_000, 0.99),
    (1_000_000_000, 1.00),
]

#: The paper's mice-flow cutoff for Fig. 23 ("flows < 10KB").
MICE_CUTOFF_BYTES = 10_000


class FlowSizeDistribution:
    """Inverse-transform sampler over a piecewise log-linear CDF."""

    def __init__(self, cdf: Sequence[Tuple[float, float]], name: str = "",
                 scale: float = 1.0, max_bytes: float = float("inf")):
        if len(cdf) < 2:
            raise ValueError("CDF needs at least two control points")
        sizes = [s for s, _ in cdf]
        probs = [p for _, p in cdf]
        if sorted(sizes) != sizes or sorted(probs) != probs:
            raise ValueError("CDF control points must be non-decreasing")
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("CDF must span probability 0 to 1")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.name = name
        self.scale = scale
        self.max_bytes = max_bytes
        self._log_sizes = [math.log(s) for s in sizes]
        self._probs = probs

    def quantile(self, u: float) -> int:
        """Flow size at cumulative probability ``u`` (before scaling cap)."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"quantile arg must be in [0,1], got {u!r}")
        idx = bisect.bisect_left(self._probs, u)
        idx = min(max(idx, 1), len(self._probs) - 1)
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        s0, s1 = self._log_sizes[idx - 1], self._log_sizes[idx]
        frac = 0.0 if p1 == p0 else (u - p0) / (p1 - p0)
        log_size = s0 + frac * (s1 - s0)
        size = math.exp(log_size) * self.scale
        return max(1, round(min(size, self.max_bytes)))

    def sample(self, rng: random.Random) -> int:
        return self.quantile(rng.random())

    def mean_estimate(self, samples: int = 20_000, seed: int = 7) -> float:
        """Monte-Carlo mean (load calculations in the experiments)."""
        rng = rng_registry.stream(seed, "traces.mean-estimate")
        return sum(self.sample(rng) for _ in range(samples)) / samples


def web_search(scale: float = 1.0, max_bytes: float = float("inf")) -> FlowSizeDistribution:
    """The DCTCP-paper web-search workload."""
    return FlowSizeDistribution(WEB_SEARCH_CDF, "web-search", scale, max_bytes)


def data_mining(scale: float = 1.0, max_bytes: float = float("inf")) -> FlowSizeDistribution:
    """The VL2 data-mining workload (heavier tail)."""
    return FlowSizeDistribution(DATA_MINING_CDF, "data-mining", scale, max_bytes)
