"""Workload orchestrators for the macrobenchmarks (§5.2).

Each generator wires applications (``repro.workloads.apps``) over a star
topology the way the paper describes:

* :func:`start_incast` — N-to-1 fan-in of long-lived flows;
* :class:`ConcurrentStride` — server *i* sends background transfers to
  servers *i+1..i+4* (mod N) sequentially, plus fixed-interval mice to
  *i+8*;
* :class:`Shuffle` — every server sends a block to every other server in
  random order, at most ``fanout`` transfers at a time, plus mice;
* :class:`TraceDriven` — per-server applications sampling message sizes
  from a flow-size distribution, sent to random destinations
  back-to-back over long-lived connections.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..metrics.collectors import FctRecorder, FlowRecord
from ..net.host import Host
from ..sim.engine import Simulator
from .apps import BulkSender, MessageStream, Sink
from .traces import FlowSizeDistribution


def start_incast(
    sim: Simulator,
    senders: Sequence[Host],
    receiver: Host,
    port: int = 5000,
    size_bytes: Optional[int] = None,
    start_jitter: Sequence[float] = (),
    conn_opts: Optional[dict] = None,
    sink_opts: Optional[dict] = None,
) -> List[BulkSender]:
    """N-to-1 incast of long-lived (or fixed-size) flows."""
    Sink(receiver, port, **(sink_opts or {}))
    flows = []
    for i, sender in enumerate(senders):
        start = start_jitter[i] if i < len(start_jitter) else 0.0
        flows.append(BulkSender(
            sim, sender, receiver.addr, port,
            size_bytes=size_bytes, start_at=start,
            conn_opts=dict(conn_opts or {}),
        ))
    return flows


class ConcurrentStride:
    """§5.2 'concurrent stride': background stride-4 + mice to i+8."""

    def __init__(
        self,
        sim: Simulator,
        hosts: Sequence[Host],
        recorder: FctRecorder,
        background_bytes: int,
        background_rounds: int = 1,
        mice_bytes: int = 16 * 1024,
        mice_interval: float = 0.1,
        duration: float = 2.0,
        stride: int = 4,
        mice_offset: int = 8,
        port: int = 5000,
        conn_opts: Optional[dict] = None,
    ):
        self.sim = sim
        self.hosts = list(hosts)
        self.recorder = recorder
        n = len(self.hosts)
        conn_opts = conn_opts or {}
        self.sinks = {h.addr: Sink(h, port, **conn_opts) for h in self.hosts}
        self.streams: List[MessageStream] = []
        for i, host in enumerate(self.hosts):
            # Background: sequential transfers to the next `stride` hosts.
            for k in range(1, stride + 1):
                dst = self.hosts[(i + k) % n]
                stream = MessageStream(
                    sim, host, dst.addr, port, self.sinks[dst.addr],
                    recorder, label="background", conn_opts=dict(conn_opts))
                sizes = [background_bytes] * background_rounds
                sim.schedule_at(0.0, lambda s=stream, z=sizes: s.send_sequential(z))
                self.streams.append(stream)
            # Mice: fixed-interval small messages to host i+offset; the
            # streams are staggered across the interval (real servers'
            # timers are not phase-locked).
            dst = self.hosts[(i + mice_offset) % n]
            mice = MessageStream(
                sim, host, dst.addr, port, self.sinks[dst.addr],
                recorder, label="mice", conn_opts=dict(conn_opts))
            offset = (i / n) * mice_interval
            sim.schedule_at(offset, lambda s=mice: s.send_every(
                mice_bytes, mice_interval, until=duration))
            self.streams.append(mice)


class Shuffle:
    """§5.2 'shuffle': all-to-all blocks, ≤ ``fanout`` concurrent sends."""

    def __init__(
        self,
        sim: Simulator,
        hosts: Sequence[Host],
        recorder: FctRecorder,
        block_bytes: int,
        rng: random.Random,
        fanout: int = 2,
        mice_bytes: int = 16 * 1024,
        mice_interval: float = 0.1,
        mice_until: float = 2.0,
        mice_offset: int = 8,
        port: int = 5000,
        conn_opts: Optional[dict] = None,
    ):
        self.sim = sim
        self.hosts = list(hosts)
        self.recorder = recorder
        self.block_bytes = block_bytes
        self.fanout = fanout
        conn_opts = conn_opts or {}
        self.conn_opts = conn_opts
        self.port = port
        n = len(self.hosts)
        self.sinks = {h.addr: Sink(h, port, **conn_opts) for h in self.hosts}
        # Per-sender randomized destination order and progress cursor.
        self._pending: Dict[str, List[Host]] = {}
        self._active: Dict[str, int] = {}
        for host in self.hosts:
            order = [h for h in self.hosts if h is not host]
            rng.shuffle(order)
            self._pending[host.addr] = order
            self._active[host.addr] = 0
        for i, host in enumerate(self.hosts):
            dst = self.hosts[(i + mice_offset) % n]
            mice = MessageStream(
                sim, host, dst.addr, port, self.sinks[dst.addr],
                recorder, label="mice", conn_opts=dict(conn_opts))
            offset = (i / n) * mice_interval
            sim.schedule_at(offset, lambda s=mice: s.send_every(
                mice_bytes, mice_interval, until=mice_until))
        for host in self.hosts:
            for _ in range(fanout):
                sim.schedule_at(0.0, lambda h=host: self._launch_next(h))

    def _launch_next(self, host: Host) -> None:
        pending = self._pending[host.addr]
        if not pending or self._active[host.addr] >= self.fanout:
            return
        dst = pending.pop(0)
        self._active[host.addr] += 1
        stream = MessageStream(
            self.sim, host, dst.addr, self.port, self.sinks[dst.addr],
            self.recorder, label="background", conn_opts=dict(self.conn_opts))

        def done(_record: FlowRecord, h=host) -> None:
            self._active[h.addr] -= 1
            self._launch_next(h)

        stream.on_message_complete = done
        stream.send_message(self.block_bytes)

    def finished(self) -> bool:
        return all(not p for p in self._pending.values()) and \
            all(a == 0 for a in self._active.values())


class TraceDriven:
    """§5.2 trace-driven load: sampled message sizes to random peers."""

    def __init__(
        self,
        sim: Simulator,
        hosts: Sequence[Host],
        recorder: FctRecorder,
        distribution: FlowSizeDistribution,
        rng: random.Random,
        apps_per_host: int = 5,
        messages_per_app: int = 20,
        port: int = 5000,
        conn_opts: Optional[dict] = None,
    ):
        self.sim = sim
        self.recorder = recorder
        conn_opts = conn_opts or {}
        sinks = {h.addr: Sink(h, port, **conn_opts) for h in hosts}
        hosts = list(hosts)
        for host in hosts:
            peers = [h for h in hosts if h is not host]
            for app in range(apps_per_host):
                dst = rng.choice(peers)
                sizes = [distribution.sample(rng) for _ in range(messages_per_app)]
                labels = ["mice" if s < 10_000 else "elephant" for s in sizes]
                stream = MessageStream(
                    sim, host, dst.addr, port, sinks[dst.addr], recorder,
                    label=f"trace:{labels[0]}", conn_opts=dict(conn_opts))
                # Label per message: wrap the recorder open via send loop.
                self._send_labeled(stream, sizes)

    def _send_labeled(self, stream: MessageStream, sizes: List[int]) -> None:
        remaining = list(sizes)

        def send_next(_record=None) -> None:
            if not remaining:
                return
            size = remaining.pop(0)
            stream.label = "mice" if size < 10_000 else "elephant"
            stream.send_message(size)

        stream.on_message_complete = send_next
        self.sim.schedule_at(0.0, send_next)
