"""Background traffic description and per-flow tier routing.

Hybrid-fidelity runs split their traffic between two tiers: foreground
flows that need packet-level fidelity (per-segment FCT, retransmission
behaviour, vSwitch enforcement) ride the packet datapath; long-lived
background whose only job is to pressure the bottleneck rides the fluid
tier (``repro.fluid``) at a tiny fraction of the event cost.

:class:`BackgroundFlowGroup` describes a homogeneous group of background
flows independent of tier; :class:`TierRouter` decides, per group, which
tier carries it.  Routing is explicit and deterministic — a group is
packet-tier if it says so (``packet_tier=True``) or if the router is
forced to ``"packet"`` mode (the fidelity-validation configuration where
everything is simulated packet-level for comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..fluid.model import FluidFlowSpec

_MODES = ("auto", "packet", "fluid")


@dataclass(frozen=True)
class BackgroundFlowGroup:
    """A homogeneous group of long-lived background flows.

    ``ect`` defaults from the congestion controller (DCTCP negotiates
    ECN; Reno-style background is ECN-incapable, i.e. the non-ECT
    victims of the Fig. 15/16 WRED trap).  ``packet_tier`` pins the
    group to the packet datapath regardless of router mode — for small
    groups whose per-flow behaviour matters.
    """

    name: str
    n_flows: int
    rtt_s: float
    mss: int = 1460
    cc: str = "dctcp"
    ect: Optional[bool] = None
    packet_tier: bool = False

    @property
    def resolved_ect(self) -> bool:
        return self.cc == "dctcp" if self.ect is None else self.ect

    def to_fluid_spec(self) -> FluidFlowSpec:
        # Fluid classes start from one MSS: a cohort of hundreds dumping
        # its aggregate initial window into the queue in a single fluid
        # step is unphysical (real flows never start in lockstep) and
        # parks the transient occupancy far above the WRED ramp.
        return FluidFlowSpec(
            name=self.name,
            n_flows=self.n_flows,
            rtt_s=self.rtt_s,
            mss=self.mss,
            cc="dctcp" if self.cc == "dctcp" else "reno",
            ect=self.resolved_ect,
            init_cwnd_bytes=self.mss,
        )


class TierRouter:
    """Route background flow groups onto the packet or fluid tier.

    * ``auto`` (default): fluid unless a group pins itself packet-tier;
    * ``packet``: everything packet-level (validation runs);
    * ``fluid``: everything fluid, overriding per-group pins (cost
      ceiling for capacity planning; per-flow fidelity is forfeited).
    """

    def __init__(self, mode: str = "auto"):
        if mode not in _MODES:
            raise ValueError(f"unknown tier mode {mode!r}; one of {_MODES}")
        self.mode = mode

    def route(self, groups: Sequence[BackgroundFlowGroup],
              ) -> Tuple[List[BackgroundFlowGroup], List[FluidFlowSpec]]:
        """Split ``groups`` into (packet-tier groups, fluid specs)."""
        packet: List[BackgroundFlowGroup] = []
        fluid: List[FluidFlowSpec] = []
        for group in groups:
            if self.mode == "fluid":
                fluid.append(group.to_fluid_spec())
            elif self.mode == "packet" or group.packet_tier:
                packet.append(group)
            else:
                fluid.append(group.to_fluid_spec())
        return packet, fluid
