"""Fluid flow-class model: homogeneous background flows as one ODE state.

A *flow class* aggregates ``n_flows`` identical long-lived flows sharing
one bottleneck port: same RTT, same MSS, same congestion controller.
Because the flows are homogeneous their windows synchronize in the fluid
limit, so the class carries a single shared ``cwnd`` and injects
``n_flows * cwnd / rtt`` bytes per second — the standard fluid-model
approximation (Alizadeh et al.'s DCTCP fluid analysis uses the same
N-identical-sources reduction).

The congestion feedback law runs once per RTT on the byte fractions the
coupling layer observed over that window:

* ``dctcp``: alpha EWMA with gain 1/16 over the marked-byte fraction,
  then ``cwnd *= 1 - alpha/2`` if any bytes were marked, else additive
  increase of one MSS (DCTCP section 3.3);
* ``reno``: halve on any lost bytes, else one MSS per RTT.

Everything here is plain arithmetic on floats — no RNG, no wall clock —
so the fluid tier is deterministic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

#: DCTCP's recommended EWMA gain for the marked-fraction estimator.
DCTCP_G = 1.0 / 16.0

_CC_LAWS = ("dctcp", "reno")


@dataclass(frozen=True)
class FluidFlowSpec:
    """Static description of one background flow class.

    ``ect`` selects which WRED action the class feels: ECN-capable
    classes are marked above K, non-ECT classes are dropped along the
    WRED ramp (the Fig. 15/16 coexistence trap, now cheap enough to
    run with hundreds of background flows).
    """

    name: str
    n_flows: int
    rtt_s: float
    mss: int = 1460
    cc: str = "dctcp"
    ect: bool = True
    init_cwnd_bytes: int = 10 * 1460

    def __post_init__(self) -> None:
        if self.n_flows <= 0:
            raise ValueError("a fluid class needs at least one flow")
        if self.rtt_s <= 0:
            raise ValueError("fluid RTT must be positive")
        if self.mss <= 0:
            raise ValueError("fluid MSS must be positive")
        if self.cc not in _CC_LAWS:
            raise ValueError(f"unknown fluid cc {self.cc!r}; one of {_CC_LAWS}")
        if self.init_cwnd_bytes < self.mss:
            raise ValueError("initial cwnd must be at least one MSS")


class FluidClass:
    """Runtime state of one flow class at one port."""

    __slots__ = ("spec", "cwnd", "alpha", "backlog",
                 "rtt_clock", "win_sent", "win_marked", "win_lost",
                 "offered_bytes", "delivered_bytes",
                 "marked_bytes", "lost_bytes")

    def __init__(self, spec: FluidFlowSpec):
        self.spec = spec
        self.cwnd = float(spec.init_cwnd_bytes)
        self.alpha = 0.0
        #: Bytes of this class currently queued at the port (fluid overlay).
        self.backlog = 0.0
        # Per-RTT feedback window accumulators.
        self.rtt_clock = 0.0
        self.win_sent = 0.0
        self.win_marked = 0.0
        self.win_lost = 0.0
        # Lifetime counters (telemetry / benchmark accounting).
        self.offered_bytes = 0.0
        self.delivered_bytes = 0.0
        self.marked_bytes = 0.0
        self.lost_bytes = 0.0

    # ------------------------------------------------------------------
    def offered_rate_bps(self) -> float:
        """Current injection rate: ``n_flows * cwnd / rtt`` in bits/s."""
        spec = self.spec
        return spec.n_flows * self.cwnd * 8.0 / spec.rtt_s

    def advance_feedback(self, dt: float) -> None:
        """Advance the RTT clock; apply the cc law when a window closes.

        Called once per fluid step after the window accumulators have
        been fed.  The window closes on the first step boundary at or
        past one RTT — the discretization every fluid model makes.
        """
        self.rtt_clock += dt
        if self.rtt_clock < self.spec.rtt_s:
            return
        self.rtt_clock = 0.0
        sent, marked, lost = self.win_sent, self.win_marked, self.win_lost
        self.win_sent = self.win_marked = self.win_lost = 0.0
        spec = self.spec
        if spec.cc == "dctcp":
            frac = marked / sent if sent > 0.0 else 0.0
            self.alpha += DCTCP_G * (frac - self.alpha)
            if lost > 0.0:
                self.cwnd *= 0.5
            elif marked > 0.0:
                self.cwnd *= 1.0 - self.alpha / 2.0
            else:
                self.cwnd += spec.mss
        else:  # reno
            if lost > 0.0 or marked > 0.0:
                self.cwnd *= 0.5
            else:
                self.cwnd += spec.mss
        if self.cwnd < spec.mss:
            self.cwnd = float(spec.mss)

    def snapshot(self) -> dict:
        """Counters in metric-source shape (see repro.obs)."""
        return {
            "name": self.spec.name,
            "n_flows": self.spec.n_flows,
            "cc": self.spec.cc,
            "cwnd_bytes": self.cwnd,
            "alpha": self.alpha,
            "backlog_bytes": self.backlog,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "marked_bytes": self.marked_bytes,
            "lost_bytes": self.lost_bytes,
        }
