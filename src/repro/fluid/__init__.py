"""Fluid background-traffic tier for hybrid-fidelity runs.

The packet datapath (``repro.net``) simulates every segment of every
flow; that fidelity is wasted on background load whose only job is to
pressure the shared buffer and the ECN profile.  This package carries
background flows as *fluid*: per-timestep expected-value byte flows
(cwnd x pkt / RTT injection, residual-capacity drain, ECN-fraction
feedback per flow class) that charge their backlog into the
:class:`~repro.net.buffer.SharedBuffer` as an occupancy overlay and
inflate packet serialization by the bandwidth they consume.

Contract (see DESIGN.md section 15):

* the fluid tier is deterministic and RNG-free — batch WRED is
  expected-value, so the packet tier's RNG streams are unperturbed;
* with zero background classes no stepper is scheduled and every
  coupling hook returns its identity value, so a zero-background
  hybrid run is byte-identical to pure-packet mode.
"""

from .model import FluidClass, FluidFlowSpec
from .coupling import FluidPort, FluidTier

__all__ = [
    "FluidClass",
    "FluidFlowSpec",
    "FluidPort",
    "FluidTier",
]
