"""Coupling layer: fluid flow classes <-> the packet datapath.

A :class:`FluidPort` owns the fluid state at one switch output port and
advances it one timestep at a time:

1. **inject** — each class offers ``n_flows * cwnd / rtt * dt`` bytes;
2. **WRED** — the port's own :class:`~repro.net.red.EcnMarker` evaluates
   the batch at the *composed* occupancy (packet + fluid), marking ECT
   bytes and shaving non-ECT bytes along the drop ramp
   (:meth:`~repro.net.red.EcnMarker.decide_batch`: expected-value, no
   RNG draws);
3. **DT admission** — the fluid backlog is capped by the closed form of
   Dynamic Threshold admission, ``q_pkt + B <= alpha * (free - B)``,
   i.e. ``B <= (alpha*free_excl - q_pkt) / (1 + alpha)``; excess bytes
   are tail losses fed back to the classes;
4. **drain** — the backlog drains through the *residual* link capacity:
   the line rate's byte budget for the step minus what the packet tier
   actually transmitted (read off the port's tx counter), split across
   classes in proportion to their backlogs;
5. **charge** — the surviving backlog is installed as the shared
   buffer's occupancy overlay (:meth:`SharedBuffer.set_overlay`), which
   is what the packet tier's WRED and DT admission see next;
6. **feedback** — each class closes its per-RTT window and runs its
   congestion-control law on the marked/lost byte fractions.

In the other direction the packet tier feels the fluid through two
hooks on :class:`~repro.net.link.SwitchTxPort`: the composed occupancy
(pressure on WRED and DT) and :meth:`FluidPort.service_inflation`,
which stretches packet serialization by ``rate / (rate - fluid_bps)``
— the interleaving a real serializer would impose.  Both hooks return
exact identity values when the port carries no fluid arrivals, which
is the byte-identity contract for zero-background hybrid runs.

The whole layer is deterministic: plain float arithmetic, no RNG, no
wall clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net.buffer import SharedBuffer
from ..net.link import SwitchTxPort
from ..net.red import EcnMarker
from ..sim.engine import PeriodicSource, Simulator
from .model import FluidClass, FluidFlowSpec

#: Default fluid timestep: 0.1 ms, an order below the testbed RTTs, so
#: the per-RTT feedback law sees many steps per window.
DEFAULT_DT_S = 1e-4

#: Floor on the packet tier's share of the serializer.  Caps service
#: inflation at 1/MIN_PACKET_SHARE even if fluid arrivals exceed line
#: rate — an overloaded fluid tier builds backlog (and gets squeezed by
#: its own feedback) instead of starving the packet tier outright.
MIN_PACKET_SHARE = 0.05


class FluidPort:
    """Fluid state and coupling for one switch output port."""

    def __init__(self, port: SwitchTxPort, shared: SharedBuffer,
                 marker: EcnMarker, dt: float = DEFAULT_DT_S):
        if dt <= 0:
            raise ValueError("fluid timestep must be positive")
        self.port = port
        self.shared = shared
        self.marker = marker
        self.queue_id = port.queue_id
        self.dt = dt
        self.classes: List[FluidClass] = []
        #: Admitted fluid arrival rate over the last step, in bits/s —
        #: what :meth:`service_inflation` charges against the serializer.
        self.arrival_bps = 0.0
        self._last_tx_bytes = 0
        # Lifetime aggregates (telemetry / benchmark accounting).
        self.offered_bytes = 0.0
        self.delivered_bytes = 0.0
        self.marked_bytes = 0.0
        self.wred_dropped_bytes = 0.0
        self.tail_lost_bytes = 0.0
        self.steps = 0
        # Coupling observability (repro.obs flattens these into the
        # RunResult.telemetry snapshot): high-water of the occupancy
        # overlay charged into the shared buffer, high-water of the
        # serialization inflation the packet tier felt, and the most
        # recent tick's marked/offered fraction.
        self.overlay_peak_bytes = 0
        self.inflation_peak = 1.0
        self.mark_fraction = 0.0

    # ------------------------------------------------------------------
    def add_class(self, spec: FluidFlowSpec) -> FluidClass:
        cls = FluidClass(spec)
        self.classes.append(cls)
        return cls

    def service_inflation(self) -> float:
        """Serialization stretch factor from fluid bandwidth share.

        Exactly ``1.0`` when no fluid bytes arrived last step — the
        multiply in :meth:`SwitchTxPort._serialization_time` is then an
        exact float identity, preserving byte-identical pure-packet
        behaviour.
        """
        arrival = self.arrival_bps
        if arrival <= 0.0:
            return 1.0
        rate = self.port.rate_bps
        if rate <= 0.0:
            return 1.0
        ceiling = rate * (1.0 - MIN_PACKET_SHARE)
        if arrival > ceiling:
            arrival = ceiling
        return rate / (rate - arrival)

    # ------------------------------------------------------------------
    def step(self, dt: Optional[float] = None) -> None:
        """Advance the fluid state by one timestep (see module docstring)."""
        if dt is None:
            dt = self.dt
        self.steps += 1
        shared = self.shared
        qid = self.queue_id

        # (1)+(2) inject through the batch WRED profile at the composed
        # occupancy the arrivals actually see.
        occupancy = shared.occupancy(qid)
        arrivals = []
        admitted_total = 0.0
        offered_step = 0.0
        marked_step = 0.0
        for cls in self.classes:
            offered = cls.offered_rate_bps() / 8.0 * dt
            cls.offered_bytes += offered
            cls.win_sent += offered
            if cls.spec.ect:
                batch = self.marker.decide_batch(occupancy,
                                                 ect_bytes=offered)
                arrived = offered          # marked bytes still enqueue
                cls.marked_bytes += batch.marked_bytes
                cls.win_marked += batch.marked_bytes
                self.marked_bytes += batch.marked_bytes
                marked_step += batch.marked_bytes
            else:
                batch = self.marker.decide_batch(occupancy,
                                                 nonect_bytes=offered)
                arrived = offered - batch.dropped_bytes
                cls.lost_bytes += batch.dropped_bytes
                cls.win_lost += batch.dropped_bytes
                self.wred_dropped_bytes += batch.dropped_bytes
            arrivals.append(arrived)
            admitted_total += arrived
            self.offered_bytes += offered
            offered_step += offered

        # (3) Dynamic Threshold admission, closed form over the batch.
        backlog_total = 0.0
        for cls, arrived in zip(self.classes, arrivals):
            cls.backlog += arrived
            backlog_total += cls.backlog
        free_excl = (shared.capacity - shared.used
                     - (shared.overlay_total - shared.overlay_bytes(qid)))
        q_pkt = shared.queue_bytes(qid)
        alpha = shared.dt_alpha
        cap = (alpha * free_excl - q_pkt) / (1.0 + alpha)
        if cap < 0.0:
            cap = 0.0
        if backlog_total > cap:
            scale = cap / backlog_total if backlog_total > 0.0 else 0.0
            shaved = 0.0
            for cls in self.classes:
                loss = cls.backlog * (1.0 - scale)
                cls.backlog -= loss
                cls.lost_bytes += loss
                cls.win_lost += loss
                shaved += loss
            self.tail_lost_bytes += shaved
            admitted_total -= shaved
            if admitted_total < 0.0:
                admitted_total = 0.0
            backlog_total = cap

        # (4) drain through residual link capacity (line-rate byte budget
        # minus the packet tier's actual transmissions this step).
        tx_bytes = self.port.stats.tx_bytes
        pkt_delta = tx_bytes - self._last_tx_bytes
        self._last_tx_bytes = tx_bytes
        budget = self.port.rate_bps / 8.0 * dt - pkt_delta
        if budget > 0.0 and backlog_total > 0.0:
            if budget >= backlog_total:
                drained = backlog_total
                for cls in self.classes:
                    cls.delivered_bytes += cls.backlog
                    cls.backlog = 0.0
                backlog_total = 0.0
            else:
                share = budget / backlog_total
                drained = budget
                for cls in self.classes:
                    out = cls.backlog * share
                    cls.backlog -= out
                    cls.delivered_bytes += out
                backlog_total -= budget
            self.delivered_bytes += drained

        # (5) charge the surviving backlog into the shared pool.
        overlay = int(backlog_total)
        shared.set_overlay(qid, overlay)
        if overlay > self.overlay_peak_bytes:
            self.overlay_peak_bytes = overlay

        # (6) close per-RTT feedback windows.
        for cls in self.classes:
            cls.advance_feedback(dt)

        self.arrival_bps = admitted_total * 8.0 / dt
        self.mark_fraction = (marked_step / offered_step
                              if offered_step > 0.0 else 0.0)
        inflation = self.service_inflation()
        if inflation > self.inflation_peak:
            self.inflation_peak = inflation

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters in metric-source shape (see repro.obs)."""
        return {
            "queue_id": self.queue_id,
            "steps": self.steps,
            "arrival_bps": self.arrival_bps,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "marked_bytes": self.marked_bytes,
            "wred_dropped_bytes": self.wred_dropped_bytes,
            "tail_lost_bytes": self.tail_lost_bytes,
            "overlay_bytes": self.shared.overlay_bytes(self.queue_id),
            "overlay_peak_bytes": self.overlay_peak_bytes,
            "inflation_peak": self.inflation_peak,
            "mark_fraction": self.mark_fraction,
            "classes": [cls.snapshot() for cls in self.classes],
        }


class FluidTier:
    """All fluid ports of a run, advanced by one periodic event source.

    ``couple`` wires a :class:`FluidPort` onto a switch port (installing
    the occupancy/serialization hooks); ``start`` schedules the stepper
    — but **only if some coupled port actually carries flow classes**.
    A tier with no classes schedules nothing and every hook returns its
    identity value, so building the hybrid plumbing with zero background
    leaves the event stream byte-identical to pure-packet mode.
    """

    def __init__(self, sim: Simulator, dt: float = DEFAULT_DT_S):
        if dt <= 0:
            raise ValueError("fluid timestep must be positive")
        self.sim = sim
        self.dt = dt
        self.ports: List[FluidPort] = []
        self._source: Optional[PeriodicSource] = None

    def couple(self, switch, port_id: int,
               classes: tuple = ()) -> FluidPort:
        """Attach a fluid port to ``switch.ports[port_id]``."""
        port = switch.ports[port_id]
        fport = FluidPort(port, switch.shared, switch.marker, dt=self.dt)
        for spec in classes:
            fport.add_class(spec)
        port.attach_fluid(fport)
        self.ports.append(fport)
        return fport

    @property
    def active(self) -> bool:
        """True when at least one coupled port carries flow classes."""
        return any(fp.classes for fp in self.ports)

    def start(self, start_at: Optional[float] = None) -> None:
        """Schedule the stepper (idempotent; no-op without classes)."""
        if self._source is None and self.active:
            self._source = self.sim.schedule_periodic(
                self.dt, self._step, start_at=start_at)

    def stop(self) -> None:
        if self._source is not None:
            self._source.stop()
            self._source = None

    def _step(self) -> None:
        for fport in self.ports:
            fport.step(self.dt)

    # ------------------------------------------------------------------
    def delivered_packets(self, mss: int = 1460) -> float:
        """Fluid bytes delivered, in MSS-sized packet equivalents."""
        return sum(fp.delivered_bytes for fp in self.ports) / mss

    def snapshot(self) -> dict:
        return {
            "dt_s": self.dt,
            "active": self.active,
            "ports": [fp.snapshot() for fp in self.ports],
        }
