"""Service mode with a live control plane (DESIGN.md §12).

``repro.control`` runs the AC/DC datapath as a long-lived *service*: an
open-loop arriving workload over virtual-time epochs, with a command
queue drained at epoch boundaries.  Commands hot-reload per-tenant
policy (RWND clamps, vSwitch CC selection) and guard thresholds on live
vSwitches — flows are migrated, never restarted — and a canary rollout
engine stages candidate configs on a seeded host subset, grades them
against per-epoch SLOs, and promotes or automatically rolls back.

Public surface::

    from repro.control import (Service, ServiceConfig, TenantPolicy,
                               SloThresholds, service_cell)

Everything a service run produces is canonical JSON (see
``repro.runtime.spec``), so the same command schedule replayed serially,
through the process pool, or from the result cache is byte-identical —
the §10 determinism contract extended to mid-run mutation.
"""

from .canary import (
    CANARY,
    IDLE,
    PROMOTED,
    ROLLED_BACK,
    CanaryRollout,
)
from .commands import CommandError, TenantPolicy
from .service import ControlPlane, Service, ServiceConfig, service_cell
from .slo import CohortSample, SloThresholds, evaluate_slos

__all__ = [
    "CANARY",
    "CanaryRollout",
    "CohortSample",
    "CommandError",
    "ControlPlane",
    "IDLE",
    "PROMOTED",
    "ROLLED_BACK",
    "Service",
    "ServiceConfig",
    "SloThresholds",
    "TenantPolicy",
    "evaluate_slos",
    "service_cell",
]
