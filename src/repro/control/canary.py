"""The canary rollout state machine (DESIGN.md §12.4).

One :class:`CanaryRollout` tracks a single candidate config staged on a
seeded cohort of hosts.  The service ticks it once per epoch with that
epoch's SLO verdict; the rollout answers with an action —

* ``"hold"``     — keep canarying (not enough evidence yet);
* ``"promote"``  — ``promote_after`` consecutive healthy, gradeable
  epochs: roll the candidate out fleet-wide;
* ``"rollback"`` — an SLO violated, or the canary ran ``timeout_epochs``
  epochs without accumulating a verdict (a stuck canary is treated as a
  failed one: the service must not sit in a half-rolled-out state
  forever).

The rollout records the *prior* policy of every cohort host at start, so
rollback restores exactly what was there before — not a default.
Applying the actions (policy migration, events) is the control plane's
job; this object is pure bookkeeping and therefore trivially JSON-able.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .commands import TenantPolicy

IDLE = "idle"
CANARY = "canary"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"


@dataclass
class CanaryRollout:
    """Lifecycle of one candidate config on one cohort."""

    candidate: TenantPolicy
    cohort: List[str]
    prior: Dict[str, TenantPolicy]
    started_epoch: int
    promote_after: int = 3
    timeout_epochs: int = 8
    state: str = CANARY
    healthy_epochs: int = 0
    graded_epochs: int = 0
    ended_epoch: Optional[int] = None
    reason: Optional[str] = None
    violations: List[dict] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return self.state == CANARY

    def tick(self, epoch: int, violations: List[dict],
             gradeable: bool) -> str:
        """Fold one epoch's verdict in; returns the action to take."""
        if not self.active:
            raise RuntimeError(f"tick on a {self.state} rollout")
        if violations:
            self._end(ROLLED_BACK, epoch, "slo_violation", violations)
            return "rollback"
        if gradeable:
            self.graded_epochs += 1
            self.healthy_epochs += 1
            if self.healthy_epochs >= self.promote_after:
                self._end(PROMOTED, epoch, "healthy_streak", [])
                return "promote"
        else:
            # Insufficient data neither promotes nor rolls back, but a
            # healthy streak must be *consecutive* gradeable epochs.
            self.healthy_epochs = 0
        if epoch - self.started_epoch + 1 >= self.timeout_epochs:
            self._end(ROLLED_BACK, epoch, "timeout", [])
            return "rollback"
        return "hold"

    def abort(self, epoch: int, reason: str) -> None:
        """Operator- or kill-switch-initiated rollback."""
        if not self.active:
            raise RuntimeError(f"abort on a {self.state} rollout")
        self._end(ROLLED_BACK, epoch, reason, [])

    def _end(self, state: str, epoch: int, reason: str,
             violations: List[dict]) -> None:
        self.state = state
        self.ended_epoch = epoch
        self.reason = reason
        self.violations = violations

    def to_json(self) -> dict:
        return {
            "state": self.state,
            "candidate": self.candidate.to_json(),
            "cohort": list(self.cohort),
            "started_epoch": self.started_epoch,
            "ended_epoch": self.ended_epoch,
            "promote_after": self.promote_after,
            "timeout_epochs": self.timeout_epochs,
            "healthy_epochs": self.healthy_epochs,
            "graded_epochs": self.graded_epochs,
            "reason": self.reason,
            "violations": self.violations,
        }
