"""Control-plane command vocabulary and the tenant policy value type.

A command is a plain-JSON dict (so schedules round-trip through the
runtime's run specs) with at least::

    {"epoch": 2, "op": "set_policy", ...}

``epoch`` is the epoch boundary at or after which it applies; ``op`` is
one of :data:`VALID_OPS`.  Validation is all-or-nothing and happens at
drain time in :class:`repro.control.service.ControlPlane`: a command
either applies to every host it names or is rejected with a reason —
never partially applied.

:class:`TenantPolicy` is the *declarative* form of a per-tenant
:class:`~repro.core.policy.FlowPolicy`: a frozen, JSON-able value the
control plane keeps as intended state, so rollback and the kill-switch
can re-apply an exact prior policy rather than guessing from the
datapath.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.policy import FlowPolicy

#: Operations the control plane understands (see DESIGN.md §12.2).
VALID_OPS = ("set_policy", "set_guard", "canary_start", "canary_abort",
             "kill_switch")


class CommandError(ValueError):
    """A malformed or conflicting control command.

    The message is the operator-facing rejection reason; it is recorded
    verbatim in the command log and on the ``control.command`` event.
    """


@dataclass(frozen=True)
class TenantPolicy:
    """Declarative per-tenant policy: the control plane's unit of intent.

    Mirrors :class:`~repro.core.policy.FlowPolicy` field-for-field but is
    frozen and JSON-able; :meth:`flow_policy` materialises the datapath
    object (and re-runs the datapath's own validation).
    """

    algorithm: str = "dctcp"
    beta: float = 1.0
    max_rwnd: Optional[int] = None

    def flow_policy(self) -> FlowPolicy:
        return FlowPolicy(algorithm=self.algorithm, beta=self.beta,
                          max_rwnd=self.max_rwnd)

    def to_json(self) -> dict:
        return {"algorithm": self.algorithm, "beta": self.beta,
                "max_rwnd": self.max_rwnd}

    @staticmethod
    def from_json(raw: object) -> "TenantPolicy":
        """Parse and validate; raises :class:`CommandError` with a reason."""
        if not isinstance(raw, dict):
            raise CommandError(f"policy must be an object, got {type(raw).__name__}")
        unknown = set(raw) - {"algorithm", "beta", "max_rwnd"}
        if unknown:
            raise CommandError(f"unknown policy field(s) {sorted(unknown)!r}")
        policy = TenantPolicy(algorithm=raw.get("algorithm", "dctcp"),
                              beta=raw.get("beta", 1.0),
                              max_rwnd=raw.get("max_rwnd"))
        try:
            policy.flow_policy()  # datapath-level validation
        except (ValueError, TypeError) as exc:
            raise CommandError(f"invalid policy: {exc}") from exc
        return policy


def encode_wal_entry(pos: int, command: object) -> str:
    """One write-ahead-log line for a submitted command.

    The body is canonical JSON (sorted keys, no whitespace) prefixed by
    its crc32, so replay can tell a torn tail — a crash mid-append —
    from a valid record without trusting the line to be complete.
    """
    body = json.dumps({"pos": pos, "command": command}, sort_keys=True,
                      separators=(",", ":"), allow_nan=True)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}"


def decode_wal_entry(line: str) -> Optional[Tuple[int, object]]:
    """Parse one WAL line; ``None`` for a torn or corrupt line."""
    line = line.rstrip("\n")
    if len(line) < 10 or line[8] != " ":
        return None
    crc_hex, body = line[:8], line[9:]
    try:
        crc = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        entry = json.loads(body)
    except ValueError:
        return None
    if not isinstance(entry, dict) or "pos" not in entry \
            or "command" not in entry:
        return None
    pos = entry["pos"]
    if isinstance(pos, int) and not isinstance(pos, bool) and pos >= 0:
        return pos, entry["command"]
    return None


def command_shape(raw: object) -> tuple:
    """Check the fields every command shares; returns ``(epoch, op)``.

    Shape errors raise :class:`CommandError`; op-specific argument
    validation stays with the control plane's per-op handlers.
    """
    if not isinstance(raw, dict):
        raise CommandError(f"command must be an object, got {type(raw).__name__}")
    epoch = raw.get("epoch")
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
        raise CommandError(f"command epoch must be a non-negative int, got {epoch!r}")
    op = raw.get("op")
    if op not in VALID_OPS:
        raise CommandError(f"unknown op {op!r} (valid: {', '.join(VALID_OPS)})")
    return epoch, op
