"""Per-epoch SLO evaluation for canary rollouts (DESIGN.md §12.3).

Each epoch, the service folds per-host counter deltas and that epoch's
completed-message FCTs into one :class:`CohortSample` per cohort (canary
vs baseline), and :func:`evaluate_slos` grades the canary against the
baseline under :class:`SloThresholds`.  Every violated SLO yields a
dict ``{"slo": name, "canary": x, "baseline": y, "limit": z}`` — the
deltas the ``control.rollback`` event carries, so an operator reading
the trace sees *why* the candidate was rejected, not just that it was.

Cohorts differ in size (a 25% canary vs the 75% rest), so raw counters
are normalised per host before comparison; the ECN mark rate is already
per-egress-packet and needs no normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Optional

from ..metrics.stats import percentile


@dataclass(frozen=True)
class SloThresholds:
    """What "healthy" means for a canary cohort, relative to baseline."""

    #: Canary p99 FCT may be at most this multiple of the baseline p99.
    p99_fct_ratio: float = 2.0
    #: Baseline p99 is floored here before the ratio is applied, so an
    #: unloaded service (tiny absolute FCTs) doesn't page on noise.
    p99_fct_floor_s: float = 0.5e-3
    #: Absolute ECN marks-per-egress-packet increase allowed.
    mark_rate_delta: float = 0.10
    #: Extra guard escalations per canary host per epoch allowed.
    guard_escalation_delta: float = 0.0
    #: Extra policer + guard drops per canary host per epoch allowed.
    policer_drop_delta: float = 2.0
    #: Canary per-hop bottleneck queue-depth p99 (from INT telemetry,
    #: repro.obs.int) may be at most this multiple of the baseline's.
    #: Graded only when *both* cohorts carried INT samples in the epoch
    #: — with INT off (or one cohort unreported) the clause is vacuous.
    queue_p99_ratio: float = 3.0
    #: Baseline queue p99 is floored here before the ratio is applied
    #: (bytes); near-empty queues would otherwise page on noise.
    queue_p99_floor_bytes: float = 30000.0
    #: Completed canary messages needed before FCT SLOs are graded (an
    #: idle cohort is "insufficient data", not "healthy").
    min_samples: int = 4
    #: Baseline completions needed before an empty canary epoch counts
    #: as a stall rather than a service-wide lull.
    stall_baseline_samples: int = 8

    def __post_init__(self) -> None:
        if self.p99_fct_ratio < 1.0:
            raise ValueError("p99_fct_ratio must be >= 1.0")
        if self.queue_p99_ratio < 1.0:
            raise ValueError("queue_p99_ratio must be >= 1.0")
        if self.p99_fct_floor_s < 0 or self.mark_rate_delta < 0 \
                or self.queue_p99_floor_bytes < 0:
            raise ValueError("SLO slack values must be non-negative")
        if self.min_samples < 1 or self.stall_baseline_samples < 1:
            raise ValueError("sample minimums must be positive")

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class CohortSample:
    """One cohort's view of one epoch: FCTs plus counter deltas."""

    hosts: int
    fcts: List[float] = field(default_factory=list)
    arrivals: int = 0
    packets_egress: int = 0
    ecn_marks: int = 0
    escalations: int = 0
    drops: int = 0
    #: Per-report bottleneck queue-depth samples (bytes) from the
    #: cohort's INT telemetry views this epoch; empty when INT is off.
    queue_depths: List[float] = field(default_factory=list)

    @property
    def p99(self) -> Optional[float]:
        if not self.fcts:
            return None
        return percentile(self.fcts, 99)

    @property
    def queue_p99(self) -> Optional[float]:
        if not self.queue_depths:
            return None
        return percentile(self.queue_depths, 99)

    @property
    def mark_rate(self) -> float:
        if self.packets_egress == 0:
            return 0.0
        return self.ecn_marks / self.packets_egress

    def per_host(self, value: int) -> float:
        return value / max(1, self.hosts)

    def to_json(self) -> dict:
        """Epoch-report form: aggregates only, never the raw FCT list."""
        return {
            "hosts": self.hosts,
            "completed": len(self.fcts),
            "arrivals": self.arrivals,
            "p99_fct": self.p99,
            "packets_egress": self.packets_egress,
            "ecn_marks": self.ecn_marks,
            "escalations": self.escalations,
            "drops": self.drops,
            "queue_samples": len(self.queue_depths),
            "queue_p99_bytes": self.queue_p99,
        }


def evaluate_slos(canary: CohortSample, baseline: CohortSample,
                  slo: SloThresholds) -> List[dict]:
    """Grade one epoch's canary cohort; returns the violated SLOs."""
    violations: List[dict] = []

    # A candidate so bad the cohort completes (nearly) nothing would
    # never accumulate min_samples FCTs — the stall check catches the
    # degenerate case the ratio check cannot see.
    if len(canary.fcts) < slo.min_samples:
        if (canary.arrivals > 0
                and len(baseline.fcts) >= slo.stall_baseline_samples
                and not canary.fcts):
            violations.append({
                "slo": "fct_stall",
                "canary": len(canary.fcts),
                "baseline": len(baseline.fcts),
                "limit": 1,
            })
        return violations  # too little data to grade anything else

    base_p99 = baseline.p99
    if base_p99 is not None:
        limit = max(base_p99, slo.p99_fct_floor_s) * slo.p99_fct_ratio
        p99 = canary.p99
        if p99 is not None and p99 > limit:
            violations.append({"slo": "p99_fct", "canary": p99,
                               "baseline": base_p99, "limit": limit})

    if canary.packets_egress > 0 and baseline.packets_egress > 0:
        limit = baseline.mark_rate + slo.mark_rate_delta
        if canary.mark_rate > limit:
            violations.append({"slo": "ecn_mark_rate",
                               "canary": canary.mark_rate,
                               "baseline": baseline.mark_rate,
                               "limit": limit})

    esc = canary.per_host(canary.escalations)
    esc_limit = (baseline.per_host(baseline.escalations)
                 + slo.guard_escalation_delta)
    if esc > esc_limit:
        violations.append({"slo": "guard_escalations", "canary": esc,
                           "baseline": baseline.per_host(baseline.escalations),
                           "limit": esc_limit})

    drops = canary.per_host(canary.drops)
    drop_limit = baseline.per_host(baseline.drops) + slo.policer_drop_delta
    if drops > drop_limit:
        violations.append({"slo": "policer_drops", "canary": drops,
                           "baseline": baseline.per_host(baseline.drops),
                           "limit": drop_limit})

    # In-network queue depth (INT): graded only when both cohorts saw
    # telemetry this epoch — a candidate whose hosts stop reporting must
    # not make the clause pass vacuously against a reporting baseline.
    base_q99 = baseline.queue_p99
    q99 = canary.queue_p99
    if base_q99 is not None and q99 is not None:
        limit = max(base_q99, slo.queue_p99_floor_bytes) * slo.queue_p99_ratio
        if q99 > limit:
            violations.append({"slo": "int_queue_p99", "canary": q99,
                               "baseline": base_q99, "limit": limit})
    return violations


def is_gradeable(canary: CohortSample, slo: SloThresholds) -> bool:
    """Did this epoch carry enough canary data to count as evidence?

    Promotion requires ``promote_after`` *gradeable* healthy epochs;
    epochs below the sample floor neither promote nor roll back.
    """
    return len(canary.fcts) >= slo.min_samples
