"""Service mode: the AC/DC datapath as a long-lived, mutable service.

A :class:`Service` runs an open-loop arriving workload (seeded Poisson
message arrivals over persistent connections, §5.2-style) on a star of
AC/DC hosts, carved into fixed virtual-time *epochs*.  Between epochs —
and only between epochs — the :class:`ControlPlane` drains its command
queue in deterministic ``(epoch, seq)`` order.  Commands mutate the
live datapath:

* ``set_policy``   — hot-swap per-tenant policy (algorithm / beta /
  RWND clamp); existing flows are *migrated* in place, never restarted;
* ``set_guard``    — hot-reload guard thresholds (all-or-nothing across
  the named hosts);
* ``canary_start`` — stage a candidate policy on a seeded host cohort,
  graded per epoch by ``repro.control.slo`` against the rest;
* ``canary_abort`` — operator-initiated rollback;
* ``kill_switch``  — revert every host to last-known-good in one epoch.

Because command application is pinned to epoch boundaries, the sequence
of simulator events between any two boundaries is a pure function of
(config, schedule, seed): replaying the same schedule — serially, via
the process pool, or from the result cache — produces a byte-identical
result (DESIGN.md §10 extended to mid-run mutation; §12 for the control
plane itself).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from ..core import AcdcConfig, AcdcVswitch, PolicyEngine
from ..core.ops import OpsCounter
from ..experiments.common import ACDC, k_bytes_for_rate
from ..guard import Guard, GuardConfig
from ..metrics.collectors import FctRecorder
from ..net.topology import star
from ..obs import IntTelemetry, ObsContext, TraceConfig, WARNING
from ..obs.adapters import FaultRecorderAdapter
from ..runtime.spec import canonical_json
from ..sim.engine import Simulator
from ..sim.rng import RngFactory
from ..workloads.apps import MessageStream, Sink
from .canary import CanaryRollout
from .commands import CommandError, TenantPolicy, command_shape
from .slo import CohortSample, SloThresholds, evaluate_slos, is_gradeable

#: Port every service sink listens on.
SERVICE_PORT = 5001


@dataclass
class ServiceConfig:
    """One service run, fully described by plain JSON values."""

    n_hosts: int = 8
    epoch_s: float = 0.02
    rate_bps: float = 1e9
    mtu: int = 1500
    seed: int = 0
    #: Mean message arrivals per host per second (open loop, Poisson).
    arrival_rate_hz: float = 400.0
    #: Message size mix (bytes) and integer weights.
    msg_sizes: List[int] = field(default_factory=lambda: [16_384, 65_536,
                                                          262_144])
    msg_weights: List[int] = field(default_factory=lambda: [6, 3, 1])
    #: Persistent streams per host (to its next ``peers`` ring neighbours).
    peers: int = 3
    #: Attach a repro.guard.Guard to every vSwitch.
    guard: bool = False
    #: Arm the runtime invariant sanitizer on every vSwitch (None: the
    #: REPRO_SANITIZE environment default).
    sanitize: Optional[bool] = None
    #: Default tenant policy JSON (see TenantPolicy.from_json).
    default_policy: Optional[dict] = None
    #: SLO threshold overrides (see SloThresholds).
    slo: Optional[dict] = None
    #: In-band network telemetry (repro.obs.int): stamp per-hop metadata
    #: at the switch and grade per-hop queue depth as an SLO signal.
    int_telemetry: bool = False
    #: Chaos: wrap the first host's datapath in a fault chain of this
    #: intensity (0 disables; see repro.experiments.chaos.fault_chain).
    fault_intensity: float = 0.0
    #: Adversarial tenants: the first N hosts' guests ignore RWND.
    adversarial_hosts: int = 0

    def __post_init__(self) -> None:
        if self.n_hosts < 2:
            raise ValueError("a service needs at least 2 hosts")
        if self.epoch_s <= 0 or self.arrival_rate_hz <= 0:
            raise ValueError("epoch_s and arrival_rate_hz must be positive")
        if not (1 <= self.peers < self.n_hosts):
            raise ValueError("peers must be in [1, n_hosts)")
        if len(self.msg_sizes) != len(self.msg_weights) or not self.msg_sizes:
            raise ValueError("msg_sizes and msg_weights must match, non-empty")
        if self.adversarial_hosts > self.n_hosts:
            raise ValueError("more adversarial hosts than hosts")

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _OpenLoopWorkload:
    """Seeded Poisson message arrivals over persistent MessageStreams.

    Each host holds one stream to each of its ``peers`` ring neighbours;
    arrivals pick a stream and a size from the host's own named RNG
    stream, so adding hosts or reordering construction never perturbs
    another host's arrival process.  FCT records are labelled
    ``"src>dst"`` so cohort attribution is by *sending* host.
    """

    def __init__(self, service: "Service"):
        sim, config = service.sim, service.config
        hosts = service.hosts
        self.sim = sim
        self.config = config
        self.recorder = FctRecorder()
        self.arrivals: Dict[str, int] = {h.addr: 0 for h in hosts}
        conn_opts = ACDC.conn_opts()
        sinks = {h.addr: Sink(h, SERVICE_PORT, **conn_opts) for h in hosts}
        self.streams: Dict[str, List[MessageStream]] = {}
        n = len(hosts)
        for i, src in enumerate(hosts):
            streams = []
            for j in range(1, config.peers + 1):
                dst = hosts[(i + j) % n]
                streams.append(MessageStream(
                    sim, src, dst.addr, SERVICE_PORT, sinks[dst.addr],
                    self.recorder, label=f"{src.addr}>{dst.addr}",
                    conn_opts=dict(conn_opts)))
            self.streams[src.addr] = streams
            rng = service.rngs.stream(f"service.arrivals.{src.addr}")
            # Scheduled as a bound method with args (no lambdas): every
            # pending arrival event must pickle for checkpoint/restore.
            sim.schedule(rng.expovariate(config.arrival_rate_hz),
                         self._arrive, src.addr, rng)

    def _arrive(self, addr: str, rng) -> None:
        stream = self.streams[addr][rng.randrange(len(self.streams[addr]))]
        size = rng.choices(self.config.msg_sizes,
                           weights=self.config.msg_weights)[0]
        stream.send_message(size)
        self.arrivals[addr] += 1
        self.sim.schedule(rng.expovariate(self.config.arrival_rate_hz),
                          self._arrive, addr, rng)


class ControlPlane:
    """Declarative intended state + the epoch-boundary command queue.

    The plane owns three pieces of state the datapath cannot reconstruct:
    the *intended* per-host :class:`TenantPolicy`, the *last-known-good*
    snapshot (what the kill-switch restores), and the active
    :class:`CanaryRollout`.  Every command application is all-or-nothing:
    validation for every named host completes before the first host is
    touched, and a rejection records the reason and applies nothing.
    """

    def __init__(self, service: "Service"):
        self.service = service
        self.default_policy = service.default_policy
        self.intended: Dict[str, TenantPolicy] = {
            addr: service.default_policy for addr in service.vswitches}
        self.rollout: Optional[CanaryRollout] = None
        self.rollouts: List[CanaryRollout] = []
        self.log: List[dict] = []
        self._queue: List[tuple] = []
        self._seq = 0
        #: Total submit() calls, shape-rejected ones included — the WAL
        #: replay cursor for repro.recovery (a rejection is a visible
        #: side effect too: it lands in the log and on the trace bus).
        self.submitted = 0
        self.last_known_good = self._snapshot()

    # -- state snapshots ----------------------------------------------------
    def _snapshot(self) -> dict:
        guards = {}
        for addr, guard in self.service.guards.items():
            cfg = dataclasses.asdict(guard.config)
            for name in Guard.IMMUTABLE_FIELDS:
                cfg.pop(name, None)
            guards[addr] = cfg
        return {"policies": {a: p.to_json()
                             for a, p in self.intended.items()},
                "guards": guards}

    def _mark_known_good(self) -> None:
        """Fold the current intended state into last-known-good — only
        outside a canary (a candidate is, by definition, not known good
        until promoted)."""
        if self.rollout is None or not self.rollout.active:
            self.last_known_good = self._snapshot()

    # -- queue --------------------------------------------------------------
    def submit(self, raw: object) -> None:
        """Enqueue one command dict for its epoch boundary.

        Commands whose *shape* is unparseable (not a dict, bad epoch,
        unknown op) cannot be placed in the queue at all; they are
        rejected immediately into the log."""
        self.submitted += 1
        try:
            epoch, op = command_shape(raw)
        except CommandError as exc:
            self._record(None, raw, "rejected", reason=str(exc))
            return
        self._queue.append((epoch, self._seq, raw))
        self._seq += 1

    def drain(self, epoch: int) -> List[dict]:
        """Apply every command due at or before ``epoch``, in
        deterministic (epoch, seq) order."""
        due = sorted([q for q in self._queue if q[0] <= epoch])
        self._queue = [q for q in self._queue if q[0] > epoch]
        outcomes = []
        for _ep, _seq, raw in due:
            outcomes.append(self._apply(epoch, raw))
        return outcomes

    def _apply(self, epoch: int, raw: dict) -> dict:
        op = raw["op"]
        try:
            handler = getattr(self, f"_op_{op}")
            detail = handler(epoch, raw)
            return self._record(epoch, raw, "applied", **(detail or {}))
        except CommandError as exc:
            return self._record(epoch, raw, "rejected", reason=str(exc))

    def _record(self, epoch, raw, status: str, **detail) -> dict:
        entry = {"epoch": epoch, "op": raw.get("op") if isinstance(raw, dict)
                 else None, "status": status, "command": raw, **detail}
        self.log.append(entry)
        extra = {"reason": detail["reason"]} if "reason" in detail else {}
        if status == "rejected":
            extra["severity"] = WARNING
        self.service.obs.bus.emit("control.command", component="control",
                                  op=str(entry["op"]), status=status, **extra)
        return entry

    # -- shared validation helpers ------------------------------------------
    def _check_keys(self, raw: dict, allowed: set) -> None:
        unknown = set(raw) - allowed - {"epoch", "op"}
        if unknown:
            raise CommandError(f"unknown field(s) {sorted(unknown)!r} "
                               f"for op {raw['op']!r}")

    def _resolve_hosts(self, raw: dict) -> List[str]:
        known = sorted(self.intended)
        hosts = raw.get("hosts", "all")
        if hosts == "all":
            return known
        if not isinstance(hosts, list) or not hosts:
            raise CommandError("hosts must be \"all\" or a non-empty list")
        bad = [h for h in hosts if h not in self.intended]
        if bad:
            raise CommandError(f"unknown host(s) {bad!r}")
        return sorted(set(hosts))

    def _set_host_policy(self, addr: str, policy: TenantPolicy) -> int:
        self.intended[addr] = policy
        return self.service.vswitches[addr].apply_policy(policy.flow_policy())

    # -- op handlers ----------------------------------------------------
    def _op_set_policy(self, epoch: int, raw: dict) -> dict:
        self._check_keys(raw, {"hosts", "policy"})
        if "policy" not in raw:
            raise CommandError("set_policy requires a policy object")
        policy = TenantPolicy.from_json(raw["policy"])
        addrs = self._resolve_hosts(raw)
        if self.rollout is not None and self.rollout.active:
            clash = sorted(set(addrs) & set(self.rollout.cohort))
            if clash:
                raise CommandError(
                    f"host(s) {clash!r} are in an active canary cohort; "
                    f"abort or wait for the rollout first")
        migrated = sum(self._set_host_policy(a, policy) for a in addrs)
        self._mark_known_good()
        return {"hosts": addrs, "migrated": migrated}

    def _op_set_guard(self, epoch: int, raw: dict) -> dict:
        self._check_keys(raw, {"hosts", "params"})
        if not self.service.guards:
            raise CommandError("guard is not enabled on this service")
        params = raw.get("params")
        if not isinstance(params, dict) or not params:
            raise CommandError("set_guard requires a non-empty params object")
        addrs = self._resolve_hosts(raw)
        # Pass 1: validate against every target guard; pass 2: apply.
        for addr in addrs:
            try:
                self.service.guards[addr].check(**params)
            except (ValueError, TypeError) as exc:
                raise CommandError(f"invalid guard params for {addr}: "
                                   f"{exc}") from exc
        for addr in addrs:
            self.service.guards[addr].reconfigure(**params)
        self._mark_known_good()
        return {"hosts": addrs, "params": params}

    def _op_canary_start(self, epoch: int, raw: dict) -> dict:
        self._check_keys(raw, {"policy", "fraction", "hosts",
                               "promote_after", "timeout_epochs"})
        if self.rollout is not None and self.rollout.active:
            raise CommandError("a canary rollout is already active")
        if "policy" not in raw:
            raise CommandError("canary_start requires a candidate policy")
        candidate = TenantPolicy.from_json(raw["policy"])
        promote_after = raw.get("promote_after", 3)
        timeout_epochs = raw.get("timeout_epochs", 8)
        for name, value in (("promote_after", promote_after),
                            ("timeout_epochs", timeout_epochs)):
            if not isinstance(value, int) or value < 1:
                raise CommandError(f"{name} must be a positive int")
        if "hosts" in raw:
            cohort = self._resolve_hosts(raw)
            if len(cohort) >= len(self.intended):
                raise CommandError("canary cohort must leave a baseline")
        else:
            fraction = raw.get("fraction", 0.25)
            if not isinstance(fraction, (int, float)) or not 0 < fraction < 1:
                raise CommandError("fraction must be in (0, 1)")
            eligible = sorted(self.intended)
            k = max(1, min(len(eligible) - 1,
                           round(fraction * len(eligible))))
            rng = self.service.rngs.stream(f"control.cohort.{epoch}")
            cohort = sorted(rng.sample(eligible, k))
        prior = {a: self.intended[a] for a in cohort}
        for addr in cohort:
            self._set_host_policy(addr, candidate)
        self.rollout = CanaryRollout(candidate=candidate, cohort=cohort,
                                     prior=prior, started_epoch=epoch,
                                     promote_after=promote_after,
                                     timeout_epochs=timeout_epochs)
        self.rollouts.append(self.rollout)
        self.service.obs.bus.emit("control.canary", component="control",
                                  state="start", cohort=cohort,
                                  candidate=candidate.to_json())
        return {"cohort": cohort}

    def _op_canary_abort(self, epoch: int, raw: dict) -> dict:
        self._check_keys(raw, set())
        if self.rollout is None or not self.rollout.active:
            raise CommandError("no active canary rollout to abort")
        self.rollout.abort(epoch, "abort")
        self.apply_rollback(epoch)
        return {"cohort": self.rollout.cohort}

    def _op_kill_switch(self, epoch: int, raw: dict) -> dict:
        self._check_keys(raw, set())
        if self.rollout is not None and self.rollout.active:
            self.rollout.abort(epoch, "kill_switch")
        good = self.last_known_good
        migrated = 0
        for addr, pol in good["policies"].items():
            migrated += self._set_host_policy(addr,
                                              TenantPolicy.from_json(pol))
        for addr, cfg in good["guards"].items():
            self.service.guards[addr].reconfigure(**cfg)
        self.service.obs.bus.emit(
            "control.rollback", component="control", severity=WARNING,
            reason="kill_switch", hosts=sorted(good["policies"]))
        return {"hosts": sorted(good["policies"]), "migrated": migrated}

    # -- canary lifecycle (driven by the service's epoch close) --------------
    def apply_rollback(self, epoch: int) -> None:
        """Restore the exact prior policy of every cohort host."""
        rollout = self.rollout
        assert rollout is not None and not rollout.active
        for addr, pol in rollout.prior.items():
            self._set_host_policy(addr, pol)
        self.service.obs.bus.emit(
            "control.rollback", component="control", severity=WARNING,
            reason=rollout.reason, cohort=rollout.cohort,
            violations=rollout.violations)

    def apply_promote(self, epoch: int) -> None:
        """Roll the candidate out fleet-wide and bless it."""
        rollout = self.rollout
        assert rollout is not None and rollout.state == "promoted"
        for addr in sorted(self.intended):
            if self.intended[addr] != rollout.candidate:
                self._set_host_policy(addr, rollout.candidate)
        self._mark_known_good()
        self.service.obs.bus.emit("control.canary", component="control",
                                  state="promote", cohort=rollout.cohort)


class Service:
    """One long-lived service run: workload + datapath + control plane."""

    def __init__(self, config: ServiceConfig,
                 schedule: Optional[List[dict]] = None):
        self.config = config
        self.sim = Simulator()
        self.rngs = RngFactory(config.seed)
        self.obs = ObsContext(self.sim, TraceConfig(sample={
            "ecn.mark": 64, "buffer.occupancy": 256, "rwnd.rewrite": 64}))
        self.topo, self.hosts, self.switch = star(
            self.sim, config.n_hosts, rate_bps=config.rate_bps,
            mtu=config.mtu, seed=config.seed, ecn_enabled=True,
            ecn_threshold_bytes=k_bytes_for_rate(config.rate_bps))
        self.obs.attach_topology(self.topo)
        self.fault_recorder = FaultRecorderAdapter()
        self.default_policy = TenantPolicy.from_json(
            config.default_policy or {})
        self.guards: Dict[str, Guard] = {}
        self.vswitches: Dict[str, AcdcVswitch] = {}
        for host in self.hosts:
            guard = None
            if config.guard:
                guard = Guard(GuardConfig(seed=config.seed))
                self.guards[host.addr] = guard
            # One PolicyEngine per host: the control plane swaps each
            # host's *default* policy independently.
            vsw = AcdcVswitch(
                host, config=AcdcConfig(sanitize=config.sanitize),
                policy=PolicyEngine(self.default_policy.flow_policy()),
                ops=OpsCounter(), guard=guard, obs=self.obs)
            host.attach_vswitch(vsw)
            self.vswitches[host.addr] = vsw
        self.int_tel: Optional[IntTelemetry] = None
        if config.int_telemetry:
            tel = IntTelemetry(self.sim)
            tel.attach_topology(self.topo)
            for vsw in self.vswitches.values():
                tel.attach_vswitch(vsw)
            self.obs.register_int(tel)
            self.int_tel = tel
        # Per-flow read cursor into TelemetryView.q_samples (epoch deltas).
        self._prev_q_idx: Dict[tuple, int] = {}
        for i in range(config.adversarial_hosts):
            self.hosts[i].set_tenant_profile(ignore_rwnd=True)
        if config.fault_intensity > 0:
            from ..experiments.chaos import fault_chain
            from ..faults.injectors import install_faults
            install_faults(self.hosts[0],
                           fault_chain(config.fault_intensity, config.seed),
                           recorder=self.fault_recorder)
        self.workload = _OpenLoopWorkload(self)
        self.control = ControlPlane(self)
        for raw in schedule or []:
            self.control.submit(raw)
        self.slo = SloThresholds(**(config.slo or {}))
        self._prev_counters = self._counters_now()
        self._prev_arrivals = dict(self.workload.arrivals)
        self._prev_t = 0.0
        #: Closed-epoch reports so far (lives on the service, not in a
        #: run() local, so a checkpointed service resumes mid-sequence).
        self.reports: List[dict] = []
        self.epochs_run = 0

    # ------------------------------------------------------------------
    def _counters_now(self) -> Dict[str, dict]:
        out = {}
        for addr, vsw in self.vswitches.items():
            guard = self.guards.get(addr)
            esc = drops = 0
            if guard is not None:
                esc = sum(1 for e in guard.events.events
                          if e.kind == "guard_escalate")
                drops = guard.police_drops + guard.quarantine_drops
            out[addr] = {
                "packets_egress": vsw.ops.packets_egress,
                "ecn_marks": vsw.ops.snapshot().get("ecn_mark", 0),
                "escalations": esc,
                "drops": drops + vsw.policer.drops,
            }
        return out

    def _drain_queue_samples(self) -> Dict[str, List[float]]:
        """New INT bottleneck queue-depth samples since the last epoch,
        grouped by *sending* host (cohort attribution is by sender,
        same as FCT labels).  Empty when INT is off."""
        out: Dict[str, List[float]] = {}
        tel = self.int_tel
        if tel is None:
            return out
        for key, view in tel.views().items():
            samples = view.q_samples
            start = self._prev_q_idx.get(key, 0)
            if len(samples) > start:
                out.setdefault(key[0], []).extend(samples[start:])
            self._prev_q_idx[key] = len(samples)
        return out

    def _cohort_sample(self, addrs: List[str], now: Dict[str, dict],
                       fcts_by_host: Dict[str, List[float]],
                       arrivals: Dict[str, int],
                       queues_by_host: Dict[str, List[float]]) -> CohortSample:
        sample = CohortSample(hosts=len(addrs))
        for addr in addrs:
            delta = {k: now[addr][k] - self._prev_counters[addr][k]
                     for k in now[addr]}
            sample.packets_egress += delta["packets_egress"]
            sample.ecn_marks += delta["ecn_marks"]
            sample.escalations += delta["escalations"]
            sample.drops += delta["drops"]
            sample.arrivals += arrivals[addr] - self._prev_arrivals[addr]
            sample.fcts.extend(fcts_by_host.get(addr, []))
            sample.queue_depths.extend(queues_by_host.get(addr, []))
        sample.fcts.sort()
        sample.queue_depths.sort()
        return sample

    def _close_epoch(self, epoch: int, t_end: float) -> dict:
        now = self._counters_now()
        arrivals = dict(self.workload.arrivals)
        queues = self._drain_queue_samples()
        fcts_by_host: Dict[str, List[float]] = {}
        for record in self.workload.recorder.records:
            if record.end is None or not self._prev_t < record.end <= t_end:
                continue
            fcts_by_host.setdefault(record.label.split(">", 1)[0],
                                    []).append(record.fct)
        report: dict = {"epoch": epoch, "t_end": t_end}
        control = self.control
        rollout = control.rollout
        if rollout is not None and rollout.active:
            baseline_addrs = [a for a in sorted(self.vswitches)
                              if a not in rollout.cohort]
            canary = self._cohort_sample(rollout.cohort, now,
                                         fcts_by_host, arrivals, queues)
            baseline = self._cohort_sample(baseline_addrs, now,
                                           fcts_by_host, arrivals, queues)
            violations = evaluate_slos(canary, baseline, self.slo)
            action = rollout.tick(epoch, violations,
                                  is_gradeable(canary, self.slo))
            if action == "rollback":
                control.apply_rollback(epoch)
            elif action == "promote":
                control.apply_promote(epoch)
            report["cohorts"] = {"canary": canary.to_json(),
                                 "baseline": baseline.to_json()}
            report["violations"] = violations
            report["canary"] = {"state": rollout.state, "action": action}
        else:
            everyone = self._cohort_sample(sorted(self.vswitches), now,
                                           fcts_by_host, arrivals, queues)
            report["cohorts"] = {"all": everyone.to_json()}
        report["commands"] = control.drain(epoch)
        self._prev_counters = self._counters_now()
        self._prev_arrivals = dict(self.workload.arrivals)
        self._prev_t = t_end
        return report

    # ------------------------------------------------------------------
    @property
    def next_epoch_end(self) -> float:
        """Virtual end time of the epoch currently open."""
        return (self.epochs_run + 1) * self.config.epoch_s

    def run_epoch(self) -> dict:
        """Run exactly one epoch to its boundary and close it.

        The incremental unit `repro.recovery` snapshots between: after
        ``run_epoch`` returns, the simulator sits exactly at an epoch
        boundary with the boundary's commands already drained, so the
        events of the next epoch are a pure function of the (restorable)
        service state.
        """
        t_end = self.next_epoch_end
        self.sim.run(until=t_end)
        report = self._close_epoch(self.epochs_run, t_end)
        self.reports.append(report)
        self.epochs_run += 1
        return report

    def run(self, epochs: int) -> dict:
        """Run ``epochs`` further epochs; returns the canonical result."""
        if epochs < 1:
            raise ValueError("at least one epoch")
        for _ in range(epochs):
            self.run_epoch()
        return self.result()

    def result(self) -> dict:
        """The canonical service result for the epochs run so far."""
        return self._result(self.reports)

    def _result(self, reports: List[dict]) -> dict:
        recorder = self.workload.recorder
        per_host: Dict[str, dict] = {}
        for addr in sorted(self.vswitches):
            fcts = sorted(recorder.fcts(label_prefix=f"{addr}>"))
            per_host[addr] = {
                "completed": len(fcts),
                "p99": (CohortSample(hosts=1, fcts=fcts).p99
                        if fcts else None),
            }
        cohorts = {}
        last = self.control.rollouts[-1] if self.control.rollouts else None
        groups = ({"canary": list(last.cohort),
                   "conforming": [a for a in sorted(self.vswitches)
                                  if a not in last.cohort]}
                  if last is not None
                  else {"all": sorted(self.vswitches)})
        for name, addrs in groups.items():
            fcts = sorted(f for a in addrs
                          for f in recorder.fcts(label_prefix=f"{a}>"))
            cohorts[name] = {"hosts": addrs, "completed": len(fcts),
                             "p99": (CohortSample(hosts=len(addrs),
                                                  fcts=fcts).p99
                                     if fcts else None)}
        counters = {
            "migrations": sum(v.ops.snapshot().get("flow_migrate", 0)
                              for v in self.vswitches.values()),
            "restarts": sum(v.restarts for v in self.vswitches.values()),
            "resurrections": sum(v.resurrections
                                 for v in self.vswitches.values()),
            "policer_drops": sum(v.policer.drops
                                 for v in self.vswitches.values()),
            "arrivals": sum(self.workload.arrivals.values()),
            "completed": len(recorder.completed()),
        }
        signature = hashlib.sha256(
            canonical_json(self.obs.bus.records()).encode()).hexdigest()
        return {
            "config": self.config.to_json(),
            "epochs": reports,
            "commands": self.control.log,
            "canary": last.to_json() if last is not None else {"state": "idle"},
            "policies": {a: p.to_json()
                         for a, p in self.control.intended.items()},
            "fct": {"per_host": per_host, "cohorts": cohorts},
            "counters": counters,
            "int": (self.int_tel.snapshot()
                    if self.int_tel is not None else None),
            "faults": self.fault_recorder.snapshot(),
            "trace": self.obs.bus.summary(),
            "signature": signature,
        }


def service_cell(config: dict, schedule: Optional[list] = None,
                 epochs: int = 6) -> dict:
    """Process-pool cell: one service run from plain-JSON arguments
    (referenced by run specs as ``repro.control.service:service_cell``)."""
    return Service(ServiceConfig(**config), schedule or []).run(epochs)
