"""Canary rollout experiment: a bad config is caught and rolled back.

The service-mode acceptance scenario (DESIGN.md §12.6): a pathological
RWND clamp (1 MSS — an order-of-magnitude FCT regression for the large
messages, but not a stall) is staged as a canary on a 25% host cohort.
The SLO evaluator must detect the p99 FCT regression and roll the
cohort back within two epochs, while the conforming cohort's p99 stays
within noise of a no-canary control run of the *same* seed and arrival
processes.

Each seed yields two cells — the canary run and the control run — that
fan through the experiment runtime; ``service_cell`` already takes
plain-JSON kwargs so the cells cache and pool cleanly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..runtime import Runtime, RunSpec

#: One MSS at MTU 1500: small enough to wreck large-message FCTs (a
#: 256 KB message needs ~180 window-limited round trips), large enough
#: that flows keep completing (no silly-window stall).
BAD_MAX_RWND = 1460

SERVICE_FN = "repro.control.service:service_cell"


def schedule_for(start_epoch: int, fraction: float = 0.25) -> List[dict]:
    """The canary command schedule under test."""
    return [{"epoch": start_epoch, "op": "canary_start",
             "policy": {"max_rwnd": BAD_MAX_RWND}, "fraction": fraction}]


def _specs(seed: int, epochs: int, n_hosts: int,
           start_epoch: int) -> List[RunSpec]:
    config = {"seed": seed, "n_hosts": n_hosts}
    return [
        RunSpec(SERVICE_FN, {"config": config,
                             "schedule": schedule_for(start_epoch),
                             "epochs": epochs}),
        RunSpec(SERVICE_FN, {"config": config, "schedule": [],
                             "epochs": epochs}),
    ]


def _summarise(canary_run: dict, control_run: dict) -> dict:
    rollout = canary_run["canary"]
    conforming = canary_run["fct"]["cohorts"].get("conforming")
    control_all = control_run["fct"]["cohorts"]["all"]
    # The control run has no cohort split, so the noise comparison is
    # per host (both runs share hosts and arrival processes).
    per_host_ratio = {}
    if conforming is not None:
        for addr in conforming["hosts"]:
            with_canary = canary_run["fct"]["per_host"][addr]["p99"]
            without = control_run["fct"]["per_host"][addr]["p99"]
            if with_canary is not None and without:
                per_host_ratio[addr] = with_canary / without
    return {
        "rolled_back": rollout["state"] == "rolled_back",
        "reason": rollout["reason"],
        "started_epoch": rollout["started_epoch"],
        "ended_epoch": rollout["ended_epoch"],
        "epochs_to_rollback": (
            None if rollout["ended_epoch"] is None
            else rollout["ended_epoch"] - rollout["started_epoch"]),
        "violations": rollout["violations"],
        "cohort": rollout["cohort"],
        "conforming_p99": None if conforming is None else conforming["p99"],
        "control_p99": control_all["p99"],
        "conforming_p99_ratio_per_host": per_host_ratio,
        "signature": canary_run["signature"],
        "control_signature": control_run["signature"],
    }


def run(seed: int = 0, quick: bool = False,
        seeds: Optional[Sequence[int]] = None,
        runtime: Optional[Runtime] = None) -> Dict[str, object]:
    """Canary-vs-control pair per seed; see :func:`_summarise`."""
    epochs = 5 if quick else 7
    n_hosts = 6 if quick else 8
    start_epoch = 1
    rt = runtime if runtime is not None else Runtime()
    seed_list = [seed] if seeds is None else list(seeds)
    specs: List[RunSpec] = []
    for sd in seed_list:
        specs.extend(_specs(sd, epochs, n_hosts, start_epoch))
    flat = rt.map(specs)
    per_seed = []
    for k, sd in enumerate(seed_list):
        canary_run, control_run = flat[2 * k], flat[2 * k + 1]
        per_seed.append({
            "seed": sd,
            "summary": _summarise(canary_run, control_run),
            "canary_run": canary_run,
            "control_run": control_run,
        })
    if seeds is None:
        return per_seed[0]
    return {"seeds": list(seed_list), "per_seed": per_seed}
