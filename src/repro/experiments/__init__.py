"""Experiment modules: one per figure/table of the paper's §5.

Each module exposes ``run(...)`` returning structured results; the
benchmark suite (``benchmarks/``) drives them and prints the paper-style
rows via :mod:`repro.experiments.report`.
"""

from . import (
    ablations,
    adversarial,
    chaos,
    common,
    fig01_heterogeneous_unfairness,
    fig02_rate_limiting_insufficient,
    fig06_rwnd_vs_cwnd_clamp,
    fig08_dumbbell_rtt,
    fig09_window_tracking,
    fig10_limiting_window,
    fig11_12_cpu_overhead,
    fig13_qos_beta,
    fig14_convergence,
    fig15_16_ecn_coexistence,
    fig17_fairness_mixed_cc,
    fig18_19_incast,
    fig20_all_ports_congested,
    fig21_concurrent_stride,
    fig22_shuffle,
    fig23_trace_driven,
    parking_lot_results,
    report,
    runners,
    table1_cc_variants,
)
from .common import ACDC, ALL_SCHEMES, CUBIC, DCTCP, Scheme

__all__ = [
    "ACDC",
    "ALL_SCHEMES",
    "CUBIC",
    "DCTCP",
    "Scheme",
    "ablations",
    "adversarial",
    "chaos",
    "common",
    "fig01_heterogeneous_unfairness",
    "fig02_rate_limiting_insufficient",
    "fig06_rwnd_vs_cwnd_clamp",
    "fig08_dumbbell_rtt",
    "fig09_window_tracking",
    "fig10_limiting_window",
    "fig11_12_cpu_overhead",
    "fig13_qos_beta",
    "fig14_convergence",
    "fig15_16_ecn_coexistence",
    "fig17_fairness_mixed_cc",
    "fig18_19_incast",
    "fig20_all_ports_congested",
    "fig21_concurrent_stride",
    "fig22_shuffle",
    "fig23_trace_driven",
    "parking_lot_results",
    "report",
    "runners",
    "table1_cc_variants",
]
