"""Fig. 15/16: the ECN coexistence problem, and AC/DC's fix.

One CUBIC flow (no ECN) and one DCTCP flow (ECN) share a bottleneck whose
WRED/ECN profile marks ECT packets above K and *drops* non-ECT ones
(Judd [36], Wu [72]).  The CUBIC flow suffers constant loss and starves,
and its RTT/retransmissions spike (Fig. 16).  Attaching AC/DC makes every
flow ECN-capable on the wire, restoring the fair share and low latency.
"""

from __future__ import annotations

from typing import Dict

from .common import Scheme
from .runners import run_dumbbell


def run(duration: float = 1.0, mtu: int = 9000, seed: int = 0) -> Dict[str, dict]:
    """The coexistence trap with plain OVS, then with AC/DC attached."""
    out: Dict[str, dict] = {}
    # "Default": plain OVS; host stacks CUBIC (no ECN) + DCTCP (ECN);
    # switch marking ON (that is the coexistence trap).
    default_scheme = Scheme("default-mixed", host_cc="cubic", host_ecn=False,
                            vswitch="plain", switch_ecn=True)
    r = run_dumbbell(
        default_scheme, pairs=2, duration=duration, mtu=mtu, seed=seed,
        host_ccs=["cubic", "dctcp"], host_ecns=[False, True],
        rtt_probe=True, probe_interval=0.005, probe_pipelined=True)
    out["default"] = _summarise(r)
    # AC/DC: same guest mix, AC/DC in the vSwitch.
    acdc_scheme = Scheme("acdc-mixed", host_cc="cubic", host_ecn=False,
                         vswitch="acdc", switch_ecn=True)
    r = run_dumbbell(
        acdc_scheme, pairs=2, duration=duration, mtu=mtu, seed=seed,
        host_ccs=["cubic", "dctcp"], host_ecns=[False, True],
        rtt_probe=True, probe_interval=0.005, probe_pipelined=True)
    out["acdc"] = _summarise(r)
    return out


def _summarise(result) -> dict:
    cubic_bps, dctcp_bps = result.tputs_bps
    return {
        "cubic_gbps": cubic_bps / 1e9,
        "dctcp_gbps": dctcp_bps / 1e9,
        "cubic_share": cubic_bps / max(cubic_bps + dctcp_bps, 1.0),
        "rtt_samples": result.rtt_samples,   # probe rides the CUBIC host
        "rtt": result.rtt_summary(),
        "drop_rate": result.drop_rate,
        "cubic_retransmits": result.flows[0].conn.retransmitted_bytes,
    }
