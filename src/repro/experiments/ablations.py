"""Ablation studies for the design choices §3 calls out.

These are not paper figures; they probe the knobs DESIGN.md lists:

* **A1 policing** — a guest stack that ignores RWND, with and without the
  vSwitch policer dropping its excess packets (§3.3).
* **A2 feedback channel** — PACK piggy-backing (with FACK fallback) vs a
  FACK-only channel: same congestion signal, different packet overhead.
* **A3 ECN hiding** — what happens if AC/DC does *not* strip ECN feedback
  from an ECN-capable guest: the guest halves while AC/DC also reduces
  (double reaction), costing throughput.
* **A4 window floor** — AC/DC's byte-granular RWND floor vs DCTCP's
  2-packet CWND floor under high-fan-in incast (the Fig. 19 effect).
"""

from __future__ import annotations

from typing import Dict

from ..core import AcdcConfig
from ..metrics import jain_index, percentile
from .common import ACDC, Scheme
from .runners import run_dumbbell, run_incast


# ----------------------------------------------------------------------
# A1: policing non-conforming stacks
# ----------------------------------------------------------------------
def run_policing(duration: float = 0.8, mtu: int = 9000,
                 seed: int = 0) -> Dict[str, dict]:
    """Flow 1 cheats (ignores RWND); flows 2-5 conform.

    Without policing, the cheater escapes enforcement and grabs
    bandwidth; with policing its excess packets die in its own vSwitch,
    so cheating yields no advantage (and plenty of drops).
    """
    out: Dict[str, dict] = {}
    for label, police in (("no-policing", False), ("policing", True)):
        config = AcdcConfig(police=police)
        out[label] = _run_with_cheater(config, duration, mtu, seed)
    return out


def _run_with_cheater(config: AcdcConfig, duration: float, mtu: int,
                      seed: int) -> dict:
    from ..net.topology import dumbbell as build_dumbbell
    from ..sim import Simulator
    from ..workloads.apps import BulkSender, Sink
    from .common import attach_vswitches, switch_opts

    sim = Simulator()
    topo, senders, receivers = build_dumbbell(
        sim, pairs=5, mtu=mtu, seed=seed, **switch_opts(ACDC))
    vsw = attach_vswitches(ACDC, senders + receivers, acdc_config=config)
    flows = []
    for i in range(5):
        opts = ACDC.conn_opts()
        if i == 0:
            opts["ignore_rwnd"] = True  # the cheater
        Sink(receivers[i], 5000, **ACDC.conn_opts())
        flows.append(BulkSender(sim, senders[i], receivers[i].addr, 5000,
                                conn_opts=opts))
    sim.run(until=duration)
    tputs = [f.bytes_acked * 8 / duration / 1e9 for f in flows]
    policer_drops = sum(v.policer.drops for v in vsw.values())
    return {
        "cheater_gbps": tputs[0],
        "conforming_gbps": tputs[1:],
        "cheater_advantage": tputs[0] / (sum(tputs[1:]) / 4.0),
        "fairness": jain_index(tputs),
        "policer_drops": policer_drops,
    }


# ----------------------------------------------------------------------
# A2: feedback channel
# ----------------------------------------------------------------------
def run_feedback_modes(duration: float = 0.8, mtu: int = 9000,
                       seed: int = 0) -> Dict[str, dict]:
    """PACK vs FACK-only feedback: equivalent signal, different packets."""
    out: Dict[str, dict] = {}
    for mode in ("pack", "fack-only"):
        r = run_dumbbell(
            ACDC, pairs=5, duration=duration, mtu=mtu, seed=seed,
            acdc_config=AcdcConfig(feedback_mode=mode))
        packs = facks = 0
        for v in r.vswitches.values():
            for entry in v.table:
                packs += entry.receiver_feedback.packs_attached
                facks += entry.receiver_feedback.facks_created
        out[mode] = {
            "avg_tput_gbps": r.avg_tput_bps / 1e9,
            "fairness": r.fairness,
            "rtt_p50_us": percentile(r.rtt_samples, 50) * 1e6,
            "packs": packs,
            "facks": facks,
        }
    return out


# ----------------------------------------------------------------------
# A3: hiding ECN from the VM
# ----------------------------------------------------------------------
def run_ecn_hiding(duration: float = 0.8, mtu: int = 9000,
                   seed: int = 0) -> Dict[str, dict]:
    """ECN-capable CUBIC guests under AC/DC, with and without hiding.

    With hiding (the paper's design), the guest never sees CE/ECE and
    stays passive — AC/DC's proportional reaction is the only one.
    Without hiding, the guest's classic halve-on-ECE runs *on top of*
    AC/DC's cut (a double reaction).  Because the guest CWND normally
    parks near twice the enforced RWND, the halvings are largely absorbed
    and throughput survives; the measurable effects are the guest's
    reduction counter and a slightly drained queue.
    """
    scheme = Scheme("acdc-ecn-guest", host_cc="cubic", host_ecn=True,
                    vswitch="acdc", switch_ecn=True)
    out: Dict[str, dict] = {}
    for label, hide in (("hide-ecn", True), ("expose-ecn", False)):
        r = run_dumbbell(
            scheme, pairs=5, duration=duration, mtu=mtu, seed=seed,
            acdc_config=AcdcConfig(hide_ecn=hide))
        guests_reacted = sum(
            1 for f in r.flows if f.conn.ecn_reduce_point > 0)
        out[label] = {
            "avg_tput_gbps": r.avg_tput_bps / 1e9,
            "total_gbps": sum(r.tputs_bps) / 1e9,
            "fairness": r.fairness,
            "rtt_p50_us": percentile(r.rtt_samples, 50) * 1e6,
            "guests_reacted": guests_reacted,
        }
    return out


# ----------------------------------------------------------------------
# A4: RWND floor vs DCTCP's 2-packet CWND floor
# ----------------------------------------------------------------------
def run_window_floor(n_senders: int = 40, duration: float = 0.4,
                     mtu: int = 9000, seed: int = 0) -> Dict[str, dict]:
    """Incast RTT as a function of the minimum-window floor."""
    from ..net.packet import mss_for_mtu
    from .common import DCTCP

    mss = mss_for_mtu(mtu)
    out: Dict[str, dict] = {}
    configs = {
        "dctcp-2mss-floor": (DCTCP, None, None),
        "acdc-1mss-floor": (ACDC, AcdcConfig(min_wnd_bytes=mss), None),
        "acdc-2mss-floor": (ACDC, AcdcConfig(min_wnd_bytes=2 * mss), None),
        "acdc-halfmss-floor": (ACDC, AcdcConfig(min_wnd_bytes=mss // 2), None),
    }
    for label, (scheme, config, floor) in configs.items():
        r = run_incast(scheme, n_senders=n_senders, duration=duration,
                       mtu=mtu, seed=seed, acdc_config=config,
                       guest_dctcp_floor_mss=floor)
        out[label] = {
            "rtt_p50_ms": percentile(r.rtt_samples, 50) * 1e3,
            "rtt_p999_ms": percentile(r.rtt_samples, 99.9) * 1e3,
            "avg_tput_mbps": r.avg_tput_bps / 1e6,
            "fairness": r.fairness,
            "drop_rate_pct": r.drop_rate * 100.0,
        }
    return out
