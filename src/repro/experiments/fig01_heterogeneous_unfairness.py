"""Fig. 1: heterogeneous congestion controls are unfair to each other.

Five flows on the dumbbell, each with a different Linux stack (CUBIC,
Illinois, HighSpeed, New Reno, Vegas) over plain OVS with no switch ECN
(Fig. 1a), versus all five using CUBIC (Fig. 1b).  The paper's
observation: aggressive stacks (Illinois, HighSpeed) grab bandwidth and
delay-based Vegas starves, while the homogeneous case is much fairer.
"""

from __future__ import annotations

from typing import Dict, List

from ..metrics import jain_index
from .common import CUBIC, MICRO_DURATION, MICRO_RUNS
from .runners import run_dumbbell

#: Flow-to-stack assignment of the paper's Fig. 1a.
HETEROGENEOUS_STACKS = ("cubic", "illinois", "highspeed", "reno", "vegas")


def run(runs: int = MICRO_RUNS, duration: float = MICRO_DURATION,
        mtu: int = 9000) -> Dict[str, dict]:
    """Returns per-test throughput for both configurations."""
    out: Dict[str, dict] = {}
    for label, stacks in (("heterogeneous", HETEROGENEOUS_STACKS),
                          ("all-cubic", ("cubic",) * 5)):
        tests: List[dict] = []
        for rep in range(runs):
            result = run_dumbbell(
                CUBIC, pairs=5, duration=duration, mtu=mtu, seed=rep,
                host_ccs=list(stacks), rtt_probe=False)
            gbps = [t / 1e9 for t in result.tputs_bps]
            tests.append({
                "per_flow_gbps": dict(zip(stacks, gbps)),
                "max": max(gbps), "min": min(gbps),
                "mean": sum(gbps) / len(gbps),
                "median": sorted(gbps)[len(gbps) // 2],
                "fairness": jain_index(gbps),
            })
        out[label] = {
            "tests": tests,
            "mean_fairness": sum(t["fairness"] for t in tests) / len(tests),
        }
    return out
