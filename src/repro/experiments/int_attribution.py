"""INT bottleneck attribution: which hop owns the p99 message FCT?

The headline demonstration for the in-network telemetry pipeline
(``repro.obs.int``, DESIGN.md §16).  An incast of fixed-size messages
crosses a two-switch asymmetric path:

* ``variant="edge"`` — the receiver's *access* link is 10× slower than
  everything else, so the congestion lives at the far hop
  (``sw-edge.p1``, the receiver-facing port);
* ``variant="core"`` — the inter-switch *trunk* is the slow link, so
  the congestion lives at the near hop (``sw-core.p0``).

End-to-end metrics (p99 FCT, drops) look identical in shape between the
variants — the whole point of per-hop telemetry is that the INT reports
do not: the bottleneck attribution table names the loaded hop, and
flipping the variant flips the attribution.  The run also attributes
the *p99 message specifically*: the ``int.report`` events scoped to that
message's flow during its lifetime name the hop that made it slow.

Everything here is deterministic (seeded workload, RNG-free telemetry);
``_cell`` takes plain-JSON kwargs so the runtime byte-identity tests can
replay it through serial, pool and cache paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics import percentile
from ..metrics.collectors import FctRecorder
from ..net.topology import Topology
from ..obs import IntTelemetry, ObsContext
from ..obs.export import write_jsonl
from ..sim import Simulator
from ..workloads.apps import MessageStream, Sink
from .common import ACDC, attach_vswitches, switch_opts
from .runners import DATA_PORT, _total_drop_rate

#: Slow-link ratio: the bottleneck link runs at line rate over this.
SLOWDOWN = 10.0

#: Expected bottleneck hop id per variant (port order is fixed by the
#: build: the trunk is linked before any host, the receiver before the
#: senders, so sw-core.p0 = trunk, sw-edge.p1 = receiver access).
EXPECTED_HOP = {"edge": "sw-edge.p1", "core": "sw-core.p0"}


def _build(sim: Simulator, variant: str, n_senders: int, rate_bps: float,
           mtu: int, seed: int):
    """Two-switch asymmetric path; returns (topo, senders, receiver)."""
    if variant not in EXPECTED_HOP:
        raise ValueError(f"unknown variant {variant!r}")
    slow = rate_bps / SLOWDOWN
    # WRED/DT thresholds sized for the slow link — it is the bottleneck
    # whose marking behaviour matters, as in the stock runners.
    opts = switch_opts(ACDC, slow)
    topo = Topology(sim, seed=seed)
    core = topo.add_switch("sw-core", **opts)
    edge = topo.add_switch("sw-edge", **opts)
    topo.link_switches(core, edge,
                       slow if variant == "core" else rate_bps)
    receiver = topo.add_host("recv", mtu=mtu)
    topo.link_host(receiver, edge,
                   slow if variant == "edge" else rate_bps)
    senders = []
    for i in range(n_senders):
        host = topo.add_host(f"s{i + 1}", mtu=mtu)
        topo.link_host(host, core, rate_bps)
        senders.append(host)
    topo.finalize()
    return topo, senders, receiver


def _attribution(records: List[dict]) -> Dict[str, dict]:
    """Fold ok ``int.report`` events into the per-hop attribution table."""
    table: Dict[str, dict] = {}
    for record in records:
        if record.get("type") != "int.report" or record.get("status") != "ok":
            continue
        hop = str(record.get("bottleneck"))
        entry = table.setdefault(hop, {"reports": 0, "q_max_bytes": 0.0,
                                       "residence_s": 0.0})
        entry["reports"] += 1
        entry["q_max_bytes"] = max(entry["q_max_bytes"],
                                   float(record.get("q_max_bytes", 0.0)))
        entry["residence_s"] += float(record.get("residence_s", 0.0))
    total = sum(e["reports"] for e in table.values())
    for entry in table.values():
        entry["share"] = entry["reports"] / total if total else 0.0
        entry["mean_residence_us"] = (entry["residence_s"] / entry["reports"]
                                      * 1e6 if entry["reports"] else 0.0)
        del entry["residence_s"]
    return dict(sorted(table.items(),
                       key=lambda kv: (-kv[1]["reports"], kv[0])))


def _cell(variant: str, n_senders: int = 8, msg_bytes: int = 32_768,
          rounds: int = 4, rate_bps: float = 1e9, mtu: int = 1500,
          seed: int = 0, telemetry: bool = False) -> dict:
    """One variant's incast run with INT on; plain-JSON kwargs only."""
    sim = Simulator()
    topo, senders, receiver = _build(sim, variant, n_senders, rate_bps,
                                     mtu, seed)
    obs = ObsContext(sim)
    obs.attach_topology(topo)
    tel = IntTelemetry(sim)
    tel.attach_topology(topo)
    vsw = attach_vswitches(ACDC, senders + [receiver], obs=obs)
    for vswitch in vsw.values():
        tel.attach_vswitch(vswitch)
    obs.register_int(tel)

    conn_opts = ACDC.conn_opts()
    recorder = FctRecorder()
    sink = Sink(receiver, DATA_PORT, **conn_opts)
    streams = [MessageStream(sim, sender, receiver.addr, DATA_PORT, sink,
                             recorder, label=f"{sender.addr}>recv",
                             conn_opts=dict(conn_opts))
               for sender in senders]
    # Connections establish quietly, then synchronized message rounds —
    # every round is one incast burst through the slow link.
    storm_at = 0.01
    slow = rate_bps / SLOWDOWN
    round_s = 2.0 * n_senders * msg_bytes * 8.0 / slow
    for r in range(rounds):
        for stream in streams:
            sim.schedule_at(storm_at + r * round_s,
                            stream.send_message, msg_bytes)
    duration = storm_at + (rounds + 1) * round_s
    sim.run(until=duration)

    fcts = sorted(recorder.fcts())
    p99 = percentile(fcts, 99) if fcts else None
    records = obs.bus.records()
    # Data-direction INT reports only: the ACK-direction flows (recv ->
    # sender) carry their own telemetry, irrelevant to message FCT.
    data_reports = [r for r in records
                    if str(r.get("type", "")).startswith("int.")
                    and ">recv:" in str(r.get("flow") or "")]
    attribution = _attribution(data_reports)

    # Per-message attribution of the p99 message itself: the reports
    # scoped to its flow during its lifetime.
    p99_attribution: Optional[dict] = None
    if p99 is not None:
        slowest = min((r for r in recorder.completed() if r.fct >= p99),
                      key=lambda r: r.fct)
        src = slowest.label.split(">", 1)[0]
        window = [r for r in data_reports
                  if str(r.get("flow", "")).startswith(f"{src}:")
                  and slowest.start <= r.get("t", 0.0) <= slowest.end]
        per_msg = _attribution(window)
        p99_attribution = {
            "flow": slowest.label,
            "fct_ms": slowest.fct * 1e3,
            "hop": next(iter(per_msg), None),
            "attribution": per_msg,
        }

    bottleneck = next(iter(attribution), None)
    out: Dict[str, object] = {
        "variant": variant,
        "expected_hop": EXPECTED_HOP[variant],
        "bottleneck_hop": bottleneck,
        "attribution_correct": bottleneck == EXPECTED_HOP[variant],
        "completed": len(fcts),
        "expected_messages": n_senders * rounds,
        "p99_fct_ms": p99 * 1e3 if p99 is not None else None,
        "drop_rate_pct": _total_drop_rate(topo) * 100.0,
        "attribution": attribution,
        "p99_attribution": p99_attribution,
        "int": tel.snapshot(),
    }
    if telemetry:
        out["telemetry"] = obs.snapshot()
        out["trace"] = records
    return out


def run(seed: int = 0, quick: bool = False,
        trace_path: Optional[str] = None) -> dict:
    """Both variants; the attribution table must flip with the topology."""
    n_senders = 4 if quick else 8
    rounds = 2 if quick else 4
    out: Dict[str, object] = {}
    traces: List[dict] = []
    for variant in ("edge", "core"):
        cell = _cell(variant, n_senders=n_senders, rounds=rounds, seed=seed,
                     telemetry=trace_path is not None)
        if trace_path is not None:
            traces.extend(cell.pop("trace"))
            cell.pop("telemetry")
        out[variant] = cell
    out["attribution_flips"] = (
        out["edge"]["bottleneck_hop"] != out["core"]["bottleneck_hop"])
    if trace_path is not None:
        out["trace_path"] = write_jsonl(traces, trace_path)
    return out
