"""Fig. 10: with a CUBIC host, AC/DC's RWND is the limiting window.

AC/DC hides ECN feedback from the VM, so the CUBIC stack sees neither
loss nor marks and grows its CWND; AC/DC's enforced RWND therefore sits
below the host CWND essentially all the time and is what actually paces
the flow.  This experiment logs both series (enforcement active) and
reports the fraction of samples where RWND < CWND.
"""

from __future__ import annotations

from typing import Dict

from ..metrics import WindowLogger
from ..net.packet import mss_for_mtu
from .common import ACDC
from .runners import run_dumbbell
from .fig09_window_tracking import resample


def run(duration: float = 1.0, mtu: int = 1500, seed: int = 0) -> Dict[str, object]:
    """Window series plus the fraction of time RWND is the limiter."""
    mss = mss_for_mtu(mtu)
    acdc_log = WindowLogger()
    host_log = WindowLogger()
    r = run_dumbbell(
        ACDC, pairs=5, duration=duration, mtu=mtu, seed=seed,
        rtt_probe=False,
        window_cb=acdc_log.acdc_callback, window_probe=host_log.probe)
    key = r.flows[0].conn.key()
    rwnd_series = [(t, w / mss) for t, w in acdc_log.samples[key]]
    cwnd_series = [(t, w / mss) for t, w in host_log.samples[key]]
    n = 400
    times = [duration * 0.05 + i * duration * 0.9 / n for i in range(n)]
    rwnd_pts = resample(rwnd_series, times)
    cwnd_pts = resample(cwnd_series, times)
    limiting = sum(1 for a, b in zip(rwnd_pts, cwnd_pts) if a < b)
    return {
        "rwnd_series_mss": rwnd_series,
        "cwnd_series_mss": cwnd_series,
        "fraction_rwnd_limiting": limiting / n,
        "mean_rwnd_mss": sum(rwnd_pts) / n,
        "mean_cwnd_mss": sum(cwnd_pts) / n,
    }
