"""Fig. 14: convergence test — flows join and leave a shared bottleneck.

Following Alizadeh's and Judd's methodology, a new flow is added to the
bottleneck every epoch and then removed in reverse order; the per-flow
throughput timeseries shows whether the scheme converges to fair shares
quickly and smoothly.  CUBIC wobbles and overshoots (with a nonzero drop
rate); DCTCP and AC/DC converge cleanly with zero drops.

Scaling: the paper's epochs are 30 s on a 10 G link; shape converges well
within a second here, so epochs default to 0.5 s on a 1 G bottleneck
(documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..runtime import RunSpec, Runtime
from .common import ALL_SCHEMES, SCHEME_BY_NAME, Scheme
from .runners import run_dumbbell


def run_scheme(scheme: Scheme, flows: int = 5, epoch: float = 0.5,
               mtu: int = 1500, rate_bps: float = 1e9, seed: int = 0) -> dict:
    """One scheme's staggered join/leave run with per-flow timeseries."""
    duration = 2 * flows * epoch
    starts = [i * epoch for i in range(flows)]
    stops = [duration - i * epoch for i in range(flows)]
    r = run_dumbbell(
        scheme, pairs=flows, duration=duration, mtu=mtu, rate_bps=rate_bps,
        seed=seed, start_times=starts, stop_times=stops,
        rtt_probe=False, tput_meters=True)
    series = [m.series for m in r.meters]
    # Fair-share error at each epoch midpoint: compare active flows'
    # instantaneous rates to the equal share.
    epochs: List[dict] = []
    for k in range(2 * flows - 1):
        t_mid = (k + 0.5) * epoch
        active = [i for i in range(flows)
                  if starts[i] <= t_mid and t_mid <= stops[i]]
        rates = []
        for i in active:
            pts = [v for (t, v) in series[i] if abs(t - t_mid) <= epoch / 2]
            rates.append(sum(pts) / len(pts) if pts else 0.0)
        share = rate_bps / max(len(active), 1)
        err = (max(abs(x - share) for x in rates) / share) if rates else 0.0
        epochs.append({"t_mid": t_mid, "active": len(active),
                       "rates_mbps": [x / 1e6 for x in rates],
                       "max_share_error": err})
    return {
        "series_bps": series,
        "epochs": epochs,
        "drop_rate": r.drop_rate,
        "timeouts": sum(f.conn.timeouts for f in r.flows if f.conn),
    }


def _cell(scheme: str, epoch: float, seed: int) -> dict:
    """Runtime worker: one (scheme, seed) cell, JSON kwargs only."""
    return run_scheme(SCHEME_BY_NAME[scheme], epoch=epoch, seed=seed)


def run(epoch: float = 0.5, seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        runtime: Optional[Runtime] = None) -> Dict[str, object]:
    """The convergence test for all three schemes.

    With ``seeds`` the sweep fans every (scheme, seed) cell through the
    experiment runtime (seed-major, deterministically merged) and returns
    ``{"seeds": [...], "per_seed": [<single-seed shape>, ...]}``.
    """
    rt = runtime if runtime is not None else Runtime()
    seed_list = [seed] if seeds is None else list(seeds)
    specs = [RunSpec(f"{__name__}:_cell",
                     {"scheme": s.name, "epoch": epoch, "seed": sd})
             for sd in seed_list for s in ALL_SCHEMES]
    flat = rt.map(specs)
    per_seed = [
        {s.name: flat[k * len(ALL_SCHEMES) + j]
         for j, s in enumerate(ALL_SCHEMES)}
        for k in range(len(seed_list))
    ]
    if seeds is None:
        return per_seed[0]
    return {"seeds": seed_list, "per_seed": per_seed}
