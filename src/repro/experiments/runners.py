"""Reusable experiment runners (dumbbell / parking lot / incast).

Each runner builds a topology, attaches the scheme's vSwitches, drives
the workload for a virtual-time budget and returns a result object with
the paper's metrics.  The per-figure modules are thin wrappers over
these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import AcdcConfig, PolicyEngine
from ..metrics import RttRecorder, ThroughputMeter, jain_index, summarize
from ..net.topology import dumbbell, parking_lot, star
from ..sim import Simulator
from ..workloads.apps import BulkSender, EchoSink, PingPong, Sink
from .common import Scheme, attach_vswitches, switch_opts

RTT_PROBE_PORT = 6000
DATA_PORT = 5000


@dataclass
class RunResult:
    """Common observables of one run."""

    scheme: str
    duration: float
    tputs_bps: List[float] = field(default_factory=list)
    rtt_samples: List[float] = field(default_factory=list)
    drop_rate: float = 0.0
    vswitches: Dict[str, object] = field(default_factory=dict)
    flows: List[BulkSender] = field(default_factory=list)
    #: Per-flow throughput meters; populated only when a runner is asked
    #: for them (``tput_meters=True``), empty otherwise — so ``.meters``
    #: is safe to read on any runner's result.
    meters: List[ThroughputMeter] = field(default_factory=list)
    sim: Optional[Simulator] = None
    topology: Optional[object] = None
    #: Deterministic metric/trace snapshot (``ObsContext.snapshot()``);
    #: empty unless the runner was given an ``obs`` context.
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: Fluid-tier snapshot (``FluidTier.snapshot()``) for hybrid runs;
    #: empty on pure-packet runs.
    fluid: Dict[str, object] = field(default_factory=dict)
    #: The live ObsContext (trace bus, registry) for post-run inspection.
    obs: Optional[object] = None

    @property
    def fairness(self) -> float:
        return jain_index(self.tputs_bps)

    @property
    def avg_tput_bps(self) -> float:
        return sum(self.tputs_bps) / len(self.tputs_bps) if self.tputs_bps else 0.0

    def rtt_summary(self) -> dict:
        return summarize(self.rtt_samples) if self.rtt_samples else {}


def _total_drop_rate(topology) -> float:
    sent = sum(sw.total_tx_packets() for sw in topology.switches.values())
    dropped = sum(sw.total_drops() for sw in topology.switches.values())
    total = sent + dropped
    return dropped / total if total else 0.0


def _attach_int(int_tel, sim, topology, vswitches, obs) -> None:
    """Wire an :class:`~repro.obs.int.IntTelemetry` context into a run:
    stampers on every switch port, sink/echo/view logic on every AC/DC
    vSwitch, and (when an obs context is present) its metric sources."""
    if int_tel is None:
        return
    int_tel.bind(sim)
    int_tel.attach_topology(topology)
    for vswitch in vswitches.values():
        int_tel.attach_vswitch(vswitch)
    if obs is not None:
        obs.register_int(int_tel)


def run_dumbbell(
    scheme: Scheme,
    pairs: int = 5,
    duration: float = 1.0,
    mtu: int = 9000,
    rate_bps: float = 10e9,
    seed: int = 0,
    host_ccs: Optional[Sequence[str]] = None,
    host_ecns: Optional[Sequence[bool]] = None,
    rtt_probe: bool = True,
    probe_interval: float = 0.001,
    probe_pipelined: bool = False,
    acdc_config: Optional[AcdcConfig] = None,
    policy: Optional[PolicyEngine] = None,
    window_cb=None,
    pacing_rate_bps: Optional[float] = None,
    max_cwnd: Optional[int] = None,
    start_times: Optional[Sequence[float]] = None,
    stop_times: Optional[Sequence[float]] = None,
    tput_meters: bool = False,
    window_probe=None,
    obs=None,
    int_tel=None,
) -> RunResult:
    """Long-lived flows s_i -> r_i on the Fig. 7a dumbbell.

    ``host_ccs`` overrides the scheme's guest stack per flow (the Fig. 1 /
    Fig. 17 heterogeneous-stack experiments).  ``start_times`` /
    ``stop_times`` stagger flows (the Fig. 14 convergence test), in which
    case per-flow :class:`ThroughputMeter` series are attached.
    """
    sim = Simulator()
    topo, senders, receivers = dumbbell(
        sim, pairs=pairs, rate_bps=rate_bps, mtu=mtu, seed=seed,
        **switch_opts(scheme, rate_bps))
    if obs is not None:
        obs.bind(sim)
        obs.attach_topology(topo)
    vsw = attach_vswitches(scheme, senders + receivers,
                           acdc_config=acdc_config, policy=policy,
                           window_cb=window_cb, obs=obs)
    _attach_int(int_tel, sim, topo, vsw, obs)
    result = RunResult(scheme=scheme.name, duration=duration, vswitches=vsw,
                       sim=sim, topology=topo)
    meters = []
    for i in range(pairs):
        opts = scheme.conn_opts()
        if host_ccs is not None:
            opts["cc"] = host_ccs[i % len(host_ccs)]
            opts["ecn"] = (host_ecns[i % len(host_ecns)]
                           if host_ecns is not None else opts["cc"] == "dctcp")
        if pacing_rate_bps is not None:
            opts["pacing_rate_bps"] = pacing_rate_bps
        if max_cwnd is not None:
            opts["max_cwnd"] = max_cwnd
        # The sink must mirror the flow's stack (ECN negotiation is
        # end-to-end; a non-ECN listener would silently disable it).
        Sink(receivers[i], DATA_PORT, cc=opts["cc"], ecn=opts["ecn"])
        start = start_times[i] if start_times is not None else 0.0
        stop = stop_times[i] if stop_times is not None else None
        on_start = None
        if window_probe is not None:
            def on_start(flow, probe=window_probe):  # noqa: E306
                flow.conn.window_probe = probe
        flow = BulkSender(sim, senders[i], receivers[i].addr, DATA_PORT,
                          start_at=start, stop_at=stop, conn_opts=opts,
                          on_start=on_start)
        result.flows.append(flow)
        if tput_meters:
            meter = ThroughputMeter(sim, lambda f=flow: f.bytes_acked,
                                    interval_s=duration / 100.0)
            sim.schedule_at(start, meter.start)
            meters.append(meter)
    rtt_rec = RttRecorder()
    if rtt_probe:
        EchoSink(receivers[0], RTT_PROBE_PORT, **scheme.conn_opts())
        PingPong(sim, senders[0], receivers[0].addr, RTT_PROBE_PORT, rtt_rec,
                 interval_s=probe_interval, start_at=0.0,
                 warmup_s=duration * 0.05, pipelined=probe_pipelined,
                 conn_opts=scheme.conn_opts())
    sim.run(until=duration)
    result.tputs_bps = [f.bytes_acked * 8 / duration for f in result.flows]
    result.rtt_samples = rtt_rec.samples
    result.drop_rate = _total_drop_rate(topo)
    result.meters = meters
    if obs is not None:
        result.obs = obs
        result.telemetry = obs.snapshot()
    return result


def run_parking_lot(
    scheme: Scheme,
    n_senders: int = 5,
    duration: float = 1.0,
    mtu: int = 9000,
    rate_bps: float = 10e9,
    seed: int = 0,
    obs=None,
) -> RunResult:
    """The Fig. 7b multi-bottleneck topology, one long flow per sender."""
    sim = Simulator()
    topo, senders, receiver = parking_lot(
        sim, senders=n_senders, rate_bps=rate_bps, mtu=mtu, seed=seed,
        **switch_opts(scheme, rate_bps))
    if obs is not None:
        obs.bind(sim)
        obs.attach_topology(topo)
    vsw = attach_vswitches(scheme, senders + [receiver], obs=obs)
    result = RunResult(scheme=scheme.name, duration=duration, vswitches=vsw,
                       sim=sim, topology=topo)
    opts = scheme.conn_opts()
    for i, sender in enumerate(senders):
        Sink(receiver, DATA_PORT + i, **opts)
        result.flows.append(BulkSender(
            sim, sender, receiver.addr, DATA_PORT + i, conn_opts=dict(opts)))
    rtt_rec = RttRecorder()
    EchoSink(receiver, RTT_PROBE_PORT, **opts)
    PingPong(sim, senders[0], receiver.addr, RTT_PROBE_PORT, rtt_rec,
             interval_s=0.001, start_at=0.0, warmup_s=duration * 0.05,
             conn_opts=dict(opts))
    sim.run(until=duration)
    result.tputs_bps = [f.bytes_acked * 8 / duration for f in result.flows]
    result.rtt_samples = rtt_rec.samples
    result.drop_rate = _total_drop_rate(topo)
    if obs is not None:
        result.obs = obs
        result.telemetry = obs.snapshot()
    return result


def run_incast(
    scheme: Scheme,
    n_senders: int,
    duration: float = 0.4,
    mtu: int = 9000,
    rate_bps: float = 10e9,
    seed: int = 0,
    acdc_config: Optional[AcdcConfig] = None,
    guest_dctcp_floor_mss: Optional[int] = None,
    obs=None,
    int_tel=None,
) -> RunResult:
    """N-to-1 incast of long-lived flows on a star (Fig. 18/19).

    ``guest_dctcp_floor_mss`` parameterises the Linux 2-packet CWND floor
    for the A4 ablation.
    """
    sim = Simulator()
    topo, hosts, _switch = star(
        sim, n_senders + 1, rate_bps=rate_bps, mtu=mtu, seed=seed,
        **switch_opts(scheme, rate_bps))
    receiver, senders = hosts[0], hosts[1:]
    if obs is not None:
        obs.bind(sim)
        obs.attach_topology(topo)
    vsw = attach_vswitches(scheme, hosts, acdc_config=acdc_config, obs=obs)
    _attach_int(int_tel, sim, topo, vsw, obs)
    result = RunResult(scheme=scheme.name, duration=duration, vswitches=vsw,
                       sim=sim, topology=topo)
    opts = scheme.conn_opts()
    if guest_dctcp_floor_mss is not None and opts["cc"] == "dctcp":
        opts["cc_kwargs"] = {"min_cwnd_mss": guest_dctcp_floor_mss}
    Sink(receiver, DATA_PORT, **scheme.conn_opts())
    storm_at = 0.01  # connections establish quietly, then all send
    for i, sender in enumerate(senders):
        # Small start jitter mimics real connection setup spread.
        start = (i % 16) * 1e-4
        result.flows.append(BulkSender(
            sim, sender, receiver.addr, DATA_PORT,
            start_at=start, send_at=storm_at, conn_opts=dict(opts)))
    rtt_rec = RttRecorder()
    EchoSink(receiver, RTT_PROBE_PORT, **scheme.conn_opts())
    PingPong(sim, senders[0], receiver.addr, RTT_PROBE_PORT, rtt_rec,
             interval_s=0.002, start_at=0.0, warmup_s=duration * 0.3,
             conn_opts=scheme.conn_opts())
    # Throughput/fairness over steady state only: the paper's runs last
    # minutes, so its averages do not see the connection-setup transient.
    snapshots = {}

    def snapshot():
        for flow in result.flows:
            snapshots[id(flow)] = flow.bytes_acked

    measure_from = duration * 0.3
    sim.schedule_at(measure_from, snapshot)
    sim.run(until=duration)
    window = duration - measure_from
    result.tputs_bps = [
        (f.bytes_acked - snapshots.get(id(f), 0)) * 8 / window
        for f in result.flows
    ]
    result.rtt_samples = rtt_rec.samples
    result.drop_rate = _total_drop_rate(topo)
    if obs is not None:
        result.obs = obs
        result.telemetry = obs.snapshot()
    return result
