"""Game day: every robustness mechanism exercised in one run.

One seeded service run composes the stack's failure handling end to
end — fault injectors on a host's wire, an adversarial tenant ignoring
RWND, the runtime invariant sanitizer armed, guards attached — while
the control plane hot-reloads guard thresholds, stages (and rolls
back) a bad canary, and finally pulls the kill-switch.  The assertion
is not a performance number: it is that the composed system *completes
cleanly* (no sanitizer violation, no wedged flows, no partial command
application) and that the whole ordeal is deterministic (the trace
signature is stable across serial / pool / replay).

Cells fan through the experiment runtime; game day is exactly the kind
of long cell the runtime's timeout/quarantine guard rails exist for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import sanitize
from ..runtime import Runtime, RunSpec

#: Mild but non-trivial chaos: every injector type at 0.5% marginal
#: probability on the first host's wire.
FAULT_INTENSITY = 0.005


def gameday_schedule(epochs: int) -> List[dict]:
    """Hot guard reload, a doomed canary, a malformed command (must be
    rejected, not partially applied), and the kill-switch."""
    return [
        {"epoch": 0, "op": "set_guard",
         "params": {"suspect_violation_rate": 0.2, "clean_windows": 4}},
        {"epoch": 1, "op": "canary_start",
         "policy": {"max_rwnd": 1460}, "fraction": 0.25,
         "timeout_epochs": 3},
        {"epoch": 1, "op": "set_policy",
         "policy": {"algorithm": "warp-speed"}},      # must be rejected
        {"epoch": max(1, epochs - 2), "op": "kill_switch"},
    ]


def gameday_cell(seed: int, epochs: int = 6, n_hosts: int = 6) -> dict:
    """One full game-day service run (plain-JSON kwargs for the pool)."""
    from ..control.service import Service, ServiceConfig

    config = ServiceConfig(seed=seed, n_hosts=n_hosts, guard=True,
                           sanitize=True,
                           fault_intensity=FAULT_INTENSITY,
                           adversarial_hosts=1)
    sanitize.set_run_seed(seed)
    try:
        result = Service(config, gameday_schedule(epochs)).run(epochs)
    finally:
        sanitize.set_run_seed(None)
    statuses = [c["status"] for c in result["commands"]]
    return {
        "result": result,
        "commands_applied": statuses.count("applied"),
        "commands_rejected": statuses.count("rejected"),
        "signature": result["signature"],
    }


def run(seed: int = 0, quick: bool = False,
        seeds: Optional[Sequence[int]] = None,
        runtime: Optional[Runtime] = None) -> Dict[str, object]:
    epochs = 4 if quick else 6
    n_hosts = 4 if quick else 6
    rt = runtime if runtime is not None else Runtime()
    seed_list = [seed] if seeds is None else list(seeds)
    flat = rt.map([RunSpec(f"{__name__}:gameday_cell",
                           {"seed": sd, "epochs": epochs,
                            "n_hosts": n_hosts})
                   for sd in seed_list])
    per_seed = [{"seed": sd, **cell} for sd, cell in zip(seed_list, flat)]
    if seeds is None:
        return per_seed[0]
    return {"seeds": list(seed_list), "per_seed": per_seed}
