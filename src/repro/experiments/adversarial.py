"""Adversarial-tenant experiment: guard on/off under misbehaving guests.

Not a paper figure — the paper's §3.3 policing assumes the administrator
*knows* which flows misbehave; this experiment measures what the
:mod:`repro.guard` subsystem does when nobody tells it.  A star of
senders shares one receiver link; a fraction of the senders cheat
(``ignore_rwnd`` guests that disregard the enforced window, the §5.4
threat model), and we sweep the violator share with the guard enabled
and disabled.  The claims under test:

* **without** the guard, conforming tenants collapse: the cheaters'
  self-clocked CUBIC overruns the enforced window, fills the shared
  queue, and the vSwitch DCTCP dutifully shrinks *everyone's* window;
* **with** the guard, conforming flows retain most of their fair share:
  cheaters are detected from windowed violation rates and walked up the
  escalation ladder (slack-free policing → penalty clamp → quarantine);
* detection-only adversaries (ECN bleaching, ACK division,
  option-stripping middleboxes) are surfaced as guard events, and
  feedback loss degrades the flow to local-signal CC instead of
  silently starving DCTCP;
* the whole transition history is deterministic under a fixed seed
  (asserted via :meth:`~repro.metrics.EventLog.signature`).

``run_pressure`` exercises the datapath watchdog separately: a
flow-table budget far below the offered flow count forces deliberate
lowest-priority-first load shedding, and traffic keeps flowing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import AcdcConfig
from ..faults import EcnBleach, OptionStrip, install_faults
from ..guard import Guard, GuardConfig
from ..metrics import jain_index
from ..obs.adapters import EventLogAdapter, FaultRecorderAdapter
from ..net.topology import star
from ..runtime import RunSpec, Runtime
from ..sim import Simulator
from ..workloads.apps import BulkSender, Sink
from .common import ACDC, MACRO_RATE, attach_vswitches, switch_opts

DATA_PORT = 6000

#: Supported adversary models (see run_point).
ADVERSARIES = ("ignore_rwnd", "ack_division", "ecn_bleach", "option_strip")


def _guard_config(seed: int) -> GuardConfig:
    """Guard tuning for short simulated runs: react within a few RTTs,
    decay an order of magnitude slower than detection."""
    return GuardConfig(window_packets=32, clean_windows=3,
                       decay_base_s=0.02, seed=seed)


def run_point(
    violator_share: float,
    guard_on: bool,
    seed: int = 0,
    n_senders: int = 8,
    duration: float = 0.2,
    adversary: str = "ignore_rwnd",
) -> dict:
    """One cell: ``n_senders`` bulk flows into one receiver, a
    ``violator_share`` fraction of them running the given adversary."""
    if adversary not in ADVERSARIES:
        raise ValueError(f"unknown adversary {adversary!r}")
    sim = Simulator()
    topo, hosts, switch = star(sim, n_senders + 1, rate_bps=MACRO_RATE,
                               mtu=1500, seed=seed,
                               **switch_opts(ACDC, MACRO_RATE))
    senders, receiver = hosts[:n_senders], hosts[-1]
    n_violators = int(round(violator_share * n_senders))
    violators = senders[:n_violators]
    violator_addrs = {h.addr for h in violators}

    events = EventLogAdapter()
    recorder = FaultRecorderAdapter()
    guards: List[Guard] = []

    def guard_factory(host) -> Optional[Guard]:
        if not guard_on:
            return None
        guard = Guard(_guard_config(seed), recorder=recorder, events=events)
        guards.append(guard)
        return guard

    vswitches = attach_vswitches(ACDC, hosts, acdc_config=AcdcConfig(),
                                 guard_factory=guard_factory)

    # Guest-level adversaries are tenant profiles; wire-level ones are
    # fault stages scoped to the violators' traffic.
    if adversary == "ignore_rwnd":
        for host in violators:
            host.set_tenant_profile(ignore_rwnd=True)
    elif adversary == "ecn_bleach" and violators:
        # CE cleared before the receiver vSwitch can count it.
        install_faults(receiver, [EcnBleach(
            direction="ingress",
            match=lambda p: p.src in violator_addrs and p.payload_len > 0)])
    elif adversary == "option_strip" and violators:
        # Feedback options never reach the violators' sender vSwitches.
        for host in violators:
            install_faults(host, [OptionStrip(direction="ingress")])

    opts = ACDC.conn_opts()
    flows = []
    for i, host in enumerate(senders):
        sink_opts = dict(opts)
        if adversary == "ack_division" and host.addr in violator_addrs:
            # ACK division is a receiver-side cheat: the adversarial
            # tenant's receiving VM splits cumulative ACKs to inflate its
            # own flows' window growth.
            sink_opts["ack_division"] = 8
        Sink(receiver, DATA_PORT + i, **sink_opts)
        flows.append(BulkSender(sim, host, receiver.addr, DATA_PORT + i,
                                size_bytes=None, conn_opts=dict(opts)))
    sim.run(until=duration)

    goodputs = [f.goodput_bps(duration) for f in flows]
    conforming = [g for f, g in zip(flows, goodputs)
                  if f.host.addr not in violator_addrs]
    violating = [g for f, g in zip(flows, goodputs)
                 if f.host.addr in violator_addrs]
    fair_share = MACRO_RATE / n_senders
    result = {
        "adversary": adversary,
        "violator_share": violator_share,
        "guard": guard_on,
        "goodputs_bps": goodputs,
        "conforming_mean_bps": (sum(conforming) / len(conforming)
                                if conforming else 0.0),
        "violating_mean_bps": (sum(violating) / len(violating)
                               if violating else 0.0),
        "conforming_retention": (sum(conforming) / len(conforming) / fair_share
                                 if conforming else 0.0),
        "jain": jain_index(goodputs),
        "guard_events": recorder.snapshot(),
        "event_signature": events.signature(),
    }
    if guard_on:
        result["police_drops"] = sum(g.police_drops for g in guards)
        result["quarantine_drops"] = sum(g.quarantine_drops for g in guards)
        result["fallbacks"] = sum(g.fallbacks for g in guards)
        result["final_levels"] = sorted(
            (str(e.key), e.guard_state.level, e.guard_state.state)
            for v in vswitches.values() if hasattr(v, "table")
            for e in v.table if e.guard_state is not None
            and (e.guard_state.level > 0 or e.guard_state.total_violations))
    return result


def run_pressure(seed: int = 0, n_senders: int = 8,
                 duration: float = 0.1) -> dict:
    """Watchdog scenario: the receiver vSwitch's flow-table budget is far
    below the offered 2 x n_senders entries, forcing deliberate shedding."""
    sim = Simulator()
    topo, hosts, switch = star(sim, n_senders + 1, rate_bps=MACRO_RATE,
                               mtu=1500, seed=seed,
                               **switch_opts(ACDC, MACRO_RATE))
    senders, receiver = hosts[:n_senders], hosts[-1]
    events = EventLogAdapter()
    recorder = FaultRecorderAdapter()
    guards: Dict[str, Guard] = {}

    def guard_factory(host):
        config = _guard_config(seed)
        if host is receiver:
            # Room for half the offered load: ~2 entries per connection.
            config.max_flow_entries = n_senders
            config.watchdog_interval_s = 0.005
        guard = Guard(config, recorder=recorder, events=events)
        guards[host.addr] = guard
        return guard

    vswitches = attach_vswitches(ACDC, hosts, acdc_config=AcdcConfig(),
                                 guard_factory=guard_factory)
    opts = ACDC.conn_opts()
    flows = []
    for i, host in enumerate(senders):
        Sink(receiver, DATA_PORT + i, **opts)
        flows.append(BulkSender(sim, host, receiver.addr, DATA_PORT + i,
                                size_bytes=None, conn_opts=dict(opts)))
    sim.run(until=duration)
    watchdog = guards[receiver.addr].watchdog
    goodputs = [f.goodput_bps(duration) for f in flows]
    return {
        "n_senders": n_senders,
        "sheds": watchdog.sheds if watchdog is not None else 0,
        "unsheds": watchdog.unsheds if watchdog is not None else 0,
        "shed_entries": sum(1 for e in vswitches[receiver.addr].table
                            if e.shed),
        "goodputs_bps": goodputs,
        "total_goodput_bps": sum(goodputs),
        "guard_events": recorder.snapshot(),
        "event_signature": events.signature(),
    }


DETECTION_ADVERSARIES = ("ecn_bleach", "ack_division", "option_strip")


def run(seed: int = 0, quick: bool = False,
        seeds: Optional[Sequence[int]] = None,
        runtime: Optional[Runtime] = None) -> Dict[str, object]:
    """Full sweep: violator share x guard on/off, detection-only
    adversaries at 25% share, and the watchdog pressure scenario.

    Every cell is an independent simulation, so the whole grid fans
    through the experiment runtime (``run_point`` / ``run_pressure``
    already take plain-JSON kwargs).  With ``seeds`` the merge returns
    ``{"seeds": [...], "per_seed": [<single-seed shape>, ...]}``.
    """
    n_senders = 4 if quick else 8
    duration = 0.06 if quick else 0.2
    shares = (0.0, 0.25) if quick else (0.0, 0.25, 0.5)
    rt = runtime if runtime is not None else Runtime()
    seed_list = [seed] if seeds is None else list(seeds)
    sweep_cells = [(share, guard_on)
                   for share in shares for guard_on in (False, True)]
    specs: List[RunSpec] = []
    for sd in seed_list:
        for share, guard_on in sweep_cells:
            specs.append(RunSpec(
                f"{__name__}:run_point",
                {"violator_share": share, "guard_on": guard_on, "seed": sd,
                 "n_senders": n_senders, "duration": duration}))
        for adversary in DETECTION_ADVERSARIES:
            specs.append(RunSpec(
                f"{__name__}:run_point",
                {"violator_share": 0.25, "guard_on": True, "seed": sd,
                 "n_senders": n_senders, "duration": duration,
                 "adversary": adversary}))
        specs.append(RunSpec(
            f"{__name__}:run_pressure",
            {"seed": sd, "n_senders": n_senders,
             "duration": min(duration, 0.1)}))
    flat = rt.map(specs)
    stride = len(sweep_cells) + len(DETECTION_ADVERSARIES) + 1
    per_seed = []
    for k in range(len(seed_list)):
        base = k * stride
        sweep = {
            f"share={share:g},guard={'on' if guard_on else 'off'}":
                flat[base + i]
            for i, (share, guard_on) in enumerate(sweep_cells)
        }
        detection = {
            adversary: flat[base + len(sweep_cells) + i]
            for i, adversary in enumerate(DETECTION_ADVERSARIES)
        }
        per_seed.append({
            "sweep": sweep,
            "detection": detection,
            "pressure": flat[base + stride - 1],
        })
    if seeds is None:
        return per_seed[0]
    return {"seeds": seed_list, "per_seed": per_seed}
