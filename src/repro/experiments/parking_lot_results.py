"""§5.1 parking-lot numbers (text results for the Fig. 7b topology).

Each sender's flow crosses a different number of bottlenecks on the
switch chain.  The paper reports: CUBIC averages 2.48 Gb/s with fairness
0.94; DCTCP and AC/DC average 2.45 Gb/s with fairness 0.99; AC/DC's
RTTs track DCTCP's (~124/136 µs median) while CUBIC's are milliseconds.
"""

from __future__ import annotations

from typing import Dict

from .common import ALL_SCHEMES
from .runners import run_parking_lot


def run(duration: float = 1.0, mtu: int = 9000, seed: int = 0) -> Dict[str, dict]:
    """Throughput/fairness/RTT on the parking lot, all three schemes."""
    out: Dict[str, dict] = {}
    for scheme in ALL_SCHEMES:
        r = run_parking_lot(scheme, n_senders=5, duration=duration,
                            mtu=mtu, seed=seed)
        out[scheme.name] = {
            "tput_gbps": [t / 1e9 for t in r.tputs_bps],
            "avg_tput_gbps": r.avg_tput_bps / 1e9,
            "fairness": r.fairness,
            "rtt": r.rtt_summary(),
            "drop_rate": r.drop_rate,
        }
    return out
