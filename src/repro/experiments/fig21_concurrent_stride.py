"""Fig. 21: concurrent-stride workload — mice and background FCT CDFs.

17 servers on one switch.  Server *i* sends a background block to servers
*i+1..i+4* (mod 17) sequentially while sending a 16 KB mouse to server
*i+8* every 100 ms.  The paper's result: DCTCP and AC/DC cut mice median
FCT by ~77% and tail FCT by >90% versus CUBIC, while background transfers
finish no slower (CUBIC's are actually longer due to unfairness).

Scaling: 1 GbE links and 16 MB background blocks (vs 512 MB at 10 GbE),
sized so the background occupies the fabric for the whole mice-sending
window; the mice/elephant contention structure is unchanged.
"""

from __future__ import annotations

from typing import Dict

from ..metrics import FctRecorder
from ..net.topology import star
from ..sim import Simulator
from ..workloads.generators import ConcurrentStride
from .common import ALL_SCHEMES, Scheme, attach_vswitches, switch_opts


def run_scheme(scheme: Scheme, hosts_n: int = 17, duration: float = 0.8,
               background_bytes: int = 16 * 1024 * 1024,
               mtu: int = 9000, rate_bps: float = 1e9, seed: int = 0) -> dict:
    """One scheme's concurrent-stride run: mice and background FCTs."""
    sim = Simulator()
    topo, hosts, switch = star(sim, hosts_n, rate_bps=rate_bps, mtu=mtu,
                               seed=seed, **switch_opts(scheme, rate_bps))
    attach_vswitches(scheme, hosts)
    recorder = FctRecorder()
    ConcurrentStride(
        sim, hosts, recorder,
        background_bytes=background_bytes, background_rounds=1,
        mice_bytes=16 * 1024, mice_interval=0.1, duration=duration * 0.6,
        conn_opts=scheme.conn_opts())
    sim.run(until=duration)
    return {
        "mice_fcts": recorder.fcts("mice"),
        "background_fcts": recorder.fcts("background"),
        "mice_done": recorder.completion_fraction("mice"),
        "background_done": recorder.completion_fraction("background"),
        "drop_rate_pct": 100.0 * switch.drop_rate(),
    }


def run(duration: float = 0.8, seed: int = 0) -> Dict[str, dict]:
    """The concurrent-stride workload for all three schemes."""
    return {s.name: run_scheme(s, duration=duration, seed=seed)
            for s in ALL_SCHEMES}
