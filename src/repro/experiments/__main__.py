"""Command-line runner: regenerate any paper experiment by name.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig08
    python -m repro.experiments table1
    python -m repro.experiments fig19 --json
    python -m repro.experiments fig18-19 --seeds 0,1,2,3 --jobs 8 \\
        --cache-dir .repro-cache

``--jobs``/``--cache-dir``/``--seeds`` route the multi-seed experiments
(fig14, fig18-19, fig22, chaos, adversarial) through
:mod:`repro.runtime`: independent (scheme, seed, config) cells fan out
across a process pool, merge deterministically in seed order, and cached
cells are skipped on re-runs.

This is a thin convenience wrapper — the benchmarks under ``benchmarks/``
are the canonical (asserting) way to regenerate the evaluation.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys

from ..runtime import Runtime
from . import (
    ablations,
    adversarial,
    canary,
    chaos,
    fig01_heterogeneous_unfairness,
    fig02_rate_limiting_insufficient,
    fig06_rwnd_vs_cwnd_clamp,
    fig08_dumbbell_rtt,
    fig09_window_tracking,
    fig10_limiting_window,
    fig11_12_cpu_overhead,
    fig13_qos_beta,
    fig14_convergence,
    fig15_16_ecn_coexistence,
    fig17_fairness_mixed_cc,
    fig18_19_incast,
    fig20_all_ports_congested,
    fig21_concurrent_stride,
    fig22_shuffle,
    fig23_trace_driven,
    gameday,
    hybrid,
    int_attribution,
    parking_lot_results,
    table1_cc_variants,
)

EXPERIMENTS = {
    "fig01": fig01_heterogeneous_unfairness.run,
    "fig02": fig02_rate_limiting_insufficient.run,
    "fig06": fig06_rwnd_vs_cwnd_clamp.run,
    "fig08": fig08_dumbbell_rtt.run,
    "parking-lot": parking_lot_results.run,
    "fig09": fig09_window_tracking.run,
    "fig10": fig10_limiting_window.run,
    "fig11-12": fig11_12_cpu_overhead.run,
    "fig13": fig13_qos_beta.run,
    "table1": table1_cc_variants.run,
    "fig14": fig14_convergence.run,
    "fig15-16": fig15_16_ecn_coexistence.run,
    "fig17": fig17_fairness_mixed_cc.run,
    "fig18-19": fig18_19_incast.run,
    "fig20": fig20_all_ports_congested.run,
    "fig21": fig21_concurrent_stride.run,
    "fig22": fig22_shuffle.run,
    "fig23": fig23_trace_driven.run,
    "hybrid": hybrid.run,
    "int-attribution": int_attribution.run,
    "chaos": chaos.run,
    "adversarial": adversarial.run,
    "canary": canary.run,
    "gameday": gameday.run,
    "ablation-policing": ablations.run_policing,
    "ablation-feedback": ablations.run_feedback_modes,
    "ablation-ecn-hiding": ablations.run_ecn_hiding,
    "ablation-floor": ablations.run_window_floor,
}


def _supported_params(fn) -> set:
    """Parameter names ``fn`` accepts (empty set if unintrospectable)."""
    try:
        return set(inspect.signature(fn).parameters)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return set()


def _filter_kwargs(kwargs: dict, supported: set) -> dict:
    """Drop kwargs the experiment does not take (e.g. quick, runtime)."""
    return {k: v for k, v in kwargs.items() if k in supported}


def _default(obj):
    """Make experiment results JSON-serialisable."""
    if isinstance(obj, (set, tuple)):
        return list(obj)
    if hasattr(obj, "__dict__"):
        return {k: v for k, v in vars(obj).items()
                if not k.startswith("_")}
    return repr(obj)


def _shorten(value, limit=2000):
    """Truncate giant sample lists for the human-readable dump."""
    if isinstance(value, list) and len(value) > limit:
        return value[:limit] + [f"... ({len(value)} items)"]
    if isinstance(value, dict):
        return {k: _shorten(v, limit) for k, v in value.items()}
    return value


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate AC/DC TCP paper experiments.")
    parser.add_argument("experiment",
                        help="experiment id, or 'list' to enumerate")
    parser.add_argument("--json", action="store_true",
                        help="dump full structured results as JSON")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds",
                        help="comma-separated seed sweep (multi-seed "
                             "experiments only), e.g. --seeds 0,1,2,3")
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-pool width for the experiment "
                             "runtime; 0 means one worker per CPU")
    parser.add_argument("--cache-dir",
                        help="on-disk result cache: completed (scheme, "
                             "seed, config) cells are skipped on re-runs")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scale (CI smoke runs); only honoured "
                             "by experiments with a quick mode")
    parser.add_argument("--trace", metavar="PATH",
                        help="run with structured tracing on and export "
                             "the event stream as JSONL to PATH (inspect "
                             "with python -m repro.obs)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    run = EXPERIMENTS.get(args.experiment)
    if run is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro.experiments list", file=sys.stderr)
        return 2
    kwargs = {"seed": args.seed}
    if args.quick:
        kwargs["quick"] = True
    supported = _supported_params(run)
    if "runtime" in supported:
        kwargs["runtime"] = Runtime(jobs=args.jobs or None,
                                    cache=args.cache_dir)
    if args.seeds is not None:
        if "seeds" not in supported:
            print(f"{args.experiment!r} does not support --seeds",
                  file=sys.stderr)
            return 2
        kwargs["seeds"] = [int(s) for s in args.seeds.split(",") if s]
    if args.trace is not None:
        if "trace_path" not in supported:
            print(f"{args.experiment!r} does not support --trace",
                  file=sys.stderr)
            return 2
        kwargs["trace_path"] = args.trace
    try:
        result = run(**_filter_kwargs(kwargs, supported))
    except TypeError:
        result = run()
    if args.json:
        json.dump(result, sys.stdout, default=_default)
        print()
    else:
        print(json.dumps(_shorten(result), default=_default, indent=1))
    return 0


if __name__ == "__main__":
    sys.exit(main())
