"""Fig. 18/19: many-to-one incast — throughput, fairness, RTT, drops.

N ∈ {16, 32, 40, 47} senders fan long-lived flows into one receiver.
Expected shape (paper):

* throughput ≈ line rate / N for every scheme, fairness > 0.99 for
  DCTCP and AC/DC (Fig. 18);
* CUBIC's RTT and drop rate blow up; DCTCP's RTT *grows with N* because
  its 2-packet CWND floor keeps N×2×MSS bytes in the queue; AC/DC's
  byte-granular RWND floor stays below that, so its RTT stays flat and
  lowest (Fig. 19) with zero drops.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..metrics import percentile
from .common import ALL_SCHEMES
from .runners import run_incast

SENDER_COUNTS = (16, 32, 40, 47)


def run(counts: Sequence[int] = SENDER_COUNTS, duration: float = 0.4,
        mtu: int = 9000, seed: int = 0) -> List[dict]:
    """Throughput/fairness/RTT/drops per scheme per fan-in count."""
    rows: List[dict] = []
    for n in counts:
        row: Dict[str, object] = {"senders": n}
        for scheme in ALL_SCHEMES:
            r = run_incast(scheme, n_senders=n, duration=duration,
                           mtu=mtu, seed=seed)
            rtt = r.rtt_samples
            row[scheme.name] = {
                "avg_tput_mbps": r.avg_tput_bps / 1e6,
                "fairness": r.fairness,
                "rtt_p50_ms": percentile(rtt, 50) * 1e3 if rtt else float("nan"),
                "rtt_p999_ms": percentile(rtt, 99.9) * 1e3 if rtt else float("nan"),
                "drop_rate_pct": r.drop_rate * 100.0,
            }
        rows.append(row)
    return rows
