"""Fig. 18/19: many-to-one incast — throughput, fairness, RTT, drops.

N ∈ {16, 32, 40, 47} senders fan long-lived flows into one receiver.
Expected shape (paper):

* throughput ≈ line rate / N for every scheme, fairness > 0.99 for
  DCTCP and AC/DC (Fig. 18);
* CUBIC's RTT and drop rate blow up; DCTCP's RTT *grows with N* because
  its 2-packet CWND floor keeps N×2×MSS bytes in the queue; AC/DC's
  byte-granular RWND floor stays below that, so its RTT stays flat and
  lowest (Fig. 19) with zero drops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..metrics import percentile
from ..runtime import RunSpec, Runtime
from .common import ALL_SCHEMES, SCHEME_BY_NAME
from .runners import run_incast

SENDER_COUNTS = (16, 32, 40, 47)


def _cell(scheme: str, n_senders: int, duration: float, mtu: int,
          seed: int, telemetry: bool = False) -> dict:
    """Runtime worker: one (scheme, fan-in, seed) cell, JSON kwargs only.

    ``telemetry=True`` attaches an :class:`~repro.obs.ObsContext` and
    returns its deterministic snapshot plus the raw trace records — the
    payload the runtime byte-identity tests compare across serial, pool
    and cache-replay execution.
    """
    obs = None
    if telemetry:
        from ..obs import ObsContext
        obs = ObsContext()
    r = run_incast(SCHEME_BY_NAME[scheme], n_senders=n_senders,
                   duration=duration, mtu=mtu, seed=seed, obs=obs)
    rtt = r.rtt_samples
    out: Dict[str, object] = {
        "avg_tput_mbps": r.avg_tput_bps / 1e6,
        "fairness": r.fairness,
        "rtt_p50_ms": percentile(rtt, 50) * 1e3 if rtt else float("nan"),
        "rtt_p999_ms": percentile(rtt, 99.9) * 1e3 if rtt else float("nan"),
        "drop_rate_pct": r.drop_rate * 100.0,
    }
    if obs is not None:
        out["telemetry"] = r.telemetry
        out["trace"] = obs.bus.records()
    return out


def run(counts: Sequence[int] = SENDER_COUNTS, duration: float = 0.4,
        mtu: int = 9000, seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        runtime: Optional[Runtime] = None):
    """Throughput/fairness/RTT/drops per scheme per fan-in count.

    With ``seeds`` every (fan-in, scheme, seed) cell fans through the
    experiment runtime; the merge is seed-major and returns
    ``{"seeds": [...], "per_seed": [<single-seed rows>, ...]}``.
    """
    rt = runtime if runtime is not None else Runtime()
    seed_list = [seed] if seeds is None else list(seeds)
    cells = [(n, s.name) for n in counts for s in ALL_SCHEMES]
    specs = [RunSpec(f"{__name__}:_cell",
                     {"scheme": name, "n_senders": n, "duration": duration,
                      "mtu": mtu, "seed": sd})
             for sd in seed_list for n, name in cells]
    flat = rt.map(specs)
    per_seed: List[List[dict]] = []
    for k in range(len(seed_list)):
        rows: List[dict] = []
        for i, n in enumerate(counts):
            row: Dict[str, object] = {"senders": n}
            for j, scheme in enumerate(ALL_SCHEMES):
                row[scheme.name] = flat[
                    k * len(cells) + i * len(ALL_SCHEMES) + j]
            rows.append(row)
        per_seed.append(rows)
    if seeds is None:
        return per_seed[0]
    return {"seeds": seed_list, "per_seed": per_seed}
