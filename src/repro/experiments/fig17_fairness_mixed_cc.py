"""Fig. 17: AC/DC restores fairness across heterogeneous guest stacks.

The Fig. 1 experiment repeated: five different guest stacks (CUBIC,
Illinois, HighSpeed, New Reno, Vegas) — but now AC/DC enforces DCTCP in
the vSwitch (Fig. 17b).  The reference (Fig. 17a) is all five flows
running native DCTCP.  Max/min/mean/median per test should nearly
coincide in both cases.
"""

from __future__ import annotations

from typing import Dict, List

from ..metrics import jain_index
from .common import ACDC, DCTCP, MICRO_DURATION, MICRO_RUNS
from .fig01_heterogeneous_unfairness import HETEROGENEOUS_STACKS
from .runners import run_dumbbell


def run(runs: int = MICRO_RUNS, duration: float = MICRO_DURATION,
        mtu: int = 9000) -> Dict[str, dict]:
    """Per-test max/min/mean/median for all-DCTCP vs AC/DC-mixed."""
    out: Dict[str, dict] = {}
    configs = {
        "all-dctcp": (DCTCP, None, None),
        "acdc-mixed": (ACDC, list(HETEROGENEOUS_STACKS),
                       [cc == "dctcp" for cc in HETEROGENEOUS_STACKS]),
    }
    for label, (scheme, ccs, ecns) in configs.items():
        tests: List[dict] = []
        for rep in range(runs):
            r = run_dumbbell(scheme, pairs=5, duration=duration, mtu=mtu,
                             seed=rep, host_ccs=ccs, host_ecns=ecns,
                             rtt_probe=False)
            gbps = [t / 1e9 for t in r.tputs_bps]
            tests.append({
                "max": max(gbps), "min": min(gbps),
                "mean": sum(gbps) / len(gbps),
                "median": sorted(gbps)[len(gbps) // 2],
                "fairness": jain_index(gbps),
            })
        out[label] = {
            "tests": tests,
            "mean_fairness": sum(t["fairness"] for t in tests) / len(tests),
        }
    return out
