"""Chaos experiment: goodput degradation vs fault intensity.

Not a paper figure — a robustness probe of the reproduction itself.  The
three baseline schemes each run fixed-size transfers on the three-host
star while every injector from :mod:`repro.faults` tortures the wire at
a swept intensity, and (at nonzero intensity) the AC/DC vSwitches on one
sender and the receiver are restarted mid-transfer.  The claims under
test:

* transfers still complete at datacenter-realistic fault rates (1–2%),
  for AC/DC no worse than for the plain-OVS schemes — the vSwitch layer
  adds no new fragility;
* a vSwitch restart loses no connection: flow entries resurrect mid-flow
  from the first post-restart packet (§4's soft-state design) and the
  feedback channel resyncs;
* every injected event is accounted: the per-cause
  :class:`~repro.metrics.FaultRecorder` totals equal the sum of the
  injectors' own event counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..faults import (
    Corruption,
    DelayJitter,
    Duplication,
    Fault,
    LinkFlap,
    PacketLoss,
    Reordering,
    VswitchRestart,
    install_faults,
)
from ..obs.adapters import FaultRecorderAdapter
from ..net.topology import star
from ..runtime import RunSpec, Runtime
from ..sim import Simulator
from ..workloads.apps import BulkSender, Sink
from .common import (
    ALL_SCHEMES,
    MICRO_RATE,
    SCHEME_BY_NAME,
    Scheme,
    attach_vswitches,
    switch_opts,
)

DATA_PORT = 5000
#: Virtual instant of the mid-transfer vSwitch restarts (the unfaulted
#: 2x4 MB transfer takes ~7 ms, so 2 ms is genuinely mid-flow).
RESTART_AT = 0.002
#: Flap cadence; downtime per period scales with the swept intensity.
FLAP_PERIOD = 0.005


def fault_chain(intensity: float, seed: int, jitter_s: float = 20e-6) -> List[Fault]:
    """Every injector type, scaled to one intensity knob.

    ``intensity`` is the marginal probability for loss/reordering; the
    rarer real-world causes (corruption, duplication) run at half of it,
    and the link is down for ``intensity`` of each flap period.
    """
    if intensity <= 0.0:
        return []
    return [
        PacketLoss(intensity, seed=seed + 1),
        Corruption(intensity / 2.0, seed=seed + 2),
        Duplication(intensity / 2.0, seed=seed + 3),
        Reordering(intensity, hold_s=200e-6, seed=seed + 4),
        DelayJitter(jitter_s, rate=intensity, seed=seed + 5),
        LinkFlap(FLAP_PERIOD, down_for_s=intensity * FLAP_PERIOD,
                 seed=seed + 6),
    ]


def run_point(scheme: Scheme, intensity: float, seed: int = 0,
              size_bytes: int = 4_000_000, duration: float = 0.5) -> dict:
    """One (scheme, intensity) cell of the sweep."""
    sim = Simulator()
    topo, hosts, switch = star(sim, 3, rate_bps=MICRO_RATE, mtu=1500,
                               seed=seed, **switch_opts(scheme, MICRO_RATE))
    senders, receiver = hosts[:2], hosts[2]
    vswitches = attach_vswitches(scheme, hosts)
    recorder = FaultRecorderAdapter()
    chains: List[Fault] = []
    # Fault chains sit on the senders' wires only: every packet crosses
    # exactly one chain, so each injector acts at its nominal rate (a
    # chain on the receiver too would square the survival probability).
    for i, host in enumerate(senders):
        faults = fault_chain(intensity, seed=seed + 100 * (i + 1))
        if intensity > 0.0 and i == 0:
            faults.append(VswitchRestart(at=(RESTART_AT,)))
        if faults:
            install_faults(host, faults, recorder=recorder)
            chains.extend(faults)
    if intensity > 0.0:
        restart = VswitchRestart(at=(RESTART_AT,))
        install_faults(receiver, [restart], recorder=recorder)
        chains.append(restart)
    opts = scheme.conn_opts()
    flows = []
    for i, host in enumerate(senders):
        Sink(receiver, DATA_PORT + i, **opts)
        flows.append(BulkSender(sim, host, receiver.addr, DATA_PORT + i,
                                size_bytes=size_bytes, conn_opts=dict(opts)))
    sim.run(until=duration)
    done = [f for f in flows if f.bytes_acked >= size_bytes]
    finished = max((f.conn.closed_at or duration for f in done),
                   default=duration) if len(done) == len(flows) else duration
    total_bits = sum(f.bytes_acked for f in flows) * 8.0
    result = {
        "intensity": intensity,
        "goodput_gbps": total_bits / max(finished, 1e-9) / 1e9,
        "completed": len(done),
        "flows": len(flows),
        "fault_counts": recorder.snapshot(),
        "injected_events": sum(f.events for f in chains),
    }
    if scheme.vswitch == "acdc":
        acdc = [vswitches[h.addr] for h in hosts]
        result["restarts"] = sum(v.restarts for v in acdc)
        result["resurrections"] = sum(v.resurrections for v in acdc)
        result["feedback_resyncs"] = sum(
            e.feedback_reader.resyncs
            for v in acdc for e in v.table)
    return result


def _cell(scheme: str, intensity: float, seed: int, size_bytes: int,
          duration: float) -> dict:
    """Runtime worker: one (scheme, intensity, seed) cell, JSON kwargs."""
    return run_point(SCHEME_BY_NAME[scheme], intensity, seed=seed,
                     size_bytes=size_bytes, duration=duration)


def run(seed: int = 0, size_bytes: int = 4_000_000, duration: float = 0.5,
        intensities: Sequence[float] = (0.0, 0.01, 0.02, 0.05),
        quick: bool = False,
        seeds: Optional[Sequence[int]] = None,
        runtime: Optional[Runtime] = None) -> Dict[str, object]:
    """Sweep fault intensity for every scheme; returns per-scheme curves.

    ``quick`` shrinks the transfers and the sweep for CI smoke runs.
    With ``seeds`` the whole scheme x intensity grid fans through the
    experiment runtime per seed and the merge returns
    ``{"seeds": [...], "per_seed": [<single-seed shape>, ...]}``.
    """
    if quick:
        size_bytes = min(size_bytes, 1_000_000)
        duration = min(duration, 0.2)
        intensities = intensities[:2]
    rt = runtime if runtime is not None else Runtime()
    seed_list = [seed] if seeds is None else list(seeds)
    cells = [(s.name, x) for s in ALL_SCHEMES for x in intensities]
    specs = [RunSpec(f"{__name__}:_cell",
                     {"scheme": name, "intensity": x, "seed": sd,
                      "size_bytes": size_bytes, "duration": duration})
             for sd in seed_list for name, x in cells]
    flat = rt.map(specs)
    n_int = len(intensities)
    per_seed = [
        {s.name: flat[k * len(cells) + i * n_int:
                      k * len(cells) + (i + 1) * n_int]
         for i, s in enumerate(ALL_SCHEMES)}
        for k in range(len(seed_list))
    ]
    if seeds is None:
        return per_seed[0]
    return {"seeds": seed_list, "per_seed": per_seed}
