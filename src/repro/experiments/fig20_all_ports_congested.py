"""Fig. 20: RTT through the most congested port when ~all ports congest.

The paper splits 48 NICs into group A (46) and B (B1, B2).  Every A NIC
sends 4 concurrent flows within A (stride pattern) and one flow to B1 —
a 46-to-1 incast — congesting 47 of 48 ports and pressuring the shared
buffer's dynamic allocation.  The probe measures RTT from B2 to B1,
i.e. through the most congested port.

Scaling: group A defaults to 10 hosts with stride-2 flows on 1 GbE links
(the pressure pattern — every port congested plus a deep incast port —
is preserved; see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict

from ..metrics import RttRecorder, jain_index, percentile
from ..net.topology import star
from ..sim import Simulator
from ..workloads.apps import BulkSender, EchoSink, PingPong, Sink
from .common import ALL_SCHEMES, Scheme, attach_vswitches, switch_opts

DATA_PORT = 5000
PROBE_PORT = 6000


def run_scheme(scheme: Scheme, group_a: int = 10, stride: int = 2,
               duration: float = 0.6, mtu: int = 9000,
               rate_bps: float = 1e9, seed: int = 0) -> dict:
    """One scheme's run: probe RTT percentiles through the hot port."""
    sim = Simulator()
    topo, hosts, switch = star(sim, group_a + 2, rate_bps=rate_bps,
                               mtu=mtu, seed=seed,
                               **switch_opts(scheme, rate_bps))
    a_hosts = hosts[:group_a]
    b1, b2 = hosts[group_a], hosts[group_a + 1]
    attach_vswitches(scheme, hosts)
    opts = scheme.conn_opts()
    flows = []
    for i, host in enumerate(a_hosts):
        # Within-A stride flows: i -> i+1 .. i+stride (mod A).
        for k in range(1, stride + 1):
            dst = a_hosts[(i + k) % group_a]
            Sink(dst, DATA_PORT + i, **opts)
            flows.append(BulkSender(sim, host, dst.addr, DATA_PORT + i,
                                    conn_opts=dict(opts)))
        # Incast flow into B1.
        Sink(b1, DATA_PORT + 100 + i, **opts)
        flows.append(BulkSender(sim, host, b1.addr, DATA_PORT + 100 + i,
                                conn_opts=dict(opts)))
    rec = RttRecorder()
    EchoSink(b1, PROBE_PORT, **opts)
    PingPong(sim, b2, b1.addr, PROBE_PORT, rec, interval_s=0.002,
             start_at=0.0, warmup_s=duration * 0.15, conn_opts=dict(opts))
    sim.run(until=duration)
    tputs = [f.bytes_acked * 8 / duration for f in flows]
    rtt = rec.samples
    return {
        "avg_tput_mbps": sum(tputs) / len(tputs) / 1e6,
        "fairness": jain_index(tputs),
        "rtt_ms": {
            "p50": percentile(rtt, 50) * 1e3,
            "p95": percentile(rtt, 95) * 1e3,
            "p99": percentile(rtt, 99) * 1e3,
            "p999": percentile(rtt, 99.9) * 1e3,
        } if rtt else {},
        "drop_rate_pct": 100.0 * switch.drop_rate(),
    }


def run(duration: float = 0.6, seed: int = 0) -> Dict[str, dict]:
    """All three schemes on the scaled all-ports-congested pattern."""
    return {s.name: run_scheme(s, duration=duration, seed=seed)
            for s in ALL_SCHEMES}
