"""Hybrid-fidelity scenarios: packet foreground over fluid background.

The paper's evaluation keeps its microbenchmarks small (a handful of
long-lived flows) because packet-level simulation pays several calendar
events per packet per hop.  Production traces are mostly the opposite
shape: a few latency-sensitive foreground flows sharing bottlenecks with
*hundreds* of long-lived background flows whose individual packets are
irrelevant — only their aggregate buffer pressure and marking feedback
matter.  These runners carry the foreground on the packet datapath and
the background on the fluid tier (``repro.fluid``), coupled at the
bottleneck port.

Tier routing is per flow group (:class:`~repro.workloads.background.
TierRouter`): ``tier_mode="packet"`` simulates everything packet-level
— the validation configuration the fidelity tests compare against —
and ``inert_coupling=True`` installs the coupling hooks with no fluid
classes, which must leave the run byte-identical to not installing
them at all (the zero-background identity contract, DESIGN.md §15).

Everything reported here is virtual-domain (throughputs, marks, byte
counters); wall-clock speedup lives in ``benchmarks/test_bench_hybrid``
where host timing belongs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..fluid import FluidTier
from ..metrics import RttRecorder
from ..net.topology import dumbbell, star
from ..sim import Simulator
from ..workloads.apps import BulkSender, EchoSink, PingPong, Sink
from ..workloads.background import BackgroundFlowGroup, TierRouter
from .common import DCTCP, Scheme, attach_vswitches, switch_opts
from .runners import DATA_PORT, RTT_PROBE_PORT, RunResult, _total_drop_rate

#: Fluid timestep for the stock scenarios: 0.1 ms, ten steps per the
#: default 1 ms background RTT.
HYBRID_DT_S = 1e-4

#: Default background mix: a large DCTCP cohort plus a small non-ECT
#: Reno cohort — the Fig. 15/16 ECN-coexistence trap at a population the
#: packet tier could not afford.
DEFAULT_BACKGROUND = (
    BackgroundFlowGroup("bg-dctcp", n_flows=48, rtt_s=1e-3, cc="dctcp"),
    BackgroundFlowGroup("bg-reno", n_flows=16, rtt_s=1e-3, cc="reno"),
)


def _couple(sim: Simulator, switch, port_id: int, fluid_specs,
            dt: float, inert: bool, start_at: float) -> Optional[FluidTier]:
    """Attach the fluid tier at one bottleneck port (or not at all).

    The stepper starts at ``start_at``, not 0: the background classes
    dump their initial windows into the queue in one burst (they have
    no packet-level slow start), which parks the occupancy above the
    WRED ramp top — and a foreground handshake's non-ECT SYN arriving
    into that transient is dropped with probability 1.  Letting the
    foreground establish first is the same connect-quietly-then-storm
    methodology the incast runner uses for its packet senders.
    """
    if not fluid_specs and not inert:
        return None
    tier = FluidTier(sim, dt=dt)
    tier.couple(switch, port_id, classes=tuple(fluid_specs))
    tier.start(start_at=start_at)
    return tier


def _finish(result: RunResult, topo, tier: Optional[FluidTier],
            obs) -> RunResult:
    result.drop_rate = _total_drop_rate(topo)
    if tier is not None:
        tier.stop()
        result.fluid = tier.snapshot()
        if obs is not None:
            # Flatten the coupling stats into the telemetry snapshot so
            # a hybrid run is observable like a packet run.
            obs.register_fluid(tier)
    if obs is not None:
        result.obs = obs
        result.telemetry = obs.snapshot()
    return result


def run_hybrid_dumbbell(
    scheme: Scheme = DCTCP,
    fg_pairs: int = 1,
    background: Sequence[BackgroundFlowGroup] = (),
    duration: float = 1.0,
    mtu: int = 1500,
    rate_bps: float = 10e9,
    seed: int = 0,
    dt: float = HYBRID_DT_S,
    bg_start_at: float = 0.005,
    tier_mode: str = "auto",
    inert_coupling: bool = False,
    rtt_probe: bool = False,
    probe_interval: float = 0.001,
    fg_conn_opts: Optional[dict] = None,
    obs=None,
) -> RunResult:
    """Foreground pairs on the Fig. 7a dumbbell, background on the
    forward bottleneck port (sw-left -> sw-right).

    Packet-tier background groups expand into real sender/receiver
    pairs; fluid groups become flow classes at the bottleneck.
    """
    router = TierRouter(tier_mode)
    pkt_groups, fluid_specs = router.route(background)
    pkt_flows = [group for group in pkt_groups for _ in range(group.n_flows)]
    sim = Simulator()
    topo, senders, receivers = dumbbell(
        sim, pairs=fg_pairs + len(pkt_flows), rate_bps=rate_bps, mtu=mtu,
        seed=seed, **switch_opts(scheme, rate_bps))
    if obs is not None:
        obs.bind(sim)
        obs.attach_topology(topo)
    vsw = attach_vswitches(scheme, senders + receivers, obs=obs)
    result = RunResult(scheme=scheme.name, duration=duration, vswitches=vsw,
                       sim=sim, topology=topo)
    for i in range(fg_pairs):
        opts = scheme.conn_opts()
        if fg_conn_opts:
            opts.update(fg_conn_opts)
        # The sink mirrors the flow's stack (ECN negotiation is
        # end-to-end), but not transmit-side knobs like pacing.
        Sink(receivers[i], DATA_PORT, cc=opts["cc"], ecn=opts["ecn"])
        result.flows.append(BulkSender(
            sim, senders[i], receivers[i].addr, DATA_PORT, conn_opts=opts))
    for j, group in enumerate(pkt_flows):
        i = fg_pairs + j
        opts = {"cc": group.cc, "ecn": group.resolved_ect}
        Sink(receivers[i], DATA_PORT, **opts)
        result.flows.append(BulkSender(
            sim, senders[i], receivers[i].addr, DATA_PORT,
            conn_opts=dict(opts)))
    rtt_rec = RttRecorder()
    if rtt_probe:
        EchoSink(receivers[0], RTT_PROBE_PORT, **scheme.conn_opts())
        PingPong(sim, senders[0], receivers[0].addr, RTT_PROBE_PORT, rtt_rec,
                 interval_s=probe_interval, start_at=0.0,
                 warmup_s=duration * 0.05, conn_opts=scheme.conn_opts())
    # Port 0 of sw-left is the inter-switch wire (dumbbell() links the
    # switches before any host), i.e. the forward bottleneck.
    tier = _couple(sim, topo.switches["sw-left"], 0, fluid_specs,
                   dt, inert_coupling, bg_start_at)
    sim.run(until=duration)
    result.tputs_bps = [f.bytes_acked * 8 / duration for f in result.flows]
    result.rtt_samples = rtt_rec.samples
    return _finish(result, topo, tier, obs)


def run_hybrid_incast(
    scheme: Scheme = DCTCP,
    n_senders: int = 8,
    background: Sequence[BackgroundFlowGroup] = (),
    duration: float = 0.4,
    mtu: int = 1500,
    rate_bps: float = 10e9,
    seed: int = 0,
    dt: float = HYBRID_DT_S,
    bg_start_at: float = 0.005,
    tier_mode: str = "auto",
    inert_coupling: bool = False,
    obs=None,
) -> RunResult:
    """N-to-1 packet incast (Fig. 18 shape) with fluid background
    pressing the same receiver port.

    The background shares the incast victims' bottleneck — the
    receiver's switch port — so the storm arrives at a buffer already
    under pressure, which is how incast happens in production.
    """
    router = TierRouter(tier_mode)
    pkt_groups, fluid_specs = router.route(background)
    pkt_flows = [group for group in pkt_groups for _ in range(group.n_flows)]
    sim = Simulator()
    topo, hosts, switch = star(
        sim, n_senders + len(pkt_flows) + 1, rate_bps=rate_bps, mtu=mtu,
        seed=seed, **switch_opts(scheme, rate_bps))
    receiver, senders = hosts[0], hosts[1:]
    if obs is not None:
        obs.bind(sim)
        obs.attach_topology(topo)
    vsw = attach_vswitches(scheme, hosts, obs=obs)
    result = RunResult(scheme=scheme.name, duration=duration, vswitches=vsw,
                       sim=sim, topology=topo)
    opts = scheme.conn_opts()
    Sink(receiver, DATA_PORT, **opts)
    storm_at = 0.01
    for i in range(n_senders):
        start = (i % 16) * 1e-4
        result.flows.append(BulkSender(
            sim, senders[i], receiver.addr, DATA_PORT,
            start_at=start, send_at=storm_at, conn_opts=dict(opts)))
    for j, group in enumerate(pkt_flows):
        gopts = {"cc": group.cc, "ecn": group.resolved_ect}
        Sink(receiver, DATA_PORT + 1 + j, **gopts)
        result.flows.append(BulkSender(
            sim, senders[n_senders + j], receiver.addr, DATA_PORT + 1 + j,
            conn_opts=dict(gopts)))
    # The receiver is the first host linked, so its switch port is 0.
    tier = _couple(sim, switch, 0, fluid_specs, dt, inert_coupling,
                   bg_start_at)
    sim.run(until=duration)
    result.tputs_bps = [f.bytes_acked * 8 / duration for f in result.flows]
    return _finish(result, topo, tier, obs)


def run(seed: int = 0, quick: bool = False) -> dict:
    """CLI entry: the stock hybrid dumbbell + incast, virtual metrics only."""
    duration = 0.05 if quick else 0.2
    out = {}
    for name, result in (
        ("dumbbell", run_hybrid_dumbbell(
            DCTCP, fg_pairs=1, background=DEFAULT_BACKGROUND,
            duration=duration, rate_bps=1e9, seed=seed)),
        ("incast", run_hybrid_incast(
            DCTCP, n_senders=4 if quick else 8,
            background=DEFAULT_BACKGROUND, duration=duration,
            rate_bps=1e9, seed=seed)),
    ):
        topo = result.topology
        fluid = result.fluid
        out[name] = {
            "scheme": result.scheme,
            "duration_s": result.duration,
            "fg_tputs_bps": result.tputs_bps,
            "drop_rate": result.drop_rate,
            "events_processed": result.sim.events_processed,
            "switch_tx_packets": sum(
                sw.total_tx_packets() for sw in topo.switches.values()),
            "fluid_delivered_bytes": sum(
                p["delivered_bytes"] for p in fluid.get("ports", ())),
            "fluid_marked_bytes": sum(
                p["marked_bytes"] for p in fluid.get("ports", ())),
            "fluid_lost_bytes": sum(
                p["wred_dropped_bytes"] + p["tail_lost_bytes"]
                for p in fluid.get("ports", ())),
        }
    return out
