"""Fig. 9: AC/DC's computed RWND tracks a native DCTCP CWND.

The host stack runs DCTCP; AC/DC runs in *log-only* mode (it computes a
window on every ACK but never rewrites the packet — the paper logs RWND
to a file instead of enforcing it).  Both window series are sampled and
compared: instantaneously (Fig. 9a) and as a 100 ms moving average
(Fig. 9b).  Close agreement shows congestion control can be faithfully
recreated in the vSwitch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import AcdcConfig
from ..metrics import WindowLogger, moving_average
from ..net.packet import mss_for_mtu
from ..obs import ObsContext, format_flow, write_jsonl
from .common import ACDC
from .runners import run_dumbbell


def resample(series: Sequence[Tuple[float, float]],
             times: Sequence[float]) -> List[float]:
    """Last-value-carried-forward resampling onto ``times``."""
    out: List[float] = []
    idx = 0
    last = series[0][1] if series else 0.0
    for t in times:
        while idx < len(series) and series[idx][0] <= t:
            last = series[idx][1]
            idx += 1
        out.append(last)
    return out


def run(duration: float = 1.0, mtu: int = 1500, seed: int = 0,
        trace: bool = False, trace_path: Optional[str] = None,
        quick: bool = False) -> Dict[str, object]:
    """Returns both window series (in MSS) plus tracking-error stats.

    With ``trace=True`` (implied by ``trace_path``) the run carries an
    :class:`~repro.obs.ObsContext`: every vSwitch window computation is
    on the bus as a ``rwnd.rewrite`` event and every guest CWND sample
    as a guest ``flow.state`` — the overlay the figure plots, replayable
    with ``python -m repro.obs timeline --flow <id> <trace>``.
    """
    if quick:
        duration = min(duration, 0.25)
    if trace_path is not None:
        trace = True
    mss = mss_for_mtu(mtu)
    acdc_log = WindowLogger()      # the vSwitch's computed RWND
    host_log = WindowLogger()      # the guest's CWND (tcpprobe equivalent)
    obs = ObsContext() if trace else None
    window_probe = host_log.probe
    if obs is not None:
        def window_probe(conn, _probe=host_log.probe, _obs=obs):
            _probe(conn)
            _obs.bus.emit("flow.state", flow=conn.key(), component="guest",
                          state="cwnd", cwnd_bytes=int(conn.cwnd))
    scheme = ACDC.with_host_cc("dctcp")
    r = run_dumbbell(
        scheme, pairs=5, duration=duration, mtu=mtu, seed=seed,
        acdc_config=AcdcConfig(log_only=True), rtt_probe=False,
        window_cb=acdc_log.acdc_callback, window_probe=window_probe,
        obs=obs)
    flow_key = r.flows[0].conn.key()
    rwnd_series = [(t, w / mss) for t, w in acdc_log.samples[flow_key]]
    cwnd_series = [(t, w / mss) for t, w in host_log.samples[flow_key]]
    # Tracking error on a common grid.
    n = 200
    times = [duration * 0.1 + i * duration * 0.85 / n for i in range(n)]
    rwnd_pts = resample(rwnd_series, times)
    cwnd_pts = resample(cwnd_series, times)
    abs_err = [abs(a - b) for a, b in zip(rwnd_pts, cwnd_pts)]
    rel_err = [e / max(b, 1e-9) for e, b in zip(abs_err, cwnd_pts)]
    out: Dict[str, object] = {
        "rwnd_series_mss": rwnd_series,
        "cwnd_series_mss": cwnd_series,
        "rwnd_ma100ms": moving_average(rwnd_series, 0.1),
        "cwnd_ma100ms": moving_average(cwnd_series, 0.1),
        "mean_abs_err_mss": sum(abs_err) / len(abs_err),
        "mean_rel_err": sum(rel_err) / len(rel_err),
        "mean_rwnd_mss": sum(rwnd_pts) / len(rwnd_pts),
        "mean_cwnd_mss": sum(cwnd_pts) / len(cwnd_pts),
    }
    if obs is not None:
        out["telemetry"] = r.telemetry
        out["trace_events"] = len(obs.bus.events)
        out["trace_flow"] = format_flow(flow_key)
        if trace_path is not None:
            out["trace_path"] = write_jsonl(obs.bus.records(), trace_path)
    return out
