"""Fig. 13: differentiated throughput via QoS-parameterised CC (Eq. 1).

Host stacks are all CUBIC; AC/DC enforces the priority-generalised DCTCP
with a per-flow ``beta`` picked from the figure's 4-point scale.  Flows
with equal beta should see equal throughput; higher beta, more
throughput; ``beta = 0`` flows back off to the 1-MSS floor.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core import FlowPolicy, PolicyEngine
from ..metrics import jain_index
from .common import ACDC
from .runners import run_dumbbell

#: The figure's experiments: per-flow beta numerators on a 4-point scale.
BETA_COMBOS: Tuple[Tuple[int, ...], ...] = (
    (2, 2, 2, 2, 2),
    (2, 2, 1, 1, 1),
    (2, 2, 2, 1, 1),
    (3, 2, 2, 1, 1),
    (3, 3, 2, 2, 1),
    (4, 4, 4, 0, 0),
)


def _policy_for(betas: Sequence[float]) -> PolicyEngine:
    engine = PolicyEngine()
    for i, beta in enumerate(betas):
        engine.add_rule(PolicyEngine.match_src(f"s{i + 1}"),
                        FlowPolicy(beta=beta))
    return engine


def run(combos: Sequence[Sequence[int]] = BETA_COMBOS,
        duration: float = 1.0, mtu: int = 9000, seed: int = 0) -> List[dict]:
    """Per-flow throughput for every beta combination of the figure."""
    rows: List[dict] = []
    for combo in combos:
        betas = [b / 4.0 for b in combo]
        r = run_dumbbell(ACDC, pairs=5, duration=duration, mtu=mtu,
                         seed=seed, policy=_policy_for(betas),
                         rtt_probe=False)
        gbps = [t / 1e9 for t in r.tputs_bps]
        # Within-class fairness: flows sharing a beta should match.
        by_beta: Dict[float, List[float]] = {}
        for beta, tput in zip(betas, gbps):
            by_beta.setdefault(beta, []).append(tput)
        class_fair = {
            beta: jain_index(v) for beta, v in by_beta.items() if len(v) > 1
        }
        class_means = {beta: sum(v) / len(v) for beta, v in by_beta.items()}
        ordered = sorted(class_means.items())
        monotonic = all(a[1] <= b[1] * 1.10 for a, b in zip(ordered, ordered[1:]))
        rows.append({
            "combo": "/".join(str(c) for c in combo) + "/4",
            "betas": betas,
            "tput_gbps": gbps,
            "class_means_gbps": class_means,
            "within_class_fairness": class_fair,
            "monotonic_in_beta": monotonic,
        })
    return rows
