"""Fig. 22: shuffle workload — mice and background FCT CDFs.

Every server sends a block to every other server in random order, at most
two transfers at a time, plus 16 KB mice to server *i+8* every 100 ms.
DCTCP and AC/DC cut mice FCTs sharply (median ~72%, tail 55–73%) while
large-transfer completion times stay comparable to CUBIC.

Scaling: 1 GbE links, 4 MB blocks (vs 512 MB at 10 GbE), a single
shuffle round instead of 30 repetitions.
"""

from __future__ import annotations

from typing import Dict

from ..metrics import FctRecorder
from ..net.topology import star
from ..sim import Simulator
from ..sim.rng import RngFactory
from ..workloads.generators import Shuffle
from .common import ALL_SCHEMES, Scheme, attach_vswitches, switch_opts


def run_scheme(scheme: Scheme, hosts_n: int = 17, duration: float = 1.0,
               block_bytes: int = 4 * 1024 * 1024,
               mtu: int = 9000, rate_bps: float = 1e9, seed: int = 0) -> dict:
    """One scheme's shuffle run: mice and block FCTs."""
    sim = Simulator()
    topo, hosts, switch = star(sim, hosts_n, rate_bps=rate_bps, mtu=mtu,
                               seed=seed, **switch_opts(scheme, rate_bps))
    attach_vswitches(scheme, hosts)
    recorder = FctRecorder()
    shuffle = Shuffle(
        sim, hosts, recorder, block_bytes=block_bytes,
        rng=RngFactory(seed).stream("fig22.shuffle-order"), fanout=2,
        mice_bytes=16 * 1024, mice_interval=0.1, mice_until=duration * 0.6,
        conn_opts=scheme.conn_opts())
    sim.run(until=duration)
    return {
        "mice_fcts": recorder.fcts("mice"),
        "background_fcts": recorder.fcts("background"),
        "mice_done": recorder.completion_fraction("mice"),
        "background_done": recorder.completion_fraction("background"),
        "shuffle_finished": shuffle.finished(),
        "drop_rate_pct": 100.0 * switch.drop_rate(),
    }


def run(duration: float = 1.0, seed: int = 0) -> Dict[str, dict]:
    """The shuffle workload for all three schemes."""
    return {s.name: run_scheme(s, duration=duration, seed=seed)
            for s in ALL_SCHEMES}
