"""Fig. 22: shuffle workload — mice and background FCT CDFs.

Every server sends a block to every other server in random order, at most
two transfers at a time, plus 16 KB mice to server *i+8* every 100 ms.
DCTCP and AC/DC cut mice FCTs sharply (median ~72%, tail 55–73%) while
large-transfer completion times stay comparable to CUBIC.

Scaling: 1 GbE links, 4 MB blocks (vs 512 MB at 10 GbE), a single
shuffle round instead of 30 repetitions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..metrics import FctRecorder
from ..net.topology import star
from ..sim import Simulator
from ..runtime import RunSpec, Runtime
from ..sim.rng import RngFactory
from ..workloads.generators import Shuffle
from .common import ALL_SCHEMES, SCHEME_BY_NAME, Scheme, attach_vswitches, switch_opts


def run_scheme(scheme: Scheme, hosts_n: int = 17, duration: float = 1.0,
               block_bytes: int = 4 * 1024 * 1024,
               mtu: int = 9000, rate_bps: float = 1e9, seed: int = 0) -> dict:
    """One scheme's shuffle run: mice and block FCTs."""
    sim = Simulator()
    topo, hosts, switch = star(sim, hosts_n, rate_bps=rate_bps, mtu=mtu,
                               seed=seed, **switch_opts(scheme, rate_bps))
    attach_vswitches(scheme, hosts)
    recorder = FctRecorder()
    shuffle = Shuffle(
        sim, hosts, recorder, block_bytes=block_bytes,
        rng=RngFactory(seed).stream("fig22.shuffle-order"), fanout=2,
        mice_bytes=16 * 1024, mice_interval=0.1, mice_until=duration * 0.6,
        conn_opts=scheme.conn_opts())
    sim.run(until=duration)
    return {
        "mice_fcts": recorder.fcts("mice"),
        "background_fcts": recorder.fcts("background"),
        "mice_done": recorder.completion_fraction("mice"),
        "background_done": recorder.completion_fraction("background"),
        "shuffle_finished": shuffle.finished(),
        "drop_rate_pct": 100.0 * switch.drop_rate(),
    }


def _cell(scheme: str, duration: float, seed: int) -> dict:
    """Runtime worker: one (scheme, seed) shuffle run, JSON kwargs only."""
    return run_scheme(SCHEME_BY_NAME[scheme], duration=duration, seed=seed)


def run(duration: float = 1.0, seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        runtime: Optional[Runtime] = None) -> Dict[str, object]:
    """The shuffle workload for all three schemes.

    With ``seeds`` each (scheme, seed) run fans through the experiment
    runtime and the merge returns
    ``{"seeds": [...], "per_seed": [<single-seed shape>, ...]}``.
    """
    rt = runtime if runtime is not None else Runtime()
    seed_list = [seed] if seeds is None else list(seeds)
    specs = [RunSpec(f"{__name__}:_cell",
                     {"scheme": s.name, "duration": duration, "seed": sd})
             for sd in seed_list for s in ALL_SCHEMES]
    flat = rt.map(specs)
    per_seed = [
        {s.name: flat[k * len(ALL_SCHEMES) + j]
         for j, s in enumerate(ALL_SCHEMES)}
        for k in range(len(seed_list))
    ]
    if seeds is None:
        return per_seed[0]
    return {"seeds": seed_list, "per_seed": per_seed}
