"""Fig. 8 (+ the §5.1 'canonical topologies' numbers): dumbbell RTT CDF.

One long-lived flow per server pair; CUBIC fills the buffer (milliseconds
of queueing) while DCTCP and AC/DC keep RTTs in the ~100 µs range.  Also
reports the per-flow throughputs (all three schemes achieve the same
~2 Gb/s fair share on this topology).
"""

from __future__ import annotations

from typing import Dict

from .common import ALL_SCHEMES
from .runners import run_dumbbell


def run(duration: float = 1.0, mtu: int = 9000, seed: int = 0) -> Dict[str, dict]:
    """RTT samples, throughput and fairness for all three schemes."""
    out: Dict[str, dict] = {}
    for scheme in ALL_SCHEMES:
        r = run_dumbbell(scheme, pairs=5, duration=duration, mtu=mtu, seed=seed)
        out[scheme.name] = {
            "rtt_samples": r.rtt_samples,
            "rtt": r.rtt_summary(),
            "tput_gbps": [t / 1e9 for t in r.tputs_bps],
            "avg_tput_gbps": r.avg_tput_bps / 1e9,
            "fairness": r.fairness,
            "drop_rate": r.drop_rate,
        }
    return out
