"""Table 1: AC/DC works with many guest congestion-control variants.

Rows: CUBIC* (host CUBIC, plain OVS, no switch ECN) and DCTCP* (host
DCTCP, plain OVS, ECN on) baselines, then six guest stacks — CUBIC, Reno,
DCTCP, Illinois, HighSpeed, Vegas — each running under AC/DC.  Columns:
50th/99th percentile RTT, average throughput, Jain fairness, for both
MTUs.  The paper's claim: every AC/DC row tracks DCTCP*.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..metrics import percentile
from .common import ACDC, CUBIC, DCTCP
from .runners import run_dumbbell

ACDC_GUESTS = ("cubic", "reno", "dctcp", "illinois", "highspeed", "vegas")


def _row(name: str, result) -> dict:
    rtt = result.rtt_samples
    return {
        "variant": name,
        "rtt_p50_us": percentile(rtt, 50) * 1e6 if rtt else float("nan"),
        "rtt_p99_us": percentile(rtt, 99) * 1e6 if rtt else float("nan"),
        "avg_tput_gbps": result.avg_tput_bps / 1e9,
        "fairness": result.fairness,
    }


def run(mtus: Sequence[int] = (1500, 9000), duration: float = 1.0,
        seed: int = 0, guests: Sequence[str] = ACDC_GUESTS) -> Dict[int, List[dict]]:
    """Table 1 rows for each MTU: baselines + every guest under AC/DC."""
    out: Dict[int, List[dict]] = {}
    for mtu in mtus:
        rows: List[dict] = []
        rows.append(_row("CUBIC*", run_dumbbell(
            CUBIC, duration=duration, mtu=mtu, seed=seed)))
        rows.append(_row("DCTCP*", run_dumbbell(
            DCTCP, duration=duration, mtu=mtu, seed=seed)))
        for guest in guests:
            scheme = ACDC.with_host_cc(guest)
            rows.append(_row(f"AC/DC({guest})", run_dumbbell(
                scheme, duration=duration, mtu=mtu, seed=seed)))
        out[mtu] = rows
    return out
