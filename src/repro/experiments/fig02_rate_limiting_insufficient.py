"""Fig. 2: per-flow rate limiting alone does not control latency.

Five CUBIC flows, each rate-limited to its "perfect" 2 Gb/s share, still
fill the drop-tail switch buffer and inflate RTTs; five unlimited DCTCP
flows keep the queue (and RTT) low.  This motivates enforcing *congestion
control*, not just bandwidth allocation (§2.3).
"""

from __future__ import annotations

from typing import Dict

from .common import CUBIC, DCTCP
from .runners import run_dumbbell


def run(duration: float = 1.0, mtu: int = 9000,
        per_flow_limit_bps: float = 2e9, seed: int = 0) -> Dict[str, dict]:
    """Returns RTT samples for rate-limited CUBIC vs unlimited DCTCP."""
    cubic_rl = run_dumbbell(
        CUBIC, pairs=5, duration=duration, mtu=mtu, seed=seed,
        pacing_rate_bps=per_flow_limit_bps)
    dctcp = run_dumbbell(DCTCP, pairs=5, duration=duration, mtu=mtu, seed=seed)
    return {
        "cubic_rl2g": {
            "rtt_samples": cubic_rl.rtt_samples,
            "rtt": cubic_rl.rtt_summary(),
            "tput_gbps": [t / 1e9 for t in cubic_rl.tputs_bps],
        },
        "dctcp": {
            "rtt_samples": dctcp.rtt_samples,
            "rtt": dctcp.rtt_summary(),
            "tput_gbps": [t / 1e9 for t in dctcp.tputs_bps],
        },
    }
