"""Fig. 6: bounding RWND controls throughput exactly like bounding CWND.

One flow on an uncongested path.  The CWND series clamps the host stack
(Linux's ``snd_cwnd_clamp``); the RWND series leaves the host unclamped
and instead caps AC/DC's enforced window (``FlowPolicy.max_rwnd``).  The
two curves should coincide: linear in the clamp until the line rate, then
flat.  The paper uses the resulting curve to convert a desired bandwidth
cap into a maximum RWND (§3.4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import FlowPolicy, PolicyEngine
from ..net.packet import mss_for_mtu
from .common import ACDC, CUBIC
from .runners import run_dumbbell

#: Sweep points (in MSS) roughly matching the paper's x-axes.
CLAMPS_1500 = (2, 5, 10, 20, 40, 80, 120, 180, 250)
CLAMPS_9000 = (1, 2, 3, 4, 6, 8, 10, 12, 16)


def clamps_for_mtu(mtu: int) -> Sequence[int]:
    """The figure's x-axis points for the given MTU."""
    return CLAMPS_9000 if mtu >= 9000 else CLAMPS_1500


def run(mtu: int = 9000, duration: float = 0.3, seed: int = 0) -> Dict[str, List[dict]]:
    """Returns (clamp_mss, throughput) series for both clamping mechanisms."""
    mss = mss_for_mtu(mtu)
    cwnd_series: List[dict] = []
    rwnd_series: List[dict] = []
    for clamp in clamps_for_mtu(mtu):
        # CWND clamp in the host stack, plain OVS.
        r = run_dumbbell(CUBIC, pairs=1, duration=duration, mtu=mtu,
                         seed=seed, max_cwnd=clamp * mss, rtt_probe=False)
        cwnd_series.append({"clamp_mss": clamp,
                            "tput_gbps": r.tputs_bps[0] / 1e9})
        # RWND clamp in AC/DC.
        policy = PolicyEngine(default=FlowPolicy(max_rwnd=clamp * mss))
        r = run_dumbbell(ACDC, pairs=1, duration=duration, mtu=mtu,
                         seed=seed, policy=policy, rtt_probe=False)
        rwnd_series.append({"clamp_mss": clamp,
                            "tput_gbps": r.tputs_bps[0] / 1e9})
    return {"cwnd": cwnd_series, "rwnd": rwnd_series}
