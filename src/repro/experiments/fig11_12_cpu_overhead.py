"""Fig. 11/12: CPU overhead of AC/DC vs baseline OVS, sender & receiver.

Two servers on one switch; N concurrent TCP connections each demand
10 Mb/s by sending 128 KB bursts every 100 ms (1,000 connections saturate
the 10 G link).  The testbed measures system-wide CPU with ``sar``; here
the datapaths record their per-packet operations and
:mod:`repro.metrics.cpu_model` prices them (see DESIGN.md for the
substitution).  The claim under test is the *difference*: AC/DC adds less
than one percentage point at every connection count.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..metrics.cpu_model import (
    RECEIVER_CONN_TICK_NS,
    RECEIVER_FLOOR_PERCENT,
    SENDER_CONN_TICK_NS,
    SENDER_FLOOR_PERCENT,
    cpu_percent,
)
from ..net.topology import star
from ..sim import Simulator
from ..workloads.apps import Sink
from .common import ACDC, CUBIC, Scheme, attach_vswitches, switch_opts

BURST_BYTES = 128 * 1024
BURST_INTERVAL = 0.1
CONNECTION_COUNTS = (100, 500, 1000, 5000, 10000)


class _BurstApp:
    """One connection sending 128 KB every 100 ms (10 Mb/s demand)."""

    def __init__(self, sim: Simulator, host, dst: str, port: int,
                 start_at: float, conn_opts: dict):
        self.sim = sim
        self.conn = None
        self._host = host
        self._dst = dst
        self._port = port
        self._opts = conn_opts
        sim.schedule_at(start_at, self._start)

    def _start(self) -> None:
        self.conn = self._host.connect(self._dst, self._port, **self._opts)
        self.conn.on_established = self._burst

    def _burst(self) -> None:
        self.conn.send(BURST_BYTES)
        self.sim.schedule(BURST_INTERVAL, self._burst)


def _run_one(scheme: Scheme, connections: int, duration: float,
             mtu: int, rate_bps: float, seed: int) -> Dict[str, object]:
    sim = Simulator()
    topo, hosts, _sw = star(sim, 2, rate_bps=rate_bps, mtu=mtu, seed=seed,
                            **switch_opts(scheme, rate_bps))
    sender, receiver = hosts
    vsw = attach_vswitches(scheme, hosts)
    Sink(receiver, 5000, **scheme.conn_opts())
    for i in range(connections):
        # Stagger setup and burst phases across the interval.
        _BurstApp(sim, sender, receiver.addr, 5000,
                  start_at=(i / connections) * BURST_INTERVAL,
                  conn_opts=scheme.conn_opts())
    sim.run(until=duration)
    floors = {"sender": SENDER_FLOOR_PERCENT, "receiver": RECEIVER_FLOOR_PERCENT}
    ticks = {"sender": SENDER_CONN_TICK_NS, "receiver": RECEIVER_CONN_TICK_NS}
    reports = {}
    for side, host in (("sender", sender), ("receiver", receiver)):
        ops = vsw[host.addr].ops
        report = cpu_percent(
            ops.snapshot(), tx_packets=host.tx_packets,
            rx_packets=host.rx_packets, tx_bytes=host.tx_bytes,
            rx_bytes=host.rx_bytes, connections=connections,
            duration_s=duration, floor_percent=floors[side],
            conn_tick_ns=ticks[side])
        packets = ops.packets_egress + ops.packets_ingress
        reports[side] = {"report": report, "packets": packets}
    return reports


def run(counts: Sequence[int] = CONNECTION_COUNTS, duration: float = 0.25,
        mtu: int = 1500, rate_bps: float = 10e9, seed: int = 0) -> List[dict]:
    """Returns rows: per connection count, baseline vs AC/DC CPU%."""
    rows: List[dict] = []
    for n in counts:
        baseline = _run_one(CUBIC, n, duration, mtu, rate_bps, seed)
        acdc = _run_one(ACDC, n, duration, mtu, rate_bps, seed)
        row = {"connections": n}
        for side in ("sender", "receiver"):
            base = baseline[side]["report"]
            over = acdc[side]["report"]
            row[f"{side}_baseline_pct"] = base.total_percent
            # AC/DC's enforcement slightly changes how much traffic each
            # run delivers at saturation, so the datapath comparison is
            # normalised to the baseline's packet volume (the delta the
            # paper's claim is about is vSwitch work *per packet*).
            scale = (baseline[side]["packets"] / acdc[side]["packets"]
                     if acdc[side]["packets"] else 1.0)
            datapath_delta = (over.datapath_percent * scale
                              - base.datapath_percent)
            row[f"{side}_acdc_pct"] = base.total_percent + datapath_delta
            row[f"{side}_delta_pp"] = datapath_delta
        rows.append(row)
    return rows
