"""Shared experiment plumbing.

Every experiment in §5 compares (a subset of) three configurations:

* **CUBIC** — host CUBIC, plain OVS, switch WRED/ECN *off*;
* **DCTCP** — host DCTCP (ECN on), plain OVS, switch WRED/ECN *on*;
* **AC/DC** — host stack varies (CUBIC unless stated), AC/DC in the
  vSwitch, switch WRED/ECN *on*.

:class:`Scheme` captures one such configuration; :func:`attach_vswitches`
instantiates the right datapath on every host.  The scaling constants at
the bottom centralise the simulator's time/size scaling so EXPERIMENTS.md
can cite one place.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional

from ..core import AcdcConfig, AcdcVswitch, PlainOvs, PolicyEngine
from ..core.ops import OpsCounter
from ..net.host import Host

# ---------------------------------------------------------------------------
# Scheme definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scheme:
    """One end-to-end configuration of host stack + vSwitch + switch ECN."""

    name: str
    host_cc: str = "cubic"
    host_ecn: bool = False
    vswitch: str = "plain"        # "plain" | "acdc"
    switch_ecn: bool = False

    def conn_opts(self) -> dict:
        """Connection options for guest endpoints under this scheme."""
        return {"cc": self.host_cc, "ecn": self.host_ecn}

    def with_host_cc(self, cc: str, ecn: Optional[bool] = None) -> "Scheme":
        """Same datapath, different guest stack (Table 1 rows)."""
        if ecn is None:
            ecn = cc == "dctcp"
        return replace(self, name=f"{self.name}+{cc}", host_cc=cc, host_ecn=ecn)


#: The paper's three baseline configurations (§5 "Experiment details").
CUBIC = Scheme("cubic", host_cc="cubic", host_ecn=False,
               vswitch="plain", switch_ecn=False)
DCTCP = Scheme("dctcp", host_cc="dctcp", host_ecn=True,
               vswitch="plain", switch_ecn=True)
ACDC = Scheme("acdc", host_cc="cubic", host_ecn=False,
              vswitch="acdc", switch_ecn=True)

ALL_SCHEMES = (CUBIC, DCTCP, ACDC)

#: Name -> Scheme, for the runtime's process-pool workers: a run spec's
#: kwargs must be plain JSON, so cells reference schemes by name and
#: re-resolve them here (see repro.runtime.spec).
SCHEME_BY_NAME = {s.name: s for s in ALL_SCHEMES}


def attach_vswitches(
    scheme: Scheme,
    hosts: Iterable[Host],
    acdc_config: Optional[AcdcConfig] = None,
    policy: Optional[PolicyEngine] = None,
    window_cb=None,
    guard_factory=None,
    obs=None,
) -> Dict[str, object]:
    """Instantiate the scheme's datapath on every host.

    ``guard_factory``, if given, is called per AC/DC host and returns a
    fresh :class:`repro.guard.Guard` (or None) to attach to that host's
    vSwitch — a Guard binds to exactly one datapath.  ``obs``, if given,
    is the run's :class:`repro.obs.ObsContext`; each AC/DC vSwitch
    registers with it and traces onto its bus.

    Returns ``{host addr: vswitch}`` so experiments can read flow tables,
    op counters and enforcement stats afterwards.
    """
    out: Dict[str, object] = {}
    for host in hosts:
        if scheme.vswitch == "acdc":
            config = acdc_config if acdc_config is not None else AcdcConfig()
            guard = guard_factory(host) if guard_factory is not None else None
            vsw = AcdcVswitch(host, config=config, policy=policy,
                              ops=OpsCounter(), window_cb=window_cb,
                              guard=guard, obs=obs)
        else:
            vsw = PlainOvs(host, ops=OpsCounter())
        host.attach_vswitch(vsw)
        out[host.addr] = vsw
    return out


# ---------------------------------------------------------------------------
# Scaling constants (substitutions relative to the testbed; see DESIGN.md §5
# and the per-experiment notes in EXPERIMENTS.md)
# ---------------------------------------------------------------------------

#: Microbenchmarks run at the testbed's line rate.
MICRO_RATE = 10e9
#: Macrobenchmarks (17-host star, all-to-all patterns) run at 1 GbE so a
#: Python simulator can cover them; the marking threshold scales with rate.
MACRO_RATE = 1e9
#: DCTCP marking threshold at 10 G (K = 65 1.5 KB frames, §2.1 of DCTCP).
K_BYTES_10G = 65 * 1500
#: At 1 G the DCTCP guidance is K ≈ 20 frames.
K_BYTES_1G = 20 * 1500

#: Virtual-time budget for "long-lived" microbenchmark flows (the paper
#: runs 20 s x 10 repetitions; shape converges within a second here).
MICRO_DURATION = 1.0
#: Repetitions for the run-to-run variation figures (paper: 10).
MICRO_RUNS = 5


def k_bytes_for_rate(rate_bps: float) -> int:
    """Marking threshold matched to the link rate (testbed guidance)."""
    if rate_bps >= 5e9:
        return K_BYTES_10G
    return K_BYTES_1G


def switch_opts(scheme: Scheme, rate_bps: float = MICRO_RATE) -> dict:
    """kwargs for the topology builders' switches under this scheme."""
    return {
        "ecn_enabled": scheme.switch_ecn,
        "ecn_threshold_bytes": k_bytes_for_rate(rate_bps),
    }
