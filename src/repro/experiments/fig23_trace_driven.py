"""Fig. 23: trace-driven workloads — mice FCT CDFs.

Per server, five applications each hold a long-lived connection to a
random peer and send messages back-to-back, sizes sampled from the
web-search [3] or data-mining [25] flow-size distribution.  The figure
reports the FCT CDF of mice (< 10 KB) flows; DCTCP and AC/DC cut the
median by ~72–77% and the 99.9th percentile by 36–55%.

Scaling: 1 GbE links and distribution sizes scaled by 0.05 with a 2 MB
cap (the mice region of the CDF is untouched by the cap; only elephant
tails shrink).
"""

from __future__ import annotations

from typing import Dict

from ..metrics import FctRecorder
from ..net.topology import star
from ..sim import Simulator
from ..sim.rng import RngFactory
from ..workloads.generators import TraceDriven
from ..workloads.traces import FlowSizeDistribution, data_mining, web_search
from .common import ALL_SCHEMES, Scheme, attach_vswitches, switch_opts

SIZE_SCALE = 0.05
SIZE_CAP = 2 * 1024 * 1024


def run_scheme(scheme: Scheme, distribution: FlowSizeDistribution,
               hosts_n: int = 17, duration: float = 1.5,
               apps_per_host: int = 5, messages_per_app: int = 15,
               mtu: int = 9000, rate_bps: float = 1e9, seed: int = 0) -> dict:
    """One scheme's trace-driven run: mice/elephant FCTs."""
    sim = Simulator()
    topo, hosts, switch = star(sim, hosts_n, rate_bps=rate_bps, mtu=mtu,
                               seed=seed, **switch_opts(scheme, rate_bps))
    attach_vswitches(scheme, hosts)
    recorder = FctRecorder()
    TraceDriven(sim, hosts, recorder, distribution,
                rng=RngFactory(seed).stream("fig23.trace-apps"),
                apps_per_host=apps_per_host,
                messages_per_app=messages_per_app,
                conn_opts=scheme.conn_opts())
    sim.run(until=duration)
    return {
        "mice_fcts": recorder.fcts("mice"),
        "elephant_fcts": recorder.fcts("elephant"),
        "mice_done": recorder.completion_fraction("mice"),
        "drop_rate_pct": 100.0 * switch.drop_rate(),
    }


def run(duration: float = 1.5, seed: int = 0) -> Dict[str, Dict[str, dict]]:
    """Both trace workloads (web-search, data-mining), all schemes."""
    out: Dict[str, Dict[str, dict]] = {}
    for workload, dist_factory in (("web-search", web_search),
                                   ("data-mining", data_mining)):
        dist = dist_factory(scale=SIZE_SCALE, max_bytes=SIZE_CAP)
        out[workload] = {
            s.name: run_scheme(s, dist, duration=duration, seed=seed)
            for s in ALL_SCHEMES
        }
    return out
