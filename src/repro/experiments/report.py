"""Plain-text reporting: the tables and series the paper prints.

Benchmarks tee these through pytest's output so a run of
``pytest benchmarks/`` regenerates every figure's data as text — the
honest equivalent of the paper's plots for a library without a plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table; floats get 3 significant decimals."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cdf(samples: Sequence[float], label: str,
               points: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90,
                                          0.95, 0.99, 0.999),
               unit: str = "", scale: float = 1.0) -> str:
    """A CDF rendered as its key quantiles (what the plots communicate)."""
    from ..metrics.stats import percentile

    if not samples:
        return f"{label}: (no samples)"
    parts = [f"{label} (n={len(samples)}):"]
    for p in points:
        value = percentile(samples, p * 100.0) * scale
        parts.append(f"  p{p * 100:g}={value:.3f}{unit}")
    return "".join(parts)


def format_series(series: Sequence[Tuple[float, float]], label: str,
                  every: int = 1, scale: float = 1.0, unit: str = "") -> str:
    """A (time, value) series as compact text, optionally downsampled."""
    chosen = list(series)[::max(every, 1)]
    body = " ".join(f"{t:.3f}:{v * scale:.2f}{unit}" for t, v in chosen)
    return f"{label}: {body}"
