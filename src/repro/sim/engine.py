"""Discrete-event simulation engine.

The engine is a classic calendar built on a binary heap.  Everything in the
reproduction (links, switches, TCP endpoints, the AC/DC vSwitch datapath,
applications) schedules callbacks against a single :class:`Simulator`
instance, which owns the virtual clock.

Design notes
------------
* Virtual time is a ``float`` measured in **seconds**.  Datacenter
  experiments span microseconds (propagation) to seconds (flow lifetimes);
  double precision holds ~15 significant digits which is far more than the
  nanosecond resolution the paper's testbed could observe.
* The heap stores ``(time, sequence, Event)`` tuples so ordering is
  resolved by C-level tuple comparison (a hot path: a 10 G link moves
  ~10^5 packets per simulated second and each takes several events).
  Events scheduled for the same instant fire in insertion order, making
  runs fully deterministic for a fixed seed.
* Cancellation is O(1): an :class:`Event` is flagged dead and skipped when
  it surfaces — the standard lazy-deletion trick, which keeps timers
  (per-flow RTOs, garbage collectors, inactivity timers) cheap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances are handed back to callers so they can :meth:`cancel` the
    event (e.g. a retransmission timer defused by an ACK).
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call more than once."""
        self.cancelled = True
        # Drop references early; a cancelled RTO timer otherwise pins its
        # connection (and every buffered segment) until it surfaces.
        self.fn = _noop
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {state}>"


def _noop(*_args: Any) -> None:
    """Replacement callback for cancelled events."""


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


class Simulator:
    """Single-threaded discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, hello)          # relative delay
        sim.schedule_at(2.0, goodbye)     # absolute time
        sim.run(until=10.0)
    """

    def __init__(self, strict: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0
        # Sanitizer tripwire: scheduling in the past is *always* a hard
        # error (see schedule_at); strict mode additionally audits every
        # popped event against the clock, catching Event.time mutations
        # and heap-discipline bugs that the scheduling check cannot see.
        if strict is None:
            from ..analysis.sanitize import is_enabled  # lazy: no cycle
            strict = is_enabled()
        self._strict = strict

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock is already at {self.now!r}"
            )
        event = Event(time, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` passes, or
        ``max_events`` callbacks have fired.

        ``until`` is inclusive: events scheduled exactly at ``until`` run,
        and the clock is left at ``until`` even if the queue drained early,
        so throughput denominators are well-defined.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        processed = 0
        try:
            while heap:
                time, _seq, event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(heap)
                if self._strict and time < self.now:
                    raise SimulationError(
                        f"event surfaced at {time!r} behind the clock "
                        f"{self.now!r} (mutated Event.time?)")
                self.now = time
                event.fn(*event.args)
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False if queue is empty."""
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if self._strict and time < self.now:
                raise SimulationError(
                    f"event surfaced at {time!r} behind the clock "
                    f"{self.now!r} (mutated Event.time?)")
            self.now = time
            event.fn(*event.args)
            self.events_processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if drained."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, e in self._heap if not e.cancelled)

    def clear(self) -> None:
        """Drop every pending event (used between experiment repetitions)."""
        for _t, _s, event in self._heap:
            event.cancel()
        self._heap.clear()
