"""Discrete-event simulation engine.

The engine is a classic calendar built on a binary heap.  Everything in the
reproduction (links, switches, TCP endpoints, the AC/DC vSwitch datapath,
applications) schedules callbacks against a single :class:`Simulator`
instance, which owns the virtual clock.

Design notes
------------
* Virtual time is a ``float`` measured in **seconds**.  Datacenter
  experiments span microseconds (propagation) to seconds (flow lifetimes);
  double precision holds ~15 significant digits which is far more than the
  nanosecond resolution the paper's testbed could observe.
* The heap stores ``(time, sequence, Event)`` tuples so ordering is
  resolved by C-level tuple comparison (a hot path: a 10 G link moves
  ~10^5 packets per simulated second and each takes several events).
  Events scheduled for the same instant fire in insertion order, making
  runs fully deterministic for a fixed seed.
* Cancellation is O(1): an :class:`Event` is flagged dead and skipped when
  it surfaces — the standard lazy-deletion trick, which keeps timers
  (per-flow RTOs, garbage collectors, inactivity timers) cheap.
* Two allocation-pressure valves sit behind the lazy deletion (see
  DESIGN.md §10):

  - when cancelled corpses exceed half the heap the heap is compacted in
    one O(n) pass (``heap_compactions`` counts these), so a timer-churny
    workload cannot grow the calendar without bound;
  - fired/cancelled :class:`Event` objects are recycled through a small
    free-list instead of being reallocated, but **only** when the engine
    holds the last reference (checked via ``sys.getrefcount``) — a
    caller-held handle is never recycled, so a stale ``cancel()`` can
    never kill an unrelated later event.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, List, Optional, Tuple

#: Compact the heap only once at least this many cancelled events are
#: buried in it (small heaps are not worth an O(n) pass) ...
COMPACT_MIN_CANCELLED = 64
#: ... and only when corpses make up at least this fraction of the heap.
COMPACT_FRACTION = 0.5

#: Upper bound on recycled Event objects retained between schedules.
FREELIST_MAX = 4096

#: ``sys.getrefcount(obj)`` when the run loop's local binding is the sole
#: remaining reference: one for the local, one for the getrefcount argument.
_ONLY_ENGINE_REFS = 2


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances are handed back to callers so they can :meth:`cancel` the
    event (e.g. a retransmission timer defused by an ACK).
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in its simulator's heap, so
        # cancel() can keep the corpse count exact; cleared when popped.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references early; a cancelled RTO timer otherwise pins its
        # connection (and every buffered segment) until it surfaces.
        self.fn = _noop
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._cancelled_pending += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {state}>"


def _noop(*_args: Any) -> None:
    """Replacement callback for cancelled events."""


class PeriodicSource:
    """Fixed-interval batch event source.

    One calendar event per tick regardless of how much work the callback
    batches behind it — the packet tier pays several events per packet
    per hop, while a periodic source amortizes an entire tier's timestep
    (e.g. every fluid background flow in ``repro.fluid``) into a single
    pop.  Tick times are computed from the start time and tick count
    (``start + n*interval``), not by accumulating ``now + interval``, so
    a million ticks cannot drift off the grid and two sources with the
    same phase stay aligned forever.

    Created via :meth:`Simulator.schedule_periodic`; :meth:`stop` cancels
    the pending tick and prevents rescheduling.  Instances hold only
    picklable state (a bound method reaches the heap), so a checkpointed
    run carrying a periodic source restores and resumes on-grid.
    """

    __slots__ = ("sim", "interval", "fn", "start_at", "ticks", "stopped",
                 "_pending")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[[], Any], start_at: Optional[float] = None):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, "
                                  f"got {interval!r}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.start_at = sim.now if start_at is None else start_at
        if self.start_at < sim.now:
            raise SimulationError(
                f"cannot start periodic source at {self.start_at!r}, "
                f"clock is already at {sim.now!r}")
        self.ticks = 0
        self.stopped = False
        self._pending: Optional[Event] = sim.schedule_at(
            self.start_at, self._fire)

    def _fire(self) -> None:
        self._pending = None
        self.ticks += 1
        self.fn()
        if not self.stopped:
            self._pending = self.sim.schedule_at(
                self.start_at + self.ticks * self.interval, self._fire)

    def stop(self) -> None:
        """Cancel the pending tick; safe to call more than once."""
        self.stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


class Simulator:
    """Single-threaded discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, hello)          # relative delay
        sim.schedule_at(2.0, goodbye)     # absolute time
        sim.run(until=10.0)
    """

    def __init__(self, strict: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0
        #: Cancelled events still buried in the heap (lazy deletion debt).
        self._cancelled_pending = 0
        #: Times the calendar was compacted to shed cancelled corpses.
        self.heap_compactions = 0
        self._free: List[Event] = []
        # Sanitizer tripwire: scheduling in the past is *always* a hard
        # error (see schedule_at); strict mode additionally audits every
        # popped event against the clock, catching Event.time mutations
        # and heap-discipline bugs that the scheduling check cannot see.
        if strict is None:
            from ..analysis.sanitize import is_enabled  # lazy: no cycle
            strict = is_enabled()
        self._strict = strict

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the heap sequence counter)."""
        return self._seq

    # ------------------------------------------------------------------
    # Checkpoint support (repro.recovery)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle the calendar: clock, heap (with its exact (time, seq)
        ordering), counters and the strict flag — everything a restored
        run needs to replay identically.  The free-list is dropped: it
        holds only dead recycled corpses, which are an allocation
        optimisation, not simulation state.
        """
        if self._running:
            raise SimulationError(
                "cannot checkpoint a Simulator from inside run() — "
                "snapshot at an epoch boundary instead")
        state = self.__dict__.copy()
        state["_free"] = []
        return state

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock is already at {self.now!r}"
            )
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
            event._sim = self
        else:
            event = Event(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        cancelled = self._cancelled_pending
        if (cancelled >= COMPACT_MIN_CANCELLED
                and cancelled >= COMPACT_FRACTION * len(self._heap)):
            self._compact()
        return event

    def schedule_periodic(self, interval: float, fn: Callable[[], Any],
                          start_at: Optional[float] = None) -> PeriodicSource:
        """Install a :class:`PeriodicSource` firing ``fn()`` every
        ``interval`` seconds from ``start_at`` (default: now)."""
        return PeriodicSource(self, interval, fn, start_at=start_at)

    def _compact(self) -> None:
        """Rebuild the heap without cancelled corpses (one O(n) pass).

        (time, seq) pairs are preserved, so relative ordering — and with
        it determinism — is unaffected.  The rebuild is **in place**
        (slice assignment): ``run()`` holds a local alias of the heap
        list, so rebinding ``self._heap`` would orphan the running loop.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_pending = 0
        self.heap_compactions += 1

    def _recycle(self, event: Event) -> None:
        """Offer a popped event to the free-list; keep it out of callers'
        hands by recycling only when the engine holds the last reference."""
        if (len(self._free) < FREELIST_MAX
                and sys.getrefcount(event) == _ONLY_ENGINE_REFS + 1):
            # +1: the binding inside this helper adds one reference.
            event.fn = _noop
            event.args = ()
            event._sim = None
            self._free.append(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` passes, or
        ``max_events`` callbacks have fired.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        The clock is left at ``until`` when the time bound was genuinely
        reached (queue drained early, or only later events remain) — but
        **not** when a ``max_events`` break exits with events still due at
        or before ``until``; fast-forwarding past pending events would let
        a subsequent ``run()`` execute them behind the clock.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # Local bindings for the hot loop: each pop otherwise pays several
        # attribute/global lookups, which dominates at ~10^6 events/s.
        heap = self._heap
        heappop = heapq.heappop
        getrefcount = sys.getrefcount
        freelist = self._free
        freelist_append = freelist.append
        strict = self._strict
        processed = 0
        try:
            while heap:
                time, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    self._cancelled_pending -= 1
                    if (len(freelist) < FREELIST_MAX
                            and getrefcount(event) == _ONLY_ENGINE_REFS):
                        event._sim = None
                        freelist_append(event)
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                if strict and time < self.now:
                    raise SimulationError(
                        f"event surfaced at {time!r} behind the clock "
                        f"{self.now!r} (mutated Event.time?)")
                self.now = time
                event.fn(*event.args)
                processed += 1
                event._sim = None
                if (len(freelist) < FREELIST_MAX
                        and getrefcount(event) == _ONLY_ENGINE_REFS):
                    event.fn = _noop
                    event.args = ()
                    freelist_append(event)
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and self.now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False if queue is empty."""
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            if self._strict and time < self.now:
                raise SimulationError(
                    f"event surfaced at {time!r} behind the clock "
                    f"{self.now!r} (mutated Event.time?)")
            self.now = time
            event.fn(*event.args)
            self.events_processed += 1
            event._sim = None
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if drained."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            event = heapq.heappop(heap)[2]
            self._cancelled_pending -= 1
            self._recycle(event)
        return heap[0][0] if heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, e in self._heap if not e.cancelled)

    def clear(self) -> None:
        """Drop every pending event (used between experiment repetitions)."""
        for _t, _s, event in self._heap:
            event.cancel()
            event._sim = None
        self._heap.clear()
        self._cancelled_pending = 0
