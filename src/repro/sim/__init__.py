"""Discrete-event simulation substrate (engine, timers, seeded RNG)."""

from .engine import Event, PeriodicSource, SimulationError, Simulator
from .rng import RngFactory
from .timers import PeriodicTimer, Timer

__all__ = [
    "Event",
    "PeriodicSource",
    "PeriodicTimer",
    "RngFactory",
    "SimulationError",
    "Simulator",
    "Timer",
]
