"""Discrete-event simulation substrate (engine, timers, seeded RNG)."""

from .engine import Event, SimulationError, Simulator
from .rng import RngFactory
from .timers import PeriodicTimer, Timer

__all__ = [
    "Event",
    "PeriodicTimer",
    "RngFactory",
    "SimulationError",
    "Simulator",
    "Timer",
]
