"""Restartable timers on top of the event engine.

TCP needs a handful of timer idioms — retransmission timers that are
re-armed by every ACK, inactivity timers used by the AC/DC conntrack to
infer timeouts (§3.1 of the paper), and periodic tickers (garbage
collection, throughput sampling).  This module packages them so the
protocol code stays readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Event, Simulator


class Timer:
    """A one-shot, restartable timer.

    ``start`` (re)arms the timer; ``stop`` disarms it.  The callback fires
    at most once per arm.  This is the shape of a TCP RTO timer.

    Restarts are *lazy*: a TCP sender re-arms its RTO on every ACK, so
    instead of cancelling and re-pushing a heap event each time, the timer
    records the new deadline and lets an already-scheduled (earlier) event
    re-check on expiry.  This cuts event-queue churn by an order of
    magnitude on bulk flows.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._deadline: Optional[float] = None

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def expires_at(self) -> Optional[float]:
        return self._deadline

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        deadline = self._sim.now + delay
        self._deadline = deadline
        if self._event is None or self._event.cancelled:
            self._event = self._sim.schedule_at(deadline, self._fire)
        elif self._event.time > deadline:
            # The pending wake-up is too late for the new deadline.
            self._event.cancel()
            self._event = self._sim.schedule_at(deadline, self._fire)
        # else: the pending event fires early and re-arms for the remainder.

    def stop(self) -> None:
        """Disarm; a stopped timer never fires (its event dies silently)."""
        self._deadline = None

    def _fire(self) -> None:
        self._event = None
        if self._deadline is None:
            return  # stopped since scheduling
        if self._deadline > self._sim.now + 1e-12:
            # Re-armed to a later deadline since this event was pushed.
            self._event = self._sim.schedule_at(self._deadline, self._fire)
            return
        self._deadline = None
        self._callback()


class PeriodicTimer:
    """Fires ``callback`` every ``interval`` seconds until stopped.

    Used for the flow-table garbage collector (§4) and metric samplers.
    The first tick is one full interval after :meth:`start`.
    """

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], Any]):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if not self._stopped:
            return
        self._stopped = False
        self._event = self._sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule(self.interval, self._tick)
