"""Seeded randomness helpers.

Every stochastic choice in the reproduction (flow start jitter, shuffle
orderings, trace sampling) draws from a named stream derived from one master
seed, so experiments are reproducible and the streams are independent of
each other (adding a new consumer does not perturb existing ones).
"""

from __future__ import annotations

import random
import zlib


class RngFactory:
    """Produces independent, deterministically-seeded ``random.Random``
    streams keyed by name.

    >>> rngs = RngFactory(seed=1)
    >>> rngs.stream("incast").random() == RngFactory(seed=1).stream("incast").random()
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        #: Stream names handed out so far (name -> times requested); an
        #: audit surface: every stochastic component should appear here.
        self.created: dict = {}

    def stream(self, name: str) -> random.Random:
        """Return a fresh RNG for stream ``name``; same name ⇒ same stream."""
        self.created[name] = self.created.get(name, 0) + 1
        mixed = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 0x9E3779B1)
        return random.Random(mixed & 0xFFFFFFFFFFFF)

    def jitter(self, name: str, count: int, low: float, high: float) -> list:
        """``count`` uniform samples in [low, high) from stream ``name``."""
        rng = self.stream(name)
        return [rng.uniform(low, high) for _ in range(count)]


def stream(seed: int, name: str) -> random.Random:
    """One-off named stream: ``RngFactory(seed).stream(name)`` shorthand
    for components that derive a single RNG rather than holding a factory."""
    return RngFactory(seed).stream(name)
