"""Datapath operation accounting.

The paper measures AC/DC's CPU cost with ``sar`` on a real host (Fig. 11
and 12).  In simulation we instead *count the operations the datapath
actually performs* — flow-table lookups, sequence updates, header
rewrites, checksum recalculations, PACK attachment, congestion-control
updates — and let :mod:`repro.metrics.cpu_model` convert counts into a CPU
utilisation estimate.  Both the plain-OVS baseline and AC/DC record into
the same counter vocabulary so the *difference* is exactly the extra work
AC/DC adds per packet.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

#: Canonical operation names (anything else raises, to catch typos).
OPS = frozenset({
    "flow_lookup",        # hash-table lookup (every packet, baseline too)
    "flow_insert",        # SYN handling
    "flow_resurrect",     # mid-flow entry rebuild after state loss
    "flow_migrate",       # live policy migration (repro.control)
    "flow_remove",        # FIN/GC
    "seq_update",         # conntrack snd_nxt/snd_una maintenance
    "ecn_mark",           # egress ECT marking
    "ecn_strip",          # ingress CE/ECE scrubbing
    "counters_update",    # receiver-module total/marked byte counters
    "pack_attach",        # PACK option insertion
    "fack_create",        # dedicated feedback packet
    "feedback_extract",   # PACK/FACK consumption at the sender module
    "cc_update",          # Fig. 5 congestion-control execution
    "rwnd_rewrite",       # enforcement memcpy
    "policing_check",     # non-conforming flow policing
    "checksum_recalc",    # IP checksum after any header change
    "forward",            # baseline OVS forwarding action
})


class OpsCounter:
    """Named counters for datapath work, split by direction."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self.packets_egress = 0
        self.packets_ingress = 0

    def record(self, op: str, n: int = 1) -> None:
        if op not in OPS:
            raise KeyError(f"unknown datapath op {op!r}")
        self.counts[op] += n

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counts)

    def total(self) -> int:
        return sum(self.counts.values())

    def reset(self) -> None:
        self.counts.clear()
        self.packets_egress = 0
        self.packets_ingress = 0
