"""Pluggable congestion control for the vSwitch datapath.

The paper's prototype enforces DCTCP, but §3.1 is explicit that the
inferred state (snd_una/snd_nxt/dupacks/timeouts, plus ECN feedback) is
enough to "determine appropriate CWND values for canonical TCP congestion
control schemes", and §3.4 assigns different algorithms per flow (e.g.
CUBIC for WAN-bound traffic).  This module provides that generality:

* :class:`VswitchCongestionControl` — the interface the AC/DC sender
  module drives (one call per ACK, one per inferred timeout);
* :class:`VswitchReno` — canonical NewReno AIMD: halve on loss *or* on
  any ECN mark (classic once-per-window semantics);
* :class:`VswitchCubic` — CUBIC's window growth with loss/mark-triggered
  multiplicative decrease, for long-RTT (WAN) flows;
* the registry mapping ``FlowPolicy.algorithm`` names to classes
  (:data:`VSWITCH_CC_REGISTRY`); DCTCP itself lives in
  :mod:`repro.core.dctcp_vswitch` and registers here.
"""

from __future__ import annotations

from typing import Dict

from ..net.packet import seq_lt
from ..tcp.cc.cubic import CUBIC_BETA, CUBIC_C

INITIAL_WINDOW_SEGMENTS = 10


class VswitchCongestionControl:
    """Interface + NewReno mechanics shared by vSwitch algorithms.

    Subclasses override :meth:`_cut_factor` (multiplicative decrease) and
    optionally :meth:`_grow` (additive increase / growth function).
    """

    name = "base"

    def __init__(self, mss: int, beta: float = 1.0,
                 min_wnd_bytes=None, max_wnd_bytes=None):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.beta = beta  # unused by non-DCTCP algorithms; kept uniform
        self.min_wnd = min_wnd_bytes if min_wnd_bytes is not None else mss
        self.max_wnd = max_wnd_bytes if max_wnd_bytes is not None else (1 << 30)
        self.wnd = float(min(INITIAL_WINDOW_SEGMENTS * mss, self.max_wnd))
        self.ssthresh = float(1 << 30)
        self.cut_seq = 0
        self._gates_seeded = False
        self.cuts = 0
        self.loss_events = 0
        self.alpha = 0.0   # uniform introspection with DCTCP

    # -- interface ---------------------------------------------------------
    @property
    def window_bytes(self) -> int:
        """The enforceable congestion window, floored and capped."""
        return int(min(max(self.wnd, self.min_wnd), self.max_wnd))

    def on_ack(self, snd_una: int, snd_nxt: int, newly_acked: int,
               feedback_total: int, feedback_marked: int,
               loss: bool) -> int:
        """Process one ACK's worth of information; returns the window."""
        self._seed_gates(snd_una)
        if loss:
            self.loss_events += 1
            self._cut(snd_una, snd_nxt)
        elif feedback_marked > 0:
            # Canonical stacks treat an ECN mark like a loss signal
            # (RFC 3168), cut at most once per window.
            self._cut(snd_una, snd_nxt)
        else:
            self._grow(newly_acked)
        return self.window_bytes

    def on_int_report(self, view) -> None:
        """One consumed in-network telemetry report (repro.obs.int).

        ``view`` is the flow's :class:`~repro.obs.int.TelemetryView`
        (bottleneck hop, queue depth, path latency decomposition).  The
        base class ignores it; telemetry-driven window laws (PowerTCP
        style) override this to react to in-network state directly.
        """

    def on_timeout(self, snd_una: int, snd_nxt: int) -> int:
        """Inferred RTO: slow-start restart."""
        self._seed_gates(snd_una)
        self.loss_events += 1
        self.ssthresh = max(self.wnd / 2.0, float(2 * self.mss))
        self.wnd = float(self.mss)
        self.cut_seq = snd_nxt
        self.cuts += 1
        return self.window_bytes

    def _seed_gates(self, snd_una: int) -> None:
        """Anchor the once-per-window gate at the first observed ACK point.

        Sequence comparisons are serial (mod 2^32), so the gate cannot
        start at a literal 0 — a flow whose ISS sits just below the wrap
        would otherwise read as "already cut" forever.
        """
        if not self._gates_seeded:
            self.cut_seq = snd_una
            self._gates_seeded = True

    # -- policy hooks --------------------------------------------------------
    def _cut_factor(self) -> float:
        """Fraction of the window kept on a congestion event."""
        return 0.5

    def _grow(self, newly_acked: int) -> None:
        """Slow start below ssthresh; else +1 MSS per window."""
        if newly_acked <= 0:
            return
        if self.wnd < self.ssthresh:
            self.wnd += newly_acked
        else:
            self.wnd += self.mss * newly_acked / max(self.wnd, 1.0)
        self.wnd = min(self.wnd, float(self.max_wnd))

    # -- shared mechanics ---------------------------------------------------
    def _cut(self, snd_una: int, snd_nxt: int) -> None:
        if seq_lt(snd_una, self.cut_seq):
            return  # already cut in this window
        self.wnd = max(self.wnd * self._cut_factor(), float(self.min_wnd))
        self.ssthresh = self.wnd
        self.cut_seq = snd_nxt
        self.cuts += 1


class VswitchReno(VswitchCongestionControl):
    """Canonical NewReno AIMD enforced from the vSwitch."""

    name = "reno"


class VswitchCubic(VswitchCongestionControl):
    """CUBIC window growth enforced from the vSwitch.

    Uses wall-clock-free epoch tracking: the epoch timer is the count of
    acked windows (the vSwitch has no reliable per-flow RTT estimate, so
    growth is driven per-window like the kernel's HZ-quantised clock).
    """

    name = "cubic"

    def __init__(self, mss: int, beta: float = 1.0,
                 min_wnd_bytes=None, max_wnd_bytes=None,
                 rtt_estimate_s: float = 200e-6):
        super().__init__(mss, beta, min_wnd_bytes, max_wnd_bytes)
        self.rtt = rtt_estimate_s
        self.w_max = 0.0            # MSS units
        self._epoch_t = 0.0         # virtual seconds since last cut
        self._k = 0.0
        self._origin = 0.0
        self._in_epoch = False
        self._acked_bytes = 0

    def _cut_factor(self) -> float:
        return CUBIC_BETA

    def _cut(self, snd_una: int, snd_nxt: int) -> None:
        if seq_lt(snd_una, self.cut_seq):
            return
        self.w_max = self.wnd / self.mss
        self._in_epoch = False
        super()._cut(snd_una, snd_nxt)

    def _grow(self, newly_acked: int) -> None:
        if newly_acked <= 0:
            return
        if self.wnd < self.ssthresh:
            self.wnd = min(self.wnd + newly_acked, float(self.max_wnd))
            return
        if not self._in_epoch:
            self._in_epoch = True
            self._epoch_t = 0.0
            self._acked_bytes = 0
            cwnd_mss = self.wnd / self.mss
            if cwnd_mss < self.w_max:
                self._k = ((self.w_max - cwnd_mss) / CUBIC_C) ** (1 / 3)
                self._origin = self.w_max
            else:
                self._k = 0.0
                self._origin = cwnd_mss
        # Advance virtual time by one RTT per acked window.
        self._acked_bytes += newly_acked
        if self._acked_bytes >= self.wnd:
            self._acked_bytes = 0
            self._epoch_t += self.rtt
        target = self._origin + CUBIC_C * ((self._epoch_t + self.rtt
                                            - self._k) ** 3)
        cwnd_mss = self.wnd / self.mss
        if target > cwnd_mss:
            window_gain_mss = target - cwnd_mss
        else:
            window_gain_mss = 0.01
        # TCP-friendly floor (the kernel's w_est): never grow slower than
        # Reno's AIMD would at CUBIC's decrease factor.
        reno_gain_mss = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
        window_gain_mss = max(window_gain_mss, reno_gain_mss)
        self.wnd = min(self.wnd + window_gain_mss * self.mss
                       * newly_acked / max(self.wnd, 1.0),
                       float(self.max_wnd))


def _make_dctcp(mss: int, beta: float = 1.0, min_wnd_bytes=None,
                max_wnd_bytes=None):
    """Factory indirection avoids a circular import with dctcp_vswitch."""
    from .dctcp_vswitch import VswitchDctcp

    return VswitchDctcp(mss=mss, beta=beta, min_wnd_bytes=min_wnd_bytes,
                        max_wnd_bytes=max_wnd_bytes)


#: ``FlowPolicy.algorithm`` name -> factory(mss, beta, min_wnd, max_wnd).
VSWITCH_CC_REGISTRY: Dict[str, object] = {
    "dctcp": _make_dctcp,
    "reno": VswitchReno,
    "cubic": VswitchCubic,
}


def make_vswitch_cc(name: str, mss: int, beta: float = 1.0,
                    min_wnd_bytes=None, max_wnd_bytes=None):
    """Instantiate the vSwitch algorithm ``name`` (see the registry)."""
    try:
        factory = VSWITCH_CC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown vSwitch algorithm {name!r}; "
            f"known: {sorted(VSWITCH_CC_REGISTRY)}") from None
    return factory(mss=mss, beta=beta, min_wnd_bytes=min_wnd_bytes,
                   max_wnd_bytes=max_wnd_bytes)
