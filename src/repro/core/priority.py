"""Per-flow differentiation primitives (§3.4).

Equation 1 of the paper generalises DCTCP's multiplicative decrease with a
priority knob ``beta`` in [0, 1]:

    rwnd = rwnd * (1 - (alpha - alpha * beta / 2))

* ``beta = 1`` recovers DCTCP exactly: ``rwnd *= (1 - alpha/2)``.
* ``beta = 0`` backs off by the full marked fraction: ``rwnd *= (1 - alpha)``
  (floored at one MSS to avoid starvation, per the paper).

The decrease is modulated (rather than the increase) because growing RWND
cannot force a VM whose own CWND is the limit to send faster.
"""

from __future__ import annotations


def validate_beta(beta: float) -> float:
    """Check that ``beta`` is a legal priority value and return it."""
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"priority beta must be in [0, 1], got {beta!r}")
    return beta


def priority_decrease(wnd: float, alpha: float, beta: float) -> float:
    """Apply Equation 1 once to ``wnd`` and return the reduced window."""
    validate_beta(beta)
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha!r}")
    factor = 1.0 - (alpha - alpha * beta / 2.0)
    return wnd * factor


def rwnd_cap_for_rate(rate_bps: float, rtt_s: float) -> int:
    """Bandwidth-to-RWND conversion used for per-flow caps (§3.4, Fig. 6).

    The paper derives the clamp from the uncongested RTT (a lower bound),
    so the cap is ``rate * RTT_min`` bytes.
    """
    if rate_bps <= 0 or rtt_s <= 0:
        raise ValueError("rate and RTT must be positive")
    return max(1, int(rate_bps * rtt_s / 8.0))
