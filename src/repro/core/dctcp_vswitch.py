"""DCTCP congestion control executed inside the vSwitch (§3.2, Fig. 5).

This is the administrator-defined algorithm AC/DC enforces.  It is fed by
the sender module on every incoming ACK with (a) the conntrack verdict and
(b) the ECN feedback deltas recovered from PACK/FACK options, and it
produces the congestion window the enforcement module writes into RWND.

Control flow mirrors Fig. 5 exactly:

1. update connection tracking variables; update alpha once per RTT
   (sequence-gated, like the Linux implementation);
2. on loss: alpha := max_alpha, then cut;
3. on congestion (marked bytes seen): cut, at most once per window,
   using the priority-generalised Equation 1;
4. otherwise ``tcp_cong_avoid()``: NewReno slow start / congestion
   avoidance.

The window floor is configurable in **bytes**: unlike the Linux DCTCP
module's 2-packet minimum, AC/DC's RWND "can be much smaller than 2*MSS"
(§5.2), which is why its incast RTT beats native DCTCP in Fig. 19.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import seq_geq, seq_lt
from .priority import priority_decrease, validate_beta

VSWITCH_DCTCP_G = 1.0 / 16.0
ALPHA_MAX = 1.0
INITIAL_WINDOW_SEGMENTS = 10   # RFC 6928, §3.1 of the paper


class VswitchDctcp:
    """Per-flow DCTCP state machine run by the AC/DC sender module."""

    name = "dctcp"

    def __init__(
        self,
        mss: int,
        beta: float = 1.0,
        min_wnd_bytes: Optional[int] = None,
        max_wnd_bytes: Optional[int] = None,
    ):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.beta = validate_beta(beta)
        self.min_wnd = min_wnd_bytes if min_wnd_bytes is not None else mss
        self.max_wnd = max_wnd_bytes if max_wnd_bytes is not None else (1 << 30)
        self.wnd = float(min(INITIAL_WINDOW_SEGMENTS * mss, self.max_wnd))
        self.ssthresh = float(1 << 30)
        self.alpha = 1.0
        # Sequence gates: alpha updates and window cuts once per window/RTT.
        # Seeded lazily from the first observed snd_una — comparisons are
        # serial (mod 2^32), so an absolute 0 would misread flows whose
        # ISS sits just below the wrap.
        self.alpha_update_seq = 0
        self.cut_seq = 0
        self._gates_seeded = False
        # Feedback accumulators between alpha updates.
        self._acked_total = 0
        self._acked_marked = 0
        self.cuts = 0
        self.loss_events = 0

    # ------------------------------------------------------------------
    @property
    def window_bytes(self) -> int:
        """The enforceable congestion window, floored and capped."""
        return int(min(max(self.wnd, self.min_wnd), self.max_wnd))

    # ------------------------------------------------------------------
    def on_ack(
        self,
        snd_una: int,
        snd_nxt: int,
        newly_acked: int,
        feedback_total: int,
        feedback_marked: int,
        loss: bool,
    ) -> int:
        """Process one ACK's worth of information; returns the new window.

        ``feedback_total``/``feedback_marked`` are the *deltas* of the
        receiver-module byte counters carried by PACK/FACK since the last
        ACK (zero when the ACK carried no feedback option).
        """
        self._seed_gates(snd_una)
        self._acked_total += feedback_total
        self._acked_marked += feedback_marked
        if seq_geq(snd_una, self.alpha_update_seq):
            self._update_alpha(snd_nxt)

        congestion = feedback_marked > 0
        if loss:
            self.alpha = ALPHA_MAX
            self.loss_events += 1
            self._cut(snd_una, snd_nxt)
        elif congestion:
            self._cut(snd_una, snd_nxt)
        else:
            self._cong_avoid(newly_acked)
        return self.window_bytes

    def on_int_report(self, view) -> None:
        """One consumed in-network telemetry report (repro.obs.int).

        ``view`` is the flow's :class:`~repro.obs.int.TelemetryView`.
        Stock DCTCP reacts only to ECN feedback, so the report is
        ignored; telemetry-driven laws (PowerTCP style) override this.
        """

    def on_timeout(self, snd_una: int, snd_nxt: int) -> int:
        """Inferred RTO (inactivity with bytes outstanding): saturate alpha
        and cut; Fig. 5 treats it as the loss branch."""
        self._seed_gates(snd_una)
        self.alpha = ALPHA_MAX
        self.loss_events += 1
        # A timeout is a window-boundary event by definition; force the cut.
        self.cut_seq = snd_una
        self._cut(snd_una, snd_nxt)
        return self.window_bytes

    # ------------------------------------------------------------------
    def _update_alpha(self, snd_nxt: int) -> None:
        if self._acked_total > 0:
            fraction = self._acked_marked / self._acked_total
            self.alpha = (1.0 - VSWITCH_DCTCP_G) * self.alpha + VSWITCH_DCTCP_G * fraction
        self._acked_total = 0
        self._acked_marked = 0
        self.alpha_update_seq = snd_nxt

    def _seed_gates(self, snd_una: int) -> None:
        if not self._gates_seeded:
            self.alpha_update_seq = snd_una
            self.cut_seq = snd_una
            self._gates_seeded = True

    def _cut(self, snd_una: int, snd_nxt: int) -> None:
        """Multiplicative decrease, at most once per window in flight."""
        if seq_lt(snd_una, self.cut_seq):
            return
        self.wnd = max(priority_decrease(self.wnd, self.alpha, self.beta),
                       float(self.min_wnd))
        self.ssthresh = self.wnd
        self.cut_seq = snd_nxt
        self.cuts += 1

    def _cong_avoid(self, newly_acked: int) -> None:
        """NewReno growth (Fig. 5's ``tcp_cong_avoid()``)."""
        if newly_acked <= 0:
            return
        if self.wnd < self.ssthresh:
            self.wnd += newly_acked
        else:
            self.wnd += self.mss * newly_acked / max(self.wnd, 1.0)
        self.wnd = min(self.wnd, float(self.max_wnd))
