"""AC/DC TCP: the paper's contribution — congestion control in the vSwitch."""

from .acdc import AcdcConfig, AcdcVswitch, PlainOvs
from .conntrack import AckVerdict, ConnTrack, DUPACK_THRESHOLD
from .dctcp_vswitch import VswitchDctcp
from .enforcement import Policer, WindowEnforcer
from .feedback import FeedbackReader, ReceiverFeedback
from .flow_table import FLOW_ENTRY_BYTES, FlowEntry, FlowTable
from .ops import OPS, OpsCounter
from .policy import FlowPolicy, PolicyEngine
from .priority import priority_decrease, rwnd_cap_for_rate, validate_beta
from .vswitch_cc import (
    VSWITCH_CC_REGISTRY,
    VswitchCongestionControl,
    VswitchCubic,
    VswitchReno,
    make_vswitch_cc,
)

__all__ = [
    "AcdcConfig",
    "AcdcVswitch",
    "AckVerdict",
    "ConnTrack",
    "DUPACK_THRESHOLD",
    "FLOW_ENTRY_BYTES",
    "FlowEntry",
    "FlowPolicy",
    "FlowTable",
    "FeedbackReader",
    "OPS",
    "OpsCounter",
    "PlainOvs",
    "Policer",
    "PolicyEngine",
    "ReceiverFeedback",
    "VSWITCH_CC_REGISTRY",
    "VswitchCongestionControl",
    "VswitchCubic",
    "VswitchDctcp",
    "VswitchReno",
    "make_vswitch_cc",
    "WindowEnforcer",
    "priority_decrease",
    "rwnd_cap_for_rate",
    "validate_beta",
]
