"""The AC/DC vSwitch datapath (§3, §4).

One :class:`AcdcVswitch` instance sits in each host's packet path (the
OVS stand-in) and combines the pieces of ``repro.core``:

* **egress data** (VM → wire): flow-table lookup, conntrack ``snd_nxt``
  update, ECT marking (+ reserved ``vm_ect`` bit), optional policing of
  non-conforming stacks;
* **egress ACKs** (VM → wire): the receiver module piggy-backs its
  total/marked byte counters as a PACK option, or emits a dedicated FACK
  when the option would not fit in the MTU;
* **ingress data** (wire → VM): receiver-module counter update, then CE/ECN
  scrubbing so the VM never reacts to congestion on its own;
* **ingress ACKs** (wire → VM): feedback extraction (FACKs are consumed),
  conntrack ACK classification, the Fig. 5 DCTCP computation, and RWND
  enforcement honouring the window scale snooped from the handshake.

Every action records into an :class:`~repro.core.ops.OpsCounter`, which is
what the Fig. 11/12 CPU-overhead model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional, TYPE_CHECKING

from ..analysis import sanitize
from ..net.packet import ECN_ECT0, FlowKey, Packet
from ..obs import WARNING, FlightRecorder, ObsContext
from ..sim.timers import Timer
from .ecn import mark_egress_data, scrub_ingress_ack, scrub_ingress_data
from .enforcement import Policer, WindowEnforcer
from .flow_table import FlowEntry, FlowTable
from .ops import OpsCounter
from .policy import FlowPolicy, PolicyEngine
from .vswitch_cc import make_vswitch_cc

if TYPE_CHECKING:  # pragma: no cover
    from ..net.host import Host

#: window-sample callback: (flow key, virtual time, window bytes)
WindowCallback = Callable[[FlowKey, float, int], None]


@dataclass
class AcdcConfig:
    """Tunables of the datapath; defaults match the paper's deployment."""

    enforce: bool = True                 # rewrite RWND on ACKs to the VM
    log_only: bool = False               # Fig. 9: compute but never rewrite
    police: bool = False                 # drop data beyond the window
    policing_slack_segments: int = 2
    hide_ecn: bool = True                # strip ECE from ACKs to the VM
    feedback_mode: str = "pack"          # "pack" (FACK fallback) | "fack-only"
    min_wnd_bytes: Optional[int] = None  # None -> 1 MSS (byte-granular floor)
    inactivity_timeout: float = 0.010    # timeout inference (§3.1), = RTOmin
    # §3.3 flexibility: push a fabricated window update to the VM when the
    # window changes while no ACKs are flowing (after an inferred timeout).
    proactive_window_updates: bool = False
    gc_interval: float = 1.0
    idle_timeout: float = 30.0
    # Runtime invariant sanitizer (repro.analysis.sanitize): True/False
    # forces it for this datapath, None defers to REPRO_SANITIZE.
    sanitize: Optional[bool] = None
    # Structured tracing (repro.obs): True/False forces it for this
    # datapath, None defers to whether an ObsContext was supplied.
    trace: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.feedback_mode not in ("pack", "fack-only"):
            raise ValueError(f"unknown feedback mode {self.feedback_mode!r}")


class AcdcVswitch:
    """Administrator Control over Datacenter TCP, in the vSwitch."""

    def __init__(
        self,
        host: "Host",
        config: Optional[AcdcConfig] = None,
        policy: Optional[PolicyEngine] = None,
        ops: Optional[OpsCounter] = None,
        window_cb: Optional[WindowCallback] = None,
        guard=None,
        obs: Optional[ObsContext] = None,
    ):
        self.sim = host.sim
        self.host = host
        self.config = config if config is not None else AcdcConfig()
        self.policy = policy if policy is not None else PolicyEngine()
        self.ops = ops if ops is not None else OpsCounter()
        self.window_cb = window_cb
        self.mss = host.mss
        self.mtu = host.mtu
        self.table = FlowTable(
            self.sim, gc_interval=self.config.gc_interval,
            idle_timeout=self.config.idle_timeout,
        )
        self.table.start_gc()
        self.policer = Policer(self.config.policing_slack_segments)
        # Invariant probes (repro.analysis.sanitize).  None when off, so
        # the datapath pays one `is None` test per hook and nothing else.
        sanitize_on = (self.config.sanitize if self.config.sanitize is not None
                       else sanitize.is_enabled())
        # Structured tracing (repro.obs): same `is None` contract.  The
        # flight recorder arms under *either* debugging mode so invariant
        # violations always come with a decision log.
        trace_on = (self.config.trace if self.config.trace is not None
                    else obs is not None)
        if trace_on and obs is None:
            obs = ObsContext(self.sim)
        self.obs = obs
        self.trace = obs.bus if (trace_on and obs is not None) else None
        self.flight = (FlightRecorder(self.sim, name=str(host.addr))
                       if (trace_on or sanitize_on) else None)
        if obs is not None:
            obs.register_vswitch(self)
        # In-band telemetry (repro.obs.int): sink/echo/view logic for
        # this datapath.  Same `is None` contract; attached via
        # :meth:`attach_int` by the run's IntTelemetry context.
        self.int_tel = None
        self.sanitizer = sanitize.DatapathSanitizer(self) if sanitize_on else None
        # Adversarial-tenant protection (repro.guard.Guard, optional):
        # conformance monitoring, escalation, watchdog load shedding.
        # Attached after tracing so the guard's ledgers can bind the bus.
        self.guard = guard
        if guard is not None:
            guard.attach(self)
        # Fault-recovery accounting (see repro.faults): state losses this
        # vSwitch suffered and flow entries rebuilt mid-flow afterwards.
        self.restarts = 0
        self.resurrections = 0

    def attach_int(self, telemetry) -> None:
        """Install the run's INT context (see repro.obs.int)."""
        self.int_tel = telemetry

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _sender_entry(self, key: FlowKey, create: bool = False) -> Optional[FlowEntry]:
        """Entry for a locally-sourced data direction."""
        if create:
            entry = self.table.ensure(key, self.policy.policy_for(key), self.mss)
            self._apply_config_floor(entry)
            self.ops.record("flow_insert")
            return entry
        return self.table.lookup(key)

    def _apply_config_floor(self, entry: FlowEntry) -> None:
        if self.config.min_wnd_bytes is not None:
            entry.vswitch_cc.min_wnd = self.config.min_wnd_bytes

    def _ensure_both_directions(self, pkt: Packet) -> None:
        """SYN handling: create entries for both flow directions (§4)."""
        tr = self.trace
        for key in (pkt.flow_key(), pkt.reverse_key()):
            if tr is not None and key not in self.table.entries:
                tr.emit("flow.state", flow=key, component="vswitch",
                        state="insert")
            entry = self.table.ensure(key, self.policy.policy_for(key), self.mss)
            self._apply_config_floor(entry)
        self.ops.record("flow_insert", 2)

    def _resurrect(self, key: FlowKey) -> FlowEntry:
        """Rebuild a flow entry mid-flow, after the table lost its state.

        The entry starts from conservative defaults: a fresh congestion
        window, ``peer_wscale`` 0 (the handshake is long gone, so window
        rewrites are capped at 64 KB until re-learned — never an unsafe
        *upward* lie), and a conntrack that seeds itself from the first
        packet it sees (:meth:`ConnTrack.on_egress_data` /
        :meth:`ConnTrack.on_ingress_ack`).
        """
        entry = self.table.ensure(key, self.policy.policy_for(key), self.mss)
        self._apply_config_floor(entry)
        self.resurrections += 1
        self.ops.record("flow_resurrect")
        if self.trace is not None:
            self.trace.emit("flow.state", flow=key, component="vswitch",
                            severity=WARNING, state="resurrect")
        if self.flight is not None:
            self.flight.note("flow.state", key, state="resurrect")
        if self.sanitizer is not None:
            # The rebuilt entry restarts its window tracking from scratch;
            # stale edge high-water would read as a (false) retreat.
            self.sanitizer.forget_flow(key)
        return entry

    # ------------------------------------------------------------------
    # Live policy mutation (repro.control)
    # ------------------------------------------------------------------
    def apply_policy(self, policy: FlowPolicy) -> int:
        """Hot-swap the default policy and migrate every live flow to it.

        The control-plane path to "retune this tenant without restarting
        its flows": the policy engine's default is replaced (so new flows
        pick it up at insert) and every existing entry is migrated in
        place — conntrack, feedback counters, peer wscale and guard state
        all survive; only the policy reference and (when needed) the
        congestion-control object change.  Returns the number of entries
        migrated.  Explicit rules (``add_rule``/``insert_rule``, e.g. the
        guard's penalty clamps) still take precedence for new flows, and
        entries pinned by such a rule are left alone.
        """
        self.policy.default = policy
        migrated = 0
        for entry in self.table.entries.values():
            if self.policy.policy_for(entry.key) is not policy:
                continue  # an explicit rule owns this flow
            self._migrate_entry(entry, policy)
            migrated += 1
        return migrated

    def _migrate_entry(self, entry: FlowEntry, policy: FlowPolicy) -> None:
        """Move one live entry to ``policy`` without dropping its state.

        Same algorithm: retune the existing CC in place (beta, clamp).
        Different algorithm: build the new CC and carry the operating
        point over — current window (re-clamped into the new band),
        ssthresh, and the once-per-window gates re-anchored at the
        current ``snd_una`` so the first post-migration mark/loss is
        neither double-counted nor ignored.  The window never jumps *up*
        past the new clamp, so enforcement stays safe mid-flight; the
        sanitizer's advertised-edge high-water is untouched because a
        shrinking window merely stops the edge advancing (never a
        retreat).
        """
        old_policy, old_cc = entry.policy, entry.vswitch_cc
        entry.policy = policy
        if policy.enforced:
            max_wnd = policy.max_rwnd if policy.max_rwnd is not None else (1 << 30)
            if policy.algorithm == old_cc.name and old_policy.enforced:
                old_cc.beta = policy.beta
                old_cc.max_wnd = max_wnd
                cc = old_cc
            else:
                cc = make_vswitch_cc(policy.algorithm, mss=self.mss,
                                     beta=policy.beta,
                                     min_wnd_bytes=old_cc.min_wnd,
                                     max_wnd_bytes=max_wnd)
                cc.wnd = min(max(old_cc.wnd, float(cc.min_wnd)),
                             float(cc.max_wnd))
                cc.ssthresh = min(old_cc.ssthresh, float(cc.max_wnd))
                cc.cuts = old_cc.cuts
                cc.loss_events = old_cc.loss_events
                una = entry.conntrack.snd_una
                if una is not None:
                    cc._seed_gates(una)
                entry.vswitch_cc = cc
            self._apply_config_floor(entry)
            # Track the migrated CC's clamped operating point in both
            # directions: tightening takes effect on the next ACK rewrite,
            # loosening (rollback) lets the window grow again immediately.
            entry.enforced_wnd = cc.window_bytes
        self.ops.record("flow_migrate")
        if self.trace is not None:
            self.trace.emit("flow.state", flow=entry.key,
                            component="vswitch", state="migrate",
                            algorithm=policy.algorithm,
                            wnd_bytes=entry.enforced_wnd)
        if self.flight is not None:
            self.flight.note("flow.state", entry.key, state="migrate",
                             algorithm=policy.algorithm)

    def restart(self) -> None:
        """Simulate a vSwitch crash/upgrade: all flow-table state is lost.

        Subsequent packets recreate their entries mid-flow via
        :meth:`_resurrect`; the VMs' connections themselves survive (§4 —
        the flow table is soft state inferred from traffic).
        """
        for key in list(self.table.entries):
            self.table.remove(key)
        self.restarts += 1
        if self.trace is not None:
            self.trace.emit("flow.state", component="vswitch",
                            severity=WARNING, state="restart")
        if self.flight is not None:
            self.flight.note("flow.state", state="restart")

    # ------------------------------------------------------------------
    # Egress: VM -> wire
    # ------------------------------------------------------------------
    def egress(self, pkt: Packet) -> Optional[Packet]:
        self.ops.packets_egress += 1
        self.ops.record("flow_lookup")
        self.ops.record("forward")  # AC/DC is OVS forwarding *plus* CC
        if pkt.syn:
            self._ensure_both_directions(pkt)
            entry = self.table.lookup(pkt.flow_key())
            if entry is not None:
                entry.conntrack.on_egress_syn(pkt, now=self.sim.now)
                if entry.policy.enforced:
                    self._mark_control_packet(pkt)
            return pkt
        if pkt.payload_len > 0:
            out = self._egress_data(pkt)
            if out is None:
                return None
        if pkt.ack and pkt.payload_len == 0:
            self._egress_feedback(pkt)
            # "All egress packets are marked to be ECN-capable" (§3.2):
            # a pure ACK through a congested port must not hit the
            # non-ECT WRED drop profile either.
            entry = self.table.lookup(pkt.reverse_key())
            if entry is not None and entry.policy.enforced:
                self._mark_control_packet(pkt)
        if pkt.fin:
            self.table.mark_fin(pkt.flow_key())
            self.table.mark_fin(pkt.reverse_key())
        return pkt

    def _mark_control_packet(self, pkt: Packet) -> None:
        """ECT-mark a non-data packet, remembering the VM's own setting."""
        if not pkt.ect:
            pkt.vm_ect = False
            pkt.ecn = ECN_ECT0
            self.ops.record("ecn_mark")
            self.ops.record("checksum_recalc")
        else:
            pkt.vm_ect = True

    def _egress_data(self, pkt: Packet) -> Optional[Packet]:
        entry = self._sender_entry(pkt.flow_key())
        if entry is None:
            # Data with no SYN on record: the flow predates this vSwitch's
            # state (restart, migration).  Rebuild the entry mid-flow.
            entry = self._resurrect(pkt.flow_key())
        if not entry.policy.enforced:
            return pkt
        san = self.sanitizer
        prev_nxt = entry.conntrack.snd_nxt if san is not None else None
        entry.conntrack.on_egress_data(pkt)
        self.ops.record("seq_update")
        if san is not None:
            san.check_serial_progress(entry.key, None, None,
                                      prev_nxt, entry.conntrack.snd_nxt)
        if entry.shed:
            # Watchdog pass-through: stats above still collected, but no
            # marking, guarding or policing — the guest stack is on its own.
            return pkt
        if mark_egress_data(pkt):
            self.ops.record("ecn_mark")
            self.ops.record("checksum_recalc")
            if self.trace is not None:
                self.trace.emit("ecn.mark", flow=entry.key,
                                component="vswitch", direction="egress")
        entry.vm_ect = pkt.vm_ect
        if self.guard is not None and not self.guard.on_egress_data(entry, pkt):
            return None
        if self.config.police:
            self.ops.record("policing_check")
            snd_una = entry.conntrack.snd_una
            base = snd_una if snd_una is not None else pkt.seq
            if not self.policer.allow(pkt, base, entry.enforced_wnd, self.mss,
                                      wscale=entry.peer_wscale):
                if self.trace is not None:
                    self.trace.emit("policer.drop", flow=entry.key,
                                    component="vswitch", severity=WARNING,
                                    reason="window_overrun")
                if self.flight is not None:
                    self.flight.note("policer.drop", entry.key,
                                     reason="window_overrun", seq=pkt.seq)
                return None
        self._arm_inactivity(entry)
        return pkt

    def _egress_feedback(self, ack: Packet) -> None:
        """Receiver module: report counters for the reverse data direction."""
        entry = self.table.lookup(ack.reverse_key())
        if entry is None or not entry.policy.enforced:
            return
        tel = self.int_tel
        if tel is not None:
            # INT echo rides the same piggyback direction as the PACK
            # option, but out of band (it never changes the ACK's size).
            tel.on_egress_ack(entry, ack)
        feedback = entry.receiver_feedback
        if feedback.total_bytes == 0:
            return  # nothing to report yet
        piggyback = (
            self.config.feedback_mode == "pack"
            and feedback.can_piggyback(ack, self.mtu)
        )
        if piggyback:
            feedback.attach_pack(ack)
            self.ops.record("pack_attach")
            self.ops.record("checksum_recalc")
        else:
            fack = feedback.make_fack(ack)
            self.ops.record("fack_create")
            self.host.wire_out(fack)
        if self.sanitizer is not None:
            self.sanitizer.register_feedback_report(
                entry.key, feedback.total_bytes, feedback.marked_bytes)

    # ------------------------------------------------------------------
    # Ingress: wire -> VM
    # ------------------------------------------------------------------
    def ingress(self, pkt: Packet) -> Optional[Packet]:
        self.ops.packets_ingress += 1
        self.ops.record("flow_lookup")
        self.ops.record("forward")
        if pkt.syn:
            self._ingress_syn(pkt)
            return pkt
        if pkt.ack:
            consumed = self._ingress_ack(pkt)
            if consumed:
                return None
        if pkt.payload_len > 0:
            self._ingress_data(pkt)
        if pkt.fin:
            self.table.mark_fin(pkt.flow_key())
            self.table.mark_fin(pkt.reverse_key())
        return pkt

    def _ingress_syn(self, pkt: Packet) -> None:
        """Handshake snooping: learn the remote peer's window scale (§3.3)."""
        self._ensure_both_directions(pkt)
        sender_entry = self.table.lookup(pkt.reverse_key())
        if sender_entry is not None and pkt.wscale is not None:
            sender_entry.peer_wscale = pkt.wscale
        if pkt.ack and sender_entry is not None:
            # SYN-ACK also acknowledges our SYN.
            sender_entry.conntrack.on_ingress_ack(pkt, self.sim.now)
        if (sender_entry is not None and sender_entry.policy.enforced
                and not self.config.log_only and scrub_ingress_data(pkt)):
            self.ops.record("ecn_strip")
            self.ops.record("checksum_recalc")

    def _ingress_ack(self, pkt: Packet) -> bool:
        """Sender module on an incoming ACK.  Returns True if consumed."""
        entry = self.table.lookup(pkt.reverse_key())
        if entry is None:
            # ACK for a flow we have no entry for: state was lost while
            # the transfer was in progress.  Resurrect the sender-role
            # entry; conntrack seeds snd_una from this very ACK.
            entry = self._resurrect(pkt.reverse_key())
        tel = self.int_tel
        if tel is not None:
            # Before any early return: INT echoes are vSwitch-to-vSwitch
            # metadata and must be terminated here regardless of policy,
            # shed state or FACK consumption.
            tel.on_ingress_ack(self, entry, pkt)
        if not entry.policy.enforced:
            return bool(pkt.is_fack)
        san = self.sanitizer
        prev_una = entry.conntrack.snd_una if san is not None else None
        prev_nxt = entry.conntrack.snd_nxt if san is not None else None
        verdict = entry.conntrack.on_ingress_ack(pkt, self.sim.now)
        self.ops.record("seq_update")
        if san is not None:
            san.check_serial_progress(entry.key, prev_una,
                                      entry.conntrack.snd_una,
                                      prev_nxt, entry.conntrack.snd_nxt)
            if pkt.pack is not None:
                san.check_feedback_consume(entry.key, pkt.pack)
        total_delta, marked_delta = entry.feedback_reader.consume(pkt.pack)
        if san is not None:
            san.check_feedback_deltas(entry.key, total_delta, marked_delta)
        if pkt.pack is not None:
            self.ops.record("feedback_extract")
            pkt.pack = None  # stripped before the VM can see it
        if entry.shed:
            # Watchdog pass-through: no CC, no rewrite, no ECN hiding —
            # the VM sees its own feedback and its stack takes over.
            # FACKs are still consumed (they are vSwitch-to-vSwitch).
            return bool(pkt.is_fack)
        cc = entry.vswitch_cc
        wnd = cc.on_ack(
            snd_una=entry.conntrack.snd_una or 0,
            snd_nxt=entry.conntrack.snd_nxt or 0,
            newly_acked=verdict.newly_acked,
            feedback_total=total_delta,
            feedback_marked=marked_delta,
            loss=verdict.loss_detected,
        )
        self.ops.record("cc_update")
        if san is not None:
            san.check_window_value(entry.key, wnd, cc)
        entry.enforced_wnd = wnd
        if self.window_cb is not None:
            self.window_cb(entry.key, self.sim.now, wnd)
        if self.guard is not None:
            self.guard.on_ingress_ack(entry, pkt, verdict,
                                      total_delta, marked_delta)
        if pkt.is_fack:
            return True  # dropped after logging the data (§3.2)
        rewritten = False
        if self.config.enforce and not self.config.log_only:
            rewritten = entry.enforcer.enforce(pkt, wnd, entry.peer_wscale)
            if rewritten:
                self.ops.record("rwnd_rewrite")
                self.ops.record("checksum_recalc")
        # The flight note lands *before* the sanitizer check so a lying
        # rewrite's dump contains the offending decision.
        if self.flight is not None:
            self.flight.note("rwnd.rewrite", entry.key, wnd_bytes=wnd,
                             rewritten=rewritten, rwnd_field=pkt.rwnd_field,
                             wscale=entry.peer_wscale)
        if san is not None and self.config.enforce and not self.config.log_only:
            san.check_rewrite(entry.key, pkt, wnd, entry.peer_wscale,
                              rewritten)
        # Emitted in log-only mode too (rewritten=False): Fig. 9 overlays
        # the would-be vSwitch window against the guest's CWND.
        if self.trace is not None:
            self.trace.emit(
                "rwnd.rewrite", flow=entry.key, component="vswitch",
                wnd_bytes=wnd, rewritten=rewritten,
                visible_bytes=pkt.advertised_window(entry.peer_wscale))
        if san is not None:
            guard_state = entry.guard_state
            san.note_advertised_edge(
                entry.key, pkt.ack_seq,
                pkt.advertised_window(entry.peer_wscale),
                guard_edge=(guard_state.advertised_edge
                            if guard_state is not None else None))
        # In log-only mode the host stack stays in charge, so it must keep
        # seeing its own congestion feedback (Fig. 9 methodology).
        if self.config.hide_ecn and not self.config.log_only:
            if scrub_ingress_ack(pkt):
                self.ops.record("ecn_strip")
                self.ops.record("checksum_recalc")
            # Restore the IP codepoint of *pure* ACKs; a data packet that
            # carries an ACK is scrubbed by the receiver module instead
            # (after its CE mark has been counted).
            if pkt.payload_len == 0 and scrub_ingress_data(pkt):
                self.ops.record("ecn_strip")
                self.ops.record("checksum_recalc")
        if entry.conntrack.bytes_outstanding > 0:
            self._arm_inactivity(entry)
        elif entry.inactivity_timer is not None:
            entry.inactivity_timer.stop()
        return False

    def _ingress_data(self, pkt: Packet) -> None:
        """Receiver module on arriving data: count, then scrub ECN."""
        entry = self.table.lookup(pkt.flow_key())
        if entry is None:
            # No SYN on record for this data: receiver-role resurrection
            # (the feedback counters restart from zero; the sender module
            # on the far side resyncs its reader to the new baseline).
            entry = self._resurrect(pkt.flow_key())
        if not entry.policy.enforced:
            return
        entry.receiver_feedback.on_data(pkt)
        self.ops.record("counters_update")
        tel = self.int_tel
        if tel is not None:
            # INT sink: absorb (validated) and strip the hop stack.
            tel.on_ingress_data(self, entry, pkt)
        if self.sanitizer is not None:
            self.sanitizer.check_feedback_counters(
                entry.key, entry.receiver_feedback.total_bytes,
                entry.receiver_feedback.marked_bytes, "receiver counters")
        if entry.shed:
            return  # pass-through: the VM keeps its CE marks
        if self.config.log_only or not self.config.hide_ecn:
            # The VM keeps its CE marks: log-only mode (Fig. 9) or the
            # hide-ECN ablation, where the guest reacts on its own too.
            return
        if scrub_ingress_data(pkt):
            self.ops.record("ecn_strip")
            self.ops.record("checksum_recalc")

    # ------------------------------------------------------------------
    # Timeout inference (§3.1)
    # ------------------------------------------------------------------
    def _arm_inactivity(self, entry: FlowEntry) -> None:
        if entry.inactivity_timer is None:
            # partial, not a lambda: timer callbacks live in the engine
            # heap, which must stay picklable for checkpoint/restore
            # (repro.recovery).
            entry.inactivity_timer = Timer(
                self.sim, partial(self._inactivity_fired, entry))
        # Adapt to the flow's ACK cadence: on a long (WAN) path, ACKs
        # legitimately arrive one RTT apart, and a fixed datacenter-scale
        # timer would infer a timeout every round trip.
        delay = max(self.config.inactivity_timeout,
                    4.0 * entry.conntrack.ack_gap_estimate)
        entry.inactivity_timer.start(delay)

    def _inactivity_fired(self, entry: FlowEntry) -> None:
        if entry.key not in self.table.entries:
            return
        if entry.conntrack.infer_timeout():
            wnd = entry.vswitch_cc.on_timeout(
                entry.conntrack.snd_una or 0, entry.conntrack.snd_nxt or 0)
            entry.enforced_wnd = wnd
            if self.trace is not None:
                self.trace.emit("flow.state", flow=entry.key,
                                component="vswitch", severity=WARNING,
                                state="timeout", wnd_bytes=wnd)
            if self.flight is not None:
                self.flight.note("flow.state", entry.key, state="timeout",
                                 wnd_bytes=wnd)
            if self.window_cb is not None:
                self.window_cb(entry.key, self.sim.now, wnd)
            if self.guard is not None and not entry.shed:
                self.guard.on_timeout(entry)
            if self.config.proactive_window_updates:
                # No ACKs are flowing to carry the new window, so tell
                # the VM directly (§3.3's fabricated window update).
                self.send_window_update(entry.key)

    # ------------------------------------------------------------------
    # Fabricated control packets (§3.3)
    # ------------------------------------------------------------------
    def send_window_update(self, key: FlowKey) -> bool:
        """Deliver a fabricated window update for flow ``key`` to the VM.

        Useful when the enforced window grew but no ACKs are flowing.
        """
        entry = self.table.lookup(key)
        if entry is None or entry.conntrack.snd_una is None:
            return False
        update = WindowEnforcer.make_window_update(
            (key[2], key[3], key[0], key[1]),
            entry.conntrack.snd_una, entry.enforced_wnd, entry.peer_wscale)
        if self.guard is not None:
            self.guard.note_advertisement(entry, entry.conntrack.snd_una,
                                          entry.enforced_wnd)
        self._note_fabricated_edge(entry, update)
        self.host.deliver(update)
        return True

    def _note_fabricated_edge(self, entry: FlowEntry, pkt: Packet) -> None:
        """Sanitizer bookkeeping for §3.3 fabricated control packets."""
        if self.sanitizer is None:
            return
        guard_state = entry.guard_state
        self.sanitizer.note_advertised_edge(
            entry.key, pkt.ack_seq, pkt.advertised_window(entry.peer_wscale),
            guard_edge=(guard_state.advertised_edge
                        if guard_state is not None else None))

    def send_dupacks(self, key: FlowKey, count: int = 3) -> bool:
        """Deliver fabricated duplicate ACKs to trigger fast retransmit in
        the VM (for stacks whose RTO is far larger than AC/DC's)."""
        entry = self.table.lookup(key)
        if entry is None or entry.conntrack.snd_una is None:
            return False
        if self.guard is not None:
            self.guard.note_advertisement(entry, entry.conntrack.snd_una,
                                          entry.enforced_wnd)
        for _ in range(count):
            dup = WindowEnforcer.make_dupack(
                (key[2], key[3], key[0], key[1]),
                entry.conntrack.snd_una, entry.enforced_wnd, entry.peer_wscale)
            self._note_fabricated_edge(entry, dup)
            self.host.deliver(dup)
        return True


class PlainOvs:
    """The unmodified-OVS baseline: forward and count, nothing else."""

    def __init__(self, host: "Host", ops: Optional[OpsCounter] = None):
        self.host = host
        self.ops = ops if ops is not None else OpsCounter()

    def egress(self, pkt: Packet) -> Optional[Packet]:
        self.ops.packets_egress += 1
        self.ops.record("flow_lookup")
        self.ops.record("forward")
        return pkt

    def ingress(self, pkt: Packet) -> Optional[Packet]:
        self.ops.packets_ingress += 1
        self.ops.record("flow_lookup")
        self.ops.record("forward")
        return pkt
