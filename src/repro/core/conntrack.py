"""Congestion-control state inference from observed packets (§3.1).

The vSwitch cannot ask the VM for its TCP state, so it rebuilds the
sender-side variables of Fig. 4 purely by watching traffic:

* ``snd_nxt`` advances when a data packet from the VM carries a sequence
  number beyond the current value;
* ``snd_una`` advances when an ACK from the network acknowledges new data;
* an ACK with ``ack_seq <= snd_una`` and no payload bumps a duplicate-ACK
  counter (three of them signal loss, as in the host stack);
* a timeout is *inferred* when ``snd_una < snd_nxt`` and an inactivity
  timer fires (the timer itself lives in the AC/DC datapath, which calls
  :meth:`infer_timeout`).

State can also be rebuilt **mid-flow**: when the first packet the tracker
sees is a data segment or an ACK (flow entry lost to a vSwitch restart or
VM migration, or the flow predates this vSwitch), the sequence space is
seeded from that packet instead of a SYN.

All sequence comparisons use RFC 1982-style serial arithmetic over the
32-bit space (:mod:`repro.net.packet`), so tracking survives flows that
wrap past 2^32 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.packet import Packet, SEQ_MASK, seq_add, seq_delta, seq_gt

DUPACK_THRESHOLD = 3


@dataclass
class AckVerdict:
    """What one incoming ACK meant for the tracked flow."""

    newly_acked: int = 0        # bytes newly acknowledged
    is_dupack: bool = False
    loss_detected: bool = False  # third duplicate ACK


class ConnTrack:
    """Sequence-space tracker for one flow direction (the sender role)."""

    def __init__(self) -> None:
        self.snd_una: Optional[int] = None
        self.snd_nxt: Optional[int] = None
        self.dupacks = 0
        self.last_ack_at: float = 0.0
        self.timeouts_inferred = 0
        # Decaying maximum of ACK inter-arrival gaps: a cheap RTT-scale
        # estimate so the inactivity timer adapts to long (WAN) paths
        # instead of firing once per round trip.
        self.ack_gap_estimate: float = 0.0
        self.syn_sent_at: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def initialized(self) -> bool:
        return self.snd_una is not None

    @property
    def bytes_outstanding(self) -> int:
        if self.snd_una is None or self.snd_nxt is None:
            return 0
        return max(seq_delta(self.snd_nxt, self.snd_una), 0)

    # ------------------------------------------------------------------
    def on_egress_syn(self, pkt: Packet, now: float = 0.0) -> None:
        """Seed the sequence space from the VM's SYN."""
        self.snd_una = pkt.seq & SEQ_MASK
        self.snd_nxt = seq_add(pkt.seq, 1)
        self.syn_sent_at = now

    def on_egress_data(self, pkt: Packet) -> None:
        """Advance ``snd_nxt`` for a data packet leaving the VM.

        An uninitialized tracker (mid-flow resurrection) seeds both ends
        of the window from this packet — the conservative choice: bytes
        below it count as acknowledged, so the inferred window restarts
        from zero outstanding rather than a stale estimate.
        """
        if self.snd_nxt is None:
            self.snd_una = pkt.seq & SEQ_MASK
            self.snd_nxt = pkt.end_seq
        elif seq_gt(pkt.end_seq, self.snd_nxt):
            self.snd_nxt = pkt.end_seq

    def on_ingress_ack(self, pkt: Packet, now: float) -> AckVerdict:
        """Classify an ACK arriving from the network for this flow."""
        verdict = AckVerdict()
        if self.last_ack_at > 0.0:
            gap = now - self.last_ack_at
            self.ack_gap_estimate = max(gap, self.ack_gap_estimate * 0.99)
        elif self.syn_sent_at is not None and self.ack_gap_estimate == 0.0:
            # First ACK: the handshake RTT seeds the cadence estimate so
            # the inactivity timer starts on the right scale.
            self.ack_gap_estimate = max(now - self.syn_sent_at, 0.0)
        self.last_ack_at = now
        ack_seq = pkt.ack_seq & SEQ_MASK
        if self.snd_una is None:
            # Mid-flow resurrection from an ACK: everything at or below
            # the cumulative ACK is acknowledged by definition.
            self.snd_una = ack_seq
            if self.snd_nxt is None or seq_gt(ack_seq, self.snd_nxt):
                self.snd_nxt = ack_seq
            return verdict
        if seq_gt(ack_seq, self.snd_una):
            verdict.newly_acked = seq_delta(ack_seq, self.snd_una)
            self.snd_una = ack_seq
            if self.snd_nxt is not None and seq_gt(ack_seq, self.snd_nxt):
                self.snd_nxt = ack_seq
            self.dupacks = 0
        elif (ack_seq == self.snd_una and pkt.payload_len == 0
              and self.bytes_outstanding > 0):
            self.dupacks += 1
            verdict.is_dupack = True
            if self.dupacks == DUPACK_THRESHOLD:
                verdict.loss_detected = True
        return verdict

    def infer_timeout(self) -> bool:
        """Called when the inactivity timer fires; True if it's a real RTO."""
        if self.bytes_outstanding > 0:
            self.timeouts_inferred += 1
            self.dupacks = 0
            return True
        return False
