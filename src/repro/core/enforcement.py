"""Congestion-window enforcement via the receive window (§3.3).

TCP's flow control is repurposed: the vSwitch computes a congestion window
and writes it into the RWND field of ACKs headed for the VM, so an
unmodified stack obeys ``min(CWND, RWND)`` by construction.  Two rules
from the paper:

* the field is only overwritten when the computed window is *smaller*
  than the original advertisement (TCP semantics preserved — never lie
  upward about buffer space);
* the rewrite must honour the window scale the advertising peer
  negotiated, which the datapath snoops from the handshake.

Flows that ignore RWND can be policed: data beyond
``snd_una + window + slack`` is dropped in the vSwitch, which removes any
incentive to cheat.  The module can also fabricate window updates and
duplicate ACKs (the flexibility §3.3 describes).
"""

from __future__ import annotations

from ..net.packet import Packet, SEQ_HALF, SEQ_MASK


class WindowEnforcer:
    """Rewrites RWND on ACKs delivered to the VM."""

    def __init__(self) -> None:
        self.rewrites = 0
        self.passes = 0   # ACKs whose original RWND was already tighter

    def enforce(self, ack: Packet, window_bytes: int, peer_wscale: int) -> bool:
        """Overwrite the ACK's window if ours is smaller; report whether
        the header changed."""
        original = ack.advertised_window(peer_wscale)
        if window_bytes >= original:
            self.passes += 1
            return False
        ack.set_advertised_window(window_bytes, peer_wscale)
        self.rewrites += 1
        return True

    # ------------------------------------------------------------------
    # Fabricated control packets (§3.3 "surprising amount of flexibility")
    # ------------------------------------------------------------------
    @staticmethod
    def make_window_update(template_key: tuple, ack_seq: int,
                           window_bytes: int, peer_wscale: int) -> Packet:
        """A pure window-update ACK (no data, no feedback) for the VM."""
        src, sport, dst, dport = template_key
        pkt = Packet(src=src, sport=sport, dst=dst, dport=dport,
                     ack=True, ack_seq=ack_seq)
        pkt.set_advertised_window(window_bytes, peer_wscale)
        return pkt

    @staticmethod
    def make_dupack(template_key: tuple, ack_seq: int,
                    window_bytes: int, peer_wscale: int) -> Packet:
        """A fabricated duplicate ACK to trigger the VM's fast retransmit
        (useful when the VM's RTO is far larger than AC/DC's inference)."""
        pkt = WindowEnforcer.make_window_update(
            template_key, ack_seq, window_bytes, peer_wscale)
        return pkt


def encoded_window_bytes(window_bytes: int, wscale: int) -> int:
    """The window the VM actually sees after 16-bit/wscale encoding.

    Mirrors :meth:`Packet.set_advertised_window`: the field is rounded
    *up* to the next scale unit (never a downward lie), then clamped to
    the 16-bit ceiling.  A conforming stack is bound by this value, not
    by the raw computed window — the policer must use the same edge.
    """
    if window_bytes < 0:
        raise ValueError(f"negative window {window_bytes!r}")
    unit = 1 << wscale
    return min(0xFFFF, (window_bytes + unit - 1) >> wscale) << wscale


class Policer:
    """Drops egress data a non-conforming stack sends beyond the window."""

    def __init__(self, slack_segments: int = 2):
        if slack_segments < 0:
            raise ValueError("slack must be non-negative")
        self.slack_segments = slack_segments
        self.drops = 0

    def allow(self, pkt: Packet, snd_una: int, window_bytes: int, mss: int,
              wscale: int = 0) -> bool:
        """True if the data packet fits within the enforced window.

        The slack absorbs the legitimate cases where a conforming stack
        momentarily exceeds the window (window shrinkage racing packets
        already in the stack); independent of slack, the budget uses the
        *encoded* window — enforcement rounds the 16-bit field up to the
        next ``wscale`` unit, so a stack honouring the advertisement may
        legitimately sit up to ``2**wscale - 1`` bytes past the raw
        computed window.  A zero window always admits a one-byte probe
        (dropping probes would deadlock a conforming zero-window flow).

        Sequence space is circular: the segment's distance ahead of
        ``snd_una`` is taken mod 2^32, the budget's worth is in-window,
        and the back half of the space counts as retransmission territory
        — so the check survives flows that wrap 2^32 mid-transfer.
        """
        budget = (encoded_window_bytes(window_bytes, wscale)
                  + self.slack_segments * mss)
        if window_bytes == 0:
            budget = max(budget, 1)
        ahead = (pkt.end_seq - snd_una) & SEQ_MASK
        if ahead <= budget or ahead >= budget + SEQ_HALF:
            return True
        self.drops += 1
        return False
