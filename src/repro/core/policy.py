"""Per-flow policy: which congestion control a flow gets (§3.4).

Administrators assign congestion control per flow: datacenter-internal
flows to DCTCP, WAN flows to an untouched host stack, flows of different
service classes to different priority betas, and individual flows to
bandwidth caps (an RWND clamp).  The :class:`PolicyEngine` evaluates a
rule list against the 5-tuple at flow setup, falling back to a default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..net.packet import FlowKey
from .priority import validate_beta


#: Algorithms the vSwitch can enforce (see repro.core.vswitch_cc), plus
#: "none" for full passthrough (the flow is left to the host stack).
ENFORCEABLE_ALGORITHMS = ("dctcp", "reno", "cubic")


@dataclass
class FlowPolicy:
    """What AC/DC should do with one flow.

    ``algorithm`` names the congestion control the vSwitch enforces —
    ``"dctcp"`` (the paper's deployment), ``"reno"`` or ``"cubic"``
    (canonical schemes per §3.1/§3.4, e.g. for WAN-bound flows) — or
    ``"none"`` to leave the flow entirely to the host stack.  ``beta``
    is the Equation 1 priority (DCTCP only); ``max_rwnd`` an optional
    bandwidth-cap clamp in bytes.
    """

    algorithm: str = "dctcp"
    beta: float = 1.0
    max_rwnd: Optional[int] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ENFORCEABLE_ALGORITHMS + ("none",):
            raise ValueError(f"unsupported vSwitch algorithm {self.algorithm!r}")
        validate_beta(self.beta)
        if self.max_rwnd is not None and self.max_rwnd <= 0:
            raise ValueError("max_rwnd must be positive")

    @property
    def enforced(self) -> bool:
        return self.algorithm != "none"


Matcher = Callable[[FlowKey], bool]


@dataclass(frozen=True)
class FieldMatcher:
    """Picklable flow-key matcher on one 5-tuple position.

    Matchers used to be lambdas; rule tables sit inside live services
    whose whole object graph is pickled by checkpoint/restore
    (repro.recovery), and lambdas cannot be pickled.  ``remove_rule``
    matches by object identity, so each call site still holds (and
    removes by) the exact instance it registered.
    """

    index: int
    value: object

    def __call__(self, key: FlowKey) -> bool:
        return key[self.index] == self.value


@dataclass(frozen=True)
class FlowMatcher:
    """Exact 5-tuple match (per-flow penalty rules)."""

    flow: FlowKey

    def __call__(self, key: FlowKey) -> bool:
        return key == self.flow


@dataclass(frozen=True)
class DstPrefixMatcher:
    """Crude 'subnet' matcher on the destination address string."""

    prefix: str

    def __call__(self, key: FlowKey) -> bool:
        return key[2].startswith(self.prefix)


class PolicyEngine:
    """First-match rule table over flow 5-tuples."""

    def __init__(self, default: Optional[FlowPolicy] = None):
        self.default = default if default is not None else FlowPolicy()
        self._rules: List[Tuple[Matcher, FlowPolicy]] = []

    def add_rule(self, matcher: Matcher, policy: FlowPolicy) -> None:
        """Append a rule; earlier rules win."""
        self._rules.append((matcher, policy))

    def insert_rule(self, matcher: Matcher, policy: FlowPolicy) -> None:
        """Prepend a rule so it takes precedence over everything existing
        (used by the guard's penalty clamps, which must override even an
        administrator rule for the same flow)."""
        self._rules.insert(0, (matcher, policy))

    def remove_rule(self, matcher: Matcher) -> bool:
        """Remove the rule registered under this exact matcher object."""
        for i, (m, _) in enumerate(self._rules):
            if m is matcher:
                del self._rules[i]
                return True
        return False

    def policy_for(self, key: FlowKey) -> FlowPolicy:
        for matcher, policy in self._rules:
            if matcher(key):
                return policy
        return self.default

    # -- convenience matchers -------------------------------------------------
    @staticmethod
    def match_dst(dst: str) -> Matcher:
        return FieldMatcher(2, dst)

    @staticmethod
    def match_src(src: str) -> Matcher:
        return FieldMatcher(0, src)

    @staticmethod
    def match_dport(dport: int) -> Matcher:
        return FieldMatcher(3, dport)

    @staticmethod
    def match_flow(flow: FlowKey) -> Matcher:
        """Exact 5-tuple match (per-flow penalty rules)."""
        return FlowMatcher(flow)

    @staticmethod
    def match_dst_prefix(prefix: str) -> Matcher:
        """Crude 'subnet' matcher on the address string — enough to split
        WAN-bound from datacenter-internal traffic in the examples."""
        return DstPrefixMatcher(prefix)
