"""ECN feedback channel between receiver and sender modules (§3.2).

The receiver module keeps two cumulative per-flow counters — total payload
bytes received and the subset that arrived CE-marked — and ships them back
to the sender module:

* **PACK** (piggy-backed ACK): an 8-byte TCP option added to the ACKs the
  VM is already sending.  This is the common case.
* **FACK** (fake ACK): a dedicated feedback packet, used when attaching
  the option would push the ACK past the MTU (TSO would otherwise
  replicate the option and skew the totals).  FACKs are consumed by the
  sender module and never reach the VM.

The sender module turns the cumulative totals into deltas for the Fig. 5
algorithm; cumulative encoding makes the channel robust to reordered or
lost feedback (a later report supersedes an earlier one).
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import PACK_OPTION, Packet, PackOption


class ReceiverFeedback:
    """Receiver-module counters for one flow (lives in its flow entry)."""

    def __init__(self) -> None:
        self.total_bytes = 0
        self.marked_bytes = 0
        self.packs_attached = 0
        self.facks_created = 0

    def on_data(self, pkt: Packet) -> None:
        """Account an arriving data packet (before ECN scrubbing)."""
        self.total_bytes += pkt.payload_len
        if pkt.ce:
            self.marked_bytes += pkt.payload_len

    # ------------------------------------------------------------------
    def can_piggyback(self, ack: Packet, mtu: int) -> bool:
        """Would adding the PACK option keep the ACK within the MTU?"""
        return ack.size + PACK_OPTION <= mtu

    def attach_pack(self, ack: Packet) -> None:
        """Piggy-back the current totals on an egress ACK."""
        ack.pack = PackOption(total_bytes=self.total_bytes,
                              marked_bytes=self.marked_bytes)
        self.packs_attached += 1

    def make_fack(self, ack: Packet) -> Packet:
        """Build the dedicated feedback packet mirroring ``ack``'s flow."""
        fack = Packet(
            src=ack.src, sport=ack.sport, dst=ack.dst, dport=ack.dport,
            ack=True, ack_seq=ack.ack_seq, rwnd_field=ack.rwnd_field,
            is_fack=True,
            pack=PackOption(total_bytes=self.total_bytes,
                            marked_bytes=self.marked_bytes),
        )
        self.facks_created += 1
        return fack


class FeedbackReader:
    """Sender-module side: cumulative report -> per-ACK deltas.

    A report *below* the high-water mark is normally a reordered stale
    PACK and is ignored.  But when the receiver-side vSwitch loses its
    state (restart, VM migration) its counters restart from zero, and
    every subsequent report regresses — without resync the sender module
    would never see congestion feedback again.  The reader therefore
    re-baselines after :data:`RESYNC_AFTER` *consecutive* regressive
    reports: reordering produces isolated stale reports interleaved with
    fresh ones, a counter reset produces an unbroken run of them.
    """

    #: Consecutive regressive reports that signal a receiver-counter reset.
    RESYNC_AFTER = 3

    def __init__(self) -> None:
        self.last_total = 0
        self.last_marked = 0
        self.stale_reports = 0   # current run of regressive reports
        self.resyncs = 0         # receiver-state losses recovered from

    def consume(self, pack: Optional[PackOption]) -> tuple:
        """Return (total_delta, marked_delta) for this report.

        Stale or absent reports yield (0, 0); the counters only move
        forward, so reordered feedback cannot double-count.
        """
        if pack is None:
            return (0, 0)
        if pack.total_bytes < self.last_total:
            self.stale_reports += 1
            if self.stale_reports >= self.RESYNC_AFTER:
                # Receiver counters restarted: adopt the new baseline so
                # the feedback channel resumes from the reset point.
                self.last_total = pack.total_bytes
                self.last_marked = pack.marked_bytes
                self.stale_reports = 0
                self.resyncs += 1
            return (0, 0)
        self.stale_reports = 0
        total_delta = pack.total_bytes - self.last_total
        marked_delta = max(0, pack.marked_bytes - self.last_marked)
        self.last_total = pack.total_bytes
        self.last_marked = max(self.last_marked, pack.marked_bytes)
        return (total_delta, marked_delta)
