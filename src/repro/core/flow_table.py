"""Flow table for the AC/DC datapath (§4).

The prototype adds a hash table to OVS keyed on the 5-tuple; entries are
created by SYN packets and removed by FINs plus a coarse-grained garbage
collector.  Lookups vastly outnumber insertions, which in the kernel
motivates RCU hash tables and per-entry spinlocks — in a single-threaded
simulation those are design notes, but the entry lifecycle, the lookup
accounting (for the CPU model) and the GC behaviour are implemented
faithfully.

One :class:`FlowEntry` exists per flow *direction* (the paper keeps two
entries per connection).  An entry at a given host is in the **sender
role** if the direction's source is local (it runs conntrack + the
vSwitch congestion control + enforcement), and in the **receiver role**
otherwise (it runs the feedback counters).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..net.packet import FlowKey
from ..sim.engine import Simulator
from ..sim.timers import PeriodicTimer, Timer
from .conntrack import ConnTrack
from .enforcement import WindowEnforcer
from .feedback import FeedbackReader, ReceiverFeedback
from .policy import FlowPolicy
from .vswitch_cc import make_vswitch_cc

#: The C prototype's per-entry footprint (§4); kept as a constant so the
#: scalability example can report faithful memory numbers.
FLOW_ENTRY_BYTES = 320


class FlowEntry:
    """Per-direction connection state (§3.1–§3.3 combined)."""

    __slots__ = (
        "key", "policy", "created_at", "last_active",
        "conntrack", "vswitch_cc", "enforcer", "feedback_reader",
        "receiver_feedback", "peer_wscale", "vm_ect", "fin_seen",
        "inactivity_timer", "enforced_wnd", "shed", "guard_state",
        "int_sink", "int_view",
    )

    def __init__(self, key: FlowKey, policy: FlowPolicy, now: float, mss: int):
        self.key = key
        self.policy = policy
        self.created_at = now
        self.last_active = now
        # Sender-role state (populated lazily; harmless if unused).
        self.conntrack = ConnTrack()
        algorithm = policy.algorithm if policy.enforced else "dctcp"
        self.vswitch_cc = make_vswitch_cc(
            algorithm, mss=mss, beta=policy.beta,
            max_wnd_bytes=policy.max_rwnd,
        )
        self.enforcer = WindowEnforcer()
        self.feedback_reader = FeedbackReader()
        self.peer_wscale = 0
        self.enforced_wnd = self.vswitch_cc.window_bytes
        # Receiver-role state.
        self.receiver_feedback = ReceiverFeedback()
        # Lifecycle.
        self.vm_ect = False
        self.fin_seen = False
        self.inactivity_timer: Optional[Timer] = None
        # Guard state (repro.guard): watchdog pass-through flag and the
        # per-flow conformance record, attached lazily by the Guard.
        self.shed = False
        self.guard_state = None
        # In-band telemetry (repro.obs.int): receiver-role sink and
        # sender-role view, created lazily when INT is on for the run.
        self.int_sink = None
        self.int_view = None

    def touch(self, now: float) -> None:
        self.last_active = now


class FlowTable:
    """5-tuple-hashed flow state with SYN/FIN lifecycle and a GC."""

    def __init__(
        self,
        sim: Simulator,
        gc_interval: float = 1.0,
        idle_timeout: float = 30.0,
    ):
        self.sim = sim
        self.idle_timeout = idle_timeout
        self.entries: Dict[FlowKey, FlowEntry] = {}
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.removes = 0
        self._gc = PeriodicTimer(sim, gc_interval, self.collect_garbage)

    # ------------------------------------------------------------------
    def start_gc(self) -> None:
        self._gc.start()

    def stop_gc(self) -> None:
        self._gc.stop()

    # ------------------------------------------------------------------
    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        self.lookups += 1
        entry = self.entries.get(key)
        if entry is not None:
            self.hits += 1
            entry.touch(self.sim.now)
        return entry

    def ensure(self, key: FlowKey, policy: FlowPolicy, mss: int) -> FlowEntry:
        """Lookup-or-insert (SYN handling)."""
        entry = self.lookup(key)
        if entry is None:
            entry = FlowEntry(key, policy, self.sim.now, mss)
            self.entries[key] = entry
            self.inserts += 1
        return entry

    def remove(self, key: FlowKey) -> None:
        entry = self.entries.pop(key, None)
        if entry is not None:
            if entry.inactivity_timer is not None:
                entry.inactivity_timer.stop()
            self.removes += 1

    def mark_fin(self, key: FlowKey) -> None:
        """FIN observed: the GC may reclaim the entry once it goes idle."""
        entry = self.entries.get(key)
        if entry is not None:
            entry.fin_seen = True

    # ------------------------------------------------------------------
    def collect_garbage(self) -> None:
        """Reclaim finished or long-idle entries (coarse-grained GC, §4)."""
        now = self.sim.now
        stale = [
            key for key, entry in self.entries.items()
            if (entry.fin_seen and now - entry.last_active > 1.0)
            or (now - entry.last_active > self.idle_timeout)
        ]
        for key in stale:
            self.remove(key)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self.entries.values())

    def memory_bytes(self) -> int:
        """Footprint at the C prototype's 320 B/entry (§4)."""
        return len(self.entries) * FLOW_ENTRY_BYTES
