"""ECN header manipulation (§3.2, "ECN marking").

Egress (sender module): every data packet leaving the VM is made
ECN-capable so switches can mark instead of drop, and a reserved header
bit records whether the VM's own stack had set ECT — that is the only
state needed to restore the packet faithfully at the far end.

Ingress: CE marks and ECE echoes are hidden from the VM.  For a
non-ECN VM everything ECN-related is stripped; for an ECN-capable VM only
the congestion signals (CE, ECE) are removed, so the VM's conservative
halving never triggers — AC/DC's proportional DCTCP reaction replaces it.
"""

from __future__ import annotations

from ..net.packet import ECN_CE, ECN_ECT0, ECN_NOT_ECT, Packet


def mark_egress_data(pkt: Packet) -> bool:
    """Make an egress data packet ECN-capable; remember the VM's setting.

    Returns True if the header changed (drives checksum accounting).
    """
    pkt.vm_ect = pkt.ect
    if pkt.ecn == ECN_ECT0:
        return False
    pkt.ecn = ECN_ECT0
    return True


def scrub_ingress_data(pkt: Packet) -> bool:
    """Restore the ECN field the VM expects on an arriving data packet.

    CE becomes ECT(0) for an ECN-capable VM (strip the congestion signal
    only) and Not-ECT for a legacy VM (strip everything).  Returns True if
    the header changed.
    """
    original = pkt.ecn
    if pkt.vm_ect:
        if pkt.ecn == ECN_CE:
            pkt.ecn = ECN_ECT0
    else:
        pkt.ecn = ECN_NOT_ECT
    return pkt.ecn != original


def scrub_ingress_ack(pkt: Packet) -> bool:
    """Hide ECN feedback (ECE) from the sender VM's stack.

    The VM must not react to congestion on its own — AC/DC already did,
    proportionally.  Returns True if the header changed.
    """
    changed = pkt.ece
    pkt.ece = False
    return changed
