"""Composable, deterministic fault injection for the datapath.

Robustness claims are only as good as the failure modes they were tested
against.  This package provides seeded fault injectors that wrap any
vSwitch datapath (:class:`~repro.net.host.VSwitch` protocol) without the
datapath knowing it is being tortured:

* :class:`PacketLoss` — random drops;
* :class:`Corruption` — bit corruption with checksum-drop semantics (a
  corrupted packet fails the receiver NIC's checksum and is discarded,
  but is accounted under its own cause);
* :class:`Duplication` — the packet and an identical copy both proceed;
* :class:`Reordering` — the packet is held back for a bounded interval
  and re-emitted behind later traffic;
* :class:`DelayJitter` — bounded random per-packet delay;
* :class:`LinkFlap` — a periodic down-schedule during which everything
  matching is dropped;
* :class:`VswitchRestart` — wipes the wrapped AC/DC datapath's flow
  table mid-run (the recovery path under test in §4's soft-state
  design);
* :class:`EcnBleach` — rewrites CE marks back to ECT before the
  receiver module counts them (adversarial receiver / broken middlebox);
* :class:`OptionStrip` — removes PACK/FACK feedback options (and INT
  metadata) in transit (option-dropping middlebox; exercises the
  guard's feedback-loss fallback);
* :class:`IntMangler` — strips or corrupts in-band telemetry hop
  stacks and echo digests (repro.obs.int); the sink/view validators'
  counted-degradation contract is the behaviour under test;
* :class:`WorkerKill` — SIGKILLs the process running the run at a
  simulated instant, exactly once across restarts (sentinel-file
  discipline); the crash-recovery path of :mod:`repro.recovery` is the
  subsystem under test.

Faults are composed into a :class:`FaultyDatapath` pipeline via
:func:`install_faults`; every injector draws from its own named stream
of :class:`~repro.sim.rng.RngFactory`, so the same seed reproduces the
exact same fault sequence.  Per-cause counters land in a
:class:`~repro.metrics.collectors.FaultRecorder`.
"""

from .injectors import (
    Corruption,
    DelayJitter,
    Duplication,
    EcnBleach,
    Fault,
    FaultyDatapath,
    IntMangler,
    LinkFlap,
    OptionStrip,
    PacketLoss,
    Reordering,
    Transparent,
    VswitchRestart,
    WorkerKill,
    install_faults,
    is_data,
    is_pure_ack,
)

__all__ = [
    "Corruption",
    "DelayJitter",
    "Duplication",
    "EcnBleach",
    "Fault",
    "FaultyDatapath",
    "IntMangler",
    "LinkFlap",
    "OptionStrip",
    "PacketLoss",
    "Reordering",
    "Transparent",
    "VswitchRestart",
    "WorkerKill",
    "install_faults",
    "is_data",
    "is_pure_ack",
]
