"""Fault injectors and the pipeline that wires them into a host.

A :class:`FaultyDatapath` wraps an inner vSwitch and sits in the host's
packet path in its place.  Faults act on the *wire side* of the inner
datapath, mirroring where real networks misbehave:

* egress: the inner datapath processes the packet first, then the fault
  stages run in order before the packet reaches the NIC;
* ingress: the fault stages run first (the packet is still "on the
  wire"), then the inner datapath sees whatever survives.

Stages that re-emit packets asynchronously (duplication, reordering,
delay) cannot use the single-return vSwitch protocol, so the pipeline
exposes :meth:`FaultyDatapath.resume`: a held or copied packet re-enters
the pipeline at the stage *after* the one that created it and, if it
survives, is emitted through the same exit the in-band path uses.

Determinism: every fault draws from
``RngFactory(seed).stream(f"fault:{kind}")`` — same seed, same kind ⇒
bit-identical fault sequence, independent of other streams.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from ..metrics.collectors import FaultRecorder
from ..net.packet import ECN_ECT0, Packet
from ..sim.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover
    from ..net.host import Host

#: Packet predicate used to scope a fault to a traffic class.
Matcher = Callable[[Packet], bool]


def is_data(pkt: Packet) -> bool:
    """Match packets carrying payload."""
    return pkt.payload_len > 0


def is_pure_ack(pkt: Packet) -> bool:
    """Match payload-less non-SYN ACKs (the feedback/control channel)."""
    return pkt.ack and pkt.payload_len == 0 and not pkt.syn


class Fault:
    """One composable fault stage.

    Subclasses set :attr:`kind` (also the cause name recorded into the
    :class:`~repro.metrics.collectors.FaultRecorder`) and implement
    :meth:`process`; ``direction`` is ``"egress"``, ``"ingress"`` or
    ``"both"``; ``match`` optionally narrows the fault to a traffic
    class (:func:`is_data`, :func:`is_pure_ack`, or any predicate).
    """

    kind = "fault"

    def __init__(self, seed: int = 0, direction: str = "both",
                 match: Optional[Matcher] = None):
        if direction not in ("egress", "ingress", "both"):
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction
        self.match = match
        self.rng = RngFactory(seed).stream(f"fault:{self.kind}")
        self.events = 0          # fault activations (1:1 with records)
        self.pipeline: Optional["FaultyDatapath"] = None

    def attach(self, pipeline: "FaultyDatapath") -> None:
        """Called when the fault joins a pipeline (override to schedule)."""
        self.pipeline = pipeline

    def applies(self, pkt: Packet, direction: str) -> bool:
        if self.direction != "both" and self.direction != direction:
            return False
        return self.match is None or self.match(pkt)

    def process(self, pkt: Packet, pipeline: "FaultyDatapath",
                index: int, direction: str) -> Optional[Packet]:
        """Act on one packet; return it (possibly modified) or None if the
        stage consumed it.  ``index`` is this stage's position, so a stage
        that re-emits later resumes at ``index + 1``."""
        raise NotImplementedError


class PacketLoss(Fault):
    """Drop each matching packet with probability ``rate``."""

    kind = "loss"

    def __init__(self, rate: float, seed: int = 0, direction: str = "both",
                 match: Optional[Matcher] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        super().__init__(seed, direction, match)
        self.rate = rate

    def process(self, pkt, pipeline, index, direction):
        if self.rng.random() < self.rate:
            self.events += 1
            pipeline.record(self.kind)
            return None
        return pkt


class Corruption(Fault):
    """Flip bits in each matching packet with probability ``rate``.

    Checksum-drop semantics: the receiver NIC verifies the TCP/IP
    checksums, so a corrupted packet never reaches the stack — the
    observable effect is a drop, accounted under its own cause (and, on
    a real link, visible in the NIC's error counters rather than the
    switch's).
    """

    kind = "corrupt"

    def __init__(self, rate: float, seed: int = 0, direction: str = "both",
                 match: Optional[Matcher] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("corruption rate must be in [0, 1]")
        super().__init__(seed, direction, match)
        self.rate = rate

    def process(self, pkt, pipeline, index, direction):
        if self.rng.random() < self.rate:
            self.events += 1
            pipeline.record(self.kind)
            return None
        return pkt


class Duplication(Fault):
    """Emit an identical copy alongside each matching packet, with
    probability ``rate`` (switch retransmit bugs, routing loops)."""

    kind = "duplicate"

    def __init__(self, rate: float, seed: int = 0, direction: str = "both",
                 match: Optional[Matcher] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("duplication rate must be in [0, 1]")
        super().__init__(seed, direction, match)
        self.rate = rate

    def process(self, pkt, pipeline, index, direction):
        if self.rng.random() < self.rate:
            self.events += 1
            pipeline.record(self.kind)
            # The copy runs the *remaining* stages independently, so a
            # later loss stage can still kill either twin.
            pipeline.resume(pkt.copy(), index + 1, direction)
        return pkt


class Reordering(Fault):
    """Hold a matching packet back for roughly ``hold_s`` and re-emit it
    behind traffic sent in the meantime, with probability ``rate``."""

    kind = "reorder"

    def __init__(self, rate: float, hold_s: float = 200e-6, seed: int = 0,
                 direction: str = "both", match: Optional[Matcher] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("reorder rate must be in [0, 1]")
        if hold_s <= 0:
            raise ValueError("hold time must be positive")
        super().__init__(seed, direction, match)
        self.rate = rate
        self.hold_s = hold_s

    def process(self, pkt, pipeline, index, direction):
        if self.rng.random() < self.rate:
            self.events += 1
            pipeline.record(self.kind)
            hold = self.hold_s * self.rng.uniform(0.5, 1.5)
            pipeline.sim.schedule(hold, pipeline.resume, pkt, index + 1,
                                  direction)
            return None
        return pkt


class DelayJitter(Fault):
    """Add uniform(0, ``jitter_s``) of delay to each matching packet.

    Unlike the host's monotonic TX jitter, draws are independent per
    packet, so jitter alone can invert the order of close-together
    packets — that is the point.
    """

    kind = "delay"

    def __init__(self, jitter_s: float, rate: float = 1.0, seed: int = 0,
                 direction: str = "both", match: Optional[Matcher] = None):
        if jitter_s <= 0:
            raise ValueError("jitter must be positive")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("delay rate must be in [0, 1]")
        super().__init__(seed, direction, match)
        self.jitter_s = jitter_s
        self.rate = rate

    def process(self, pkt, pipeline, index, direction):
        if self.rate >= 1.0 or self.rng.random() < self.rate:
            self.events += 1
            pipeline.record(self.kind)
            delay = self.rng.uniform(0.0, self.jitter_s)
            pipeline.sim.schedule(delay, pipeline.resume, pkt, index + 1,
                                  direction)
            return None
        return pkt


class LinkFlap(Fault):
    """Link outage schedule: everything matching is dropped while down.

    One outage of ``down_for_s`` per ``period_s``, its start drawn from
    the fault's seeded stream within each period.  The placement draws
    happen in period order, so the schedule is reproducible — but it is
    *not* phase-locked: a strictly periodic outage whose period divides
    the guest's RTO backoff sequence (10, 20, 40 ms...) would swallow
    every retransmission of an unlucky segment forever, a measurement
    artifact rather than a robustness result.
    """

    kind = "link_flap"

    def __init__(self, period_s: float, down_for_s: float, seed: int = 0,
                 direction: str = "both", match: Optional[Matcher] = None):
        if period_s <= 0:
            raise ValueError("flap period must be positive")
        if not 0.0 <= down_for_s <= period_s:
            raise ValueError("down time must be within one period")
        super().__init__(seed, direction, match)
        self.period_s = period_s
        self.down_for_s = down_for_s
        self._period_idx = -1
        self._down_start = 0.0

    def is_down(self, now: float) -> bool:
        if self.down_for_s == 0.0:
            return False
        # Simulation time is monotone, so period placements can be drawn
        # lazily in order without replaying the stream.
        idx = int(now / self.period_s)
        while self._period_idx < idx:
            self._period_idx += 1
            self._down_start = (self._period_idx * self.period_s
                                + self.rng.uniform(
                                    0.0, self.period_s - self.down_for_s))
        return self._down_start <= now < self._down_start + self.down_for_s

    def process(self, pkt, pipeline, index, direction):
        if self.is_down(pipeline.sim.now):
            self.events += 1
            pipeline.record(self.kind)
            return None
        return pkt


class EcnBleach(Fault):
    """Rewrite CE back to ECT on matching packets (adversarial model).

    Models a receiver-side tenant or broken middlebox that clears
    congestion-experienced marks before AC/DC's receiver module can count
    them: the feedback channel keeps reporting total bytes but never a
    marked byte, so DCTCP in the sender vSwitch sees a congestion-free
    network while queues overflow.  The sender guard's bleach heuristic
    (losses with zero marked feedback) exists for exactly this.
    """

    kind = "ecn_bleach"

    def __init__(self, rate: float = 1.0, seed: int = 0,
                 direction: str = "ingress",
                 match: Optional[Matcher] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("bleach rate must be in [0, 1]")
        super().__init__(seed, direction, match)
        self.rate = rate

    def process(self, pkt, pipeline, index, direction):
        if pkt.ce and (self.rate >= 1.0 or self.rng.random() < self.rate):
            self.events += 1
            pipeline.record(self.kind)
            pkt.ecn = ECN_ECT0
        return pkt


class OptionStrip(Fault):
    """Remove the PACK feedback option from matching packets.

    Models a middlebox that drops unknown TCP options: the sender vSwitch
    keeps seeing ACKs but never a feedback report, starving its DCTCP of
    the total/marked counters.  Dedicated FACK packets lose their option
    too and arrive as bare duplicate ACKs.  The guard's feedback-loss
    fallback degrades affected flows to local-signal-only CC.
    """

    kind = "option_strip"

    def __init__(self, rate: float = 1.0, seed: int = 0,
                 direction: str = "both", match: Optional[Matcher] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("strip rate must be in [0, 1]")
        super().__init__(seed, direction, match)
        self.rate = rate

    def process(self, pkt, pipeline, index, direction):
        has_options = (pkt.pack is not None or pkt.int_stack is not None
                       or pkt.int_echo is not None)
        if has_options and (self.rate >= 1.0 or self.rng.random() < self.rate):
            self.events += 1
            pipeline.record(self.kind)
            pkt.pack = None
            pkt.is_fack = False  # without its option it is just a dupack
            # An unknown-option middlebox drops INT metadata the same way.
            pkt.int_stack = None
            pkt.int_echo = None
        return pkt


class IntMangler(Fault):
    """Strip or corrupt in-band telemetry metadata (repro.obs.int).

    ``mode="strip"`` removes hop stacks and echo digests outright (a
    middlebox or legacy switch that cannot carry the metadata);
    ``mode="corrupt"`` rewrites them into shape-invalid garbage (header
    damage the checksum does not cover, or a buggy INT implementation).
    Either way the flow itself must be untouched: the sink/view
    validators degrade a mangled stack or echo to a counted, traced
    "no report" — never an exception, never a packet drop.

    Corruption *replaces* the metadata objects instead of mutating
    them: an echo may be reference-shared between packet duplicates
    (see :meth:`IntEcho` immutability contract).
    """

    kind = "int_mangle"

    def __init__(self, mode: str = "strip", rate: float = 1.0,
                 seed: int = 0, direction: str = "both",
                 match: Optional[Matcher] = None):
        if mode not in ("strip", "corrupt"):
            raise ValueError(f"unknown int-mangle mode {mode!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("mangle rate must be in [0, 1]")
        # Before super(): kind names the rng stream and the fault cause,
        # so the two modes draw independently and are ledgered apart.
        self.kind = f"int_{mode}"
        super().__init__(seed, direction, match)
        self.mode = mode
        self.rate = rate

    def process(self, pkt, pipeline, index, direction):
        if pkt.int_stack is None and pkt.int_echo is None:
            return pkt
        if self.rate < 1.0 and self.rng.random() >= self.rate:
            return pkt
        self.events += 1
        pipeline.record(self.kind)
        if self.mode == "strip":
            pkt.int_stack = None
            pkt.int_echo = None
            return pkt
        if pkt.int_stack is not None:
            # Negative queue depth on the first hop: arity and types
            # survive, the value range does not — exercises the deep
            # validator, not just the isinstance fast path.
            stack = list(pkt.int_stack)
            rec = stack[0]
            stack[0] = (rec[0], -1.0) + rec[2:]
            pkt.int_stack = stack
        echo = pkt.int_echo
        if echo is not None:
            from ..obs.int import IntEcho
            pkt.int_echo = IntEcho(-1, echo.path, echo.hops, echo.stacks)
        return pkt


class VswitchRestart(Fault):
    """Wipe the wrapped datapath's soft state at scheduled instants.

    Not a per-packet fault: :meth:`attach` schedules one event per time
    in ``at``, each calling the inner datapath's ``restart()`` (a no-op
    warning-free skip for datapaths without one, e.g. ``PlainOvs``).
    """

    kind = "vswitch_restart"

    def __init__(self, at: Sequence[float]):
        super().__init__(0, "both", None)
        self.at = tuple(at)

    def attach(self, pipeline: "FaultyDatapath") -> None:
        super().attach(pipeline)
        for t in self.at:
            pipeline.sim.schedule_at(t, self._fire)

    def _fire(self) -> None:
        restart = getattr(self.pipeline.inner, "restart", None)
        if restart is not None:
            restart()
        self.events += 1
        self.pipeline.record(self.kind)

    def applies(self, pkt, direction):
        return False

    def process(self, pkt, pipeline, index, direction):  # pragma: no cover
        return pkt


class WorkerKill(Fault):
    """SIGKILL this process at a simulated instant — exactly once.

    Not a packet fault: it models the *environment* killing the process
    running the enforcement stack (the OOM killer, a failed deploy, an
    operator's fat finger).  SIGKILL is the honest signal to test with —
    no handler runs, no destructor flushes, whatever was not already on
    disk is gone.

    Fire-once semantics must survive the death they cause: a restored
    run resumes from a checkpoint taken *before* the kill instant, so
    any in-object "already fired" flag would be resurrected as
    "not fired" and the process would kill itself forever.  The flag
    therefore lives outside the snapshot, as a sentinel file created
    with ``O_EXCL`` immediately before the kill: the resumed incarnation
    sees the sentinel and sails past the kill point.  One sentinel path
    == one kill, however many times the run is restored.

    Two usage modes:

    * **standalone** — :class:`~repro.recovery.durable.DurableService`
      calls :meth:`maybe_fire` when the engine reaches ``at``, without
      scheduling an engine event, so the kill leaves no trace in the
      calendar and the interrupted run stays byte-comparable to an
      uninterrupted baseline;
    * **chained** — attached to a :class:`FaultyDatapath`,
      :meth:`attach` schedules the kill as an engine event (the
      :class:`VswitchRestart` pattern).  This consumes a sequence
      number, so only compare like-for-like runs.

    ``sig`` exists for tests that want the sentinel discipline without
    actually dying (e.g. ``signal.SIGTERM`` with a handler, or 0).
    """

    kind = "worker_kill"

    def __init__(self, at: float, sentinel, sig: int = signal.SIGKILL):
        super().__init__(0, "both", None)
        if at < 0:
            raise ValueError("kill time must be >= 0")
        self.at = float(at)
        self.sentinel = Path(sentinel)
        self.sig = sig

    def fired(self) -> bool:
        """Has this kill already happened (in any incarnation)?"""
        return self.sentinel.exists()

    def maybe_fire(self) -> bool:
        """Kill the process, unless the sentinel says we already did.

        Returns False when the sentinel existed (or another process won
        the O_EXCL race); does not return at all when the signal is
        lethal.  The sentinel is fsynced before the kill so the
        "already fired" fact itself cannot be lost to the crash.
        """
        self.sentinel.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.sentinel,
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write("fired\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.events += 1
        if self.pipeline is not None:
            self.pipeline.record(self.kind)
        os.kill(os.getpid(), self.sig)
        return True  # reached only for a non-lethal ``sig``

    def attach(self, pipeline: "FaultyDatapath") -> None:
        super().attach(pipeline)
        pipeline.sim.schedule_at(self.at, self.maybe_fire)

    def applies(self, pkt, direction):
        return False

    def process(self, pkt, pipeline, index, direction):  # pragma: no cover
        return pkt


class Transparent:
    """A no-op inner datapath for hosts with no vSwitch of their own."""

    def egress(self, pkt: Packet) -> Optional[Packet]:
        return pkt

    def ingress(self, pkt: Packet) -> Optional[Packet]:
        return pkt


class FaultyDatapath:
    """A vSwitch wrapper running packets through an ordered fault chain.

    Satisfies the :class:`~repro.net.host.VSwitch` protocol, so the host
    drives it exactly like the datapath it wraps.
    """

    def __init__(self, host: "Host", inner, faults: Sequence[Fault],
                 recorder: Optional[FaultRecorder] = None):
        self.host = host
        self.sim = host.sim
        self.inner = inner
        self.faults: List[Fault] = list(faults)
        if recorder is None:
            # Default ledger is the obs adapter bound to the wrapped
            # datapath's trace bus (if any): a traced run sees every
            # injected fault as a ``fault.inject`` event for free.
            from ..obs.adapters import FaultRecorderAdapter
            recorder = FaultRecorderAdapter(getattr(inner, "trace", None))
        self.recorder = recorder
        for fault in self.faults:
            fault.attach(self)

    # ------------------------------------------------------------------
    def record(self, cause: str) -> None:
        self.recorder.record(cause)

    # ------------------------------------------------------------------
    # VSwitch protocol
    # ------------------------------------------------------------------
    def egress(self, pkt: Packet) -> Optional[Packet]:
        out = self.inner.egress(pkt)
        if out is None:
            return None
        return self._run_faults(out, 0, "egress")

    def ingress(self, pkt: Packet) -> Optional[Packet]:
        out = self._run_faults(pkt, 0, "ingress")
        if out is None:
            return None
        return self.inner.ingress(out)

    # ------------------------------------------------------------------
    def _run_faults(self, pkt: Packet, start: int,
                    direction: str) -> Optional[Packet]:
        for i in range(start, len(self.faults)):
            fault = self.faults[i]
            if not fault.applies(pkt, direction):
                continue
            pkt = fault.process(pkt, self, i, direction)
            if pkt is None:
                return None
        return pkt

    def resume(self, pkt: Packet, index: int, direction: str) -> None:
        """Re-enter the chain at ``index`` for a held or copied packet and
        emit through the same exit the in-band path uses."""
        out = self._run_faults(pkt, index, direction)
        if out is None:
            return
        if direction == "egress":
            self.host.wire_out(out)
        else:
            inner_out = self.inner.ingress(out)
            if inner_out is not None:
                self.host.deliver(inner_out)


def install_faults(host: "Host", faults: Sequence[Fault], inner=None,
                   recorder: Optional[FaultRecorder] = None) -> FaultyDatapath:
    """Wrap ``host``'s datapath in a fault chain and attach it.

    ``inner`` defaults to the host's current vSwitch (or a
    :class:`Transparent` stand-in if it has none).
    """
    if inner is None:
        inner = host.vswitch if host.vswitch is not None else Transparent()
    pipeline = FaultyDatapath(host, inner, faults, recorder)
    host.attach_vswitch(pipeline)
    return pipeline
