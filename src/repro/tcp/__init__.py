"""Guest TCP stack: connection state machine + pluggable congestion control."""

from .connection import (
    CLOSED,
    ESTABLISHED,
    FIN_WAIT,
    SYN_RCVD,
    SYN_SENT,
    TIME_WAIT,
    TcpConnection,
)
from . import cc

__all__ = [
    "CLOSED",
    "ESTABLISHED",
    "FIN_WAIT",
    "SYN_RCVD",
    "SYN_SENT",
    "TIME_WAIT",
    "TcpConnection",
    "cc",
]
