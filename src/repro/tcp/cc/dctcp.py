"""DCTCP congestion control for the guest stack (Alizadeh et al.).

The estimator follows the paper and the Linux module (tcp_dctcp.c):

* the receiver echoes CE marks back per ACK (this reproduction ACKs every
  segment, so the echo is exact — the precise-echo state machine of the
  DCTCP paper exists to survive delayed ACKs);
* the sender maintains ``alpha``, an EWMA of the fraction of marked bytes,
  updated once per window (when the cumulative ACK passes the sequence
  snapshot taken at the last update);
* on congestion the window is cut to ``cwnd * (1 - alpha/2)`` at most once
  per window; otherwise growth is NewReno's.

``DCTCP_MIN_CWND_MSS`` is Linux's 2-packet floor, which §5.2 of the AC/DC
paper identifies as the cause of DCTCP's rising incast RTT — AC/DC's
byte-granular RWND can go lower.  The floor is a parameter here so the
ablation bench can reproduce exactly that comparison.
"""


# repro-lint: disable-file=RL001 (guest-stack CC: snd_una/snd_nxt here are the connection's unbounded linear sequence ints, not 32-bit wrapped values)

from __future__ import annotations

from .base import CongestionControl

DCTCP_G = 1.0 / 16.0        # alpha EWMA gain (Linux: dctcp_shift_g = 4)
DCTCP_ALPHA_MAX = 1.0
DCTCP_MIN_CWND_MSS = 2


class Dctcp(CongestionControl):
    """Guest DCTCP with per-window alpha update and proportional decrease."""

    name = "dctcp"

    def __init__(self, conn, min_cwnd_mss: int = DCTCP_MIN_CWND_MSS):
        super().__init__(conn)
        self.alpha = 1.0                 # Linux starts alpha at 1
        self.acked_bytes_total = 0
        self.acked_bytes_ecn = 0
        self.window_end = conn.snd_nxt   # next alpha update boundary
        self.reduced_this_window = False
        self.min_cwnd_mss = min_cwnd_mss

    # ------------------------------------------------------------------
    def on_ack_ecn_info(self, acked_bytes: int, marked: bool) -> None:
        self.acked_bytes_total += acked_bytes
        if marked:
            self.acked_bytes_ecn += acked_bytes
        if self.conn.snd_una >= self.window_end:
            self._update_alpha()

    def _update_alpha(self) -> None:
        if self.acked_bytes_total > 0:
            fraction = self.acked_bytes_ecn / self.acked_bytes_total
        else:
            fraction = 0.0
        self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * fraction
        self.acked_bytes_total = 0
        self.acked_bytes_ecn = 0
        self.window_end = self.conn.snd_nxt
        self.reduced_this_window = False

    # ------------------------------------------------------------------
    def on_ecn_signal(self) -> bool:
        """Proportional cut, at most once per window; suppress the classic
        halve-on-ECE reaction in the connection."""
        if not self.reduced_this_window:
            conn = self.conn
            new_cwnd = int(conn.cwnd * (1.0 - self.alpha / 2.0))
            conn.cwnd = max(new_cwnd, self.min_cwnd())
            conn.ssthresh = conn.cwnd
            self.reduced_this_window = True
        return False

    def ssthresh_after_loss(self) -> int:
        # Loss is a strong signal: Linux applies the alpha cut; the AC/DC
        # datapath (Fig. 5) additionally saturates alpha on loss, which we
        # mirror for parity between guest and vSwitch implementations.
        self.alpha = DCTCP_ALPHA_MAX
        conn = self.conn
        return max(int(conn.cwnd * (1.0 - self.alpha / 2.0)), self.min_cwnd())

    def min_cwnd(self) -> int:
        return self.min_cwnd_mss * self.conn.mss
