"""TCP NewReno (RFC 6582 window dynamics).

The base class already implements Reno's slow start / congestion avoidance
and halve-on-loss; this subclass only pins the name.  It is also the
fallback algorithm AC/DC's in-vSwitch DCTCP uses for its additive-increase
phase ("tcp_cong_avoid advances CWND based on TCP New Reno's algorithm",
§3.2 / Fig. 5).
"""

from __future__ import annotations

from .base import CongestionControl


class Reno(CongestionControl):
    """Classic NewReno: AI = 1 MSS/RTT, MD = 1/2."""

    name = "reno"
