"""HighSpeed TCP (RFC 3649, Floyd) — large-window AIMD.

For windows above ``LOW_WINDOW`` segments, HSTCP uses a response function
that grows the additive-increase a(w) and shrinks the multiplicative
decrease b(w) with the window:

    b(w) = (B_HIGH - 0.5) * (log w - log W_L) / (log W_H - log W_L) + 0.5
    a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w)),   p(w) = 0.078 / w^1.2

Below ``LOW_WINDOW`` it is exactly Reno, per the RFC.
"""

from __future__ import annotations

import math
from typing import Optional

from .base import CongestionControl

LOW_WINDOW = 38.0        # segments; Reno region boundary
HIGH_WINDOW = 83000.0    # segments; design point of the response function
B_HIGH = 0.1             # decrease factor at HIGH_WINDOW


def hstcp_beta(w_segments: float) -> float:
    """Multiplicative-decrease fraction b(w) for window ``w`` (segments)."""
    if w_segments <= LOW_WINDOW:
        return 0.5
    num = math.log(w_segments) - math.log(LOW_WINDOW)
    den = math.log(HIGH_WINDOW) - math.log(LOW_WINDOW)
    return (B_HIGH - 0.5) * (num / den) + 0.5


def hstcp_alpha(w_segments: float) -> float:
    """Additive-increase a(w), in segments per RTT."""
    if w_segments <= LOW_WINDOW:
        return 1.0
    b = hstcp_beta(w_segments)
    p = 0.078 / (w_segments ** 1.2)
    return max(1.0, (w_segments ** 2) * p * 2.0 * b / (2.0 - b))


class HighSpeed(CongestionControl):
    """HSTCP: window-dependent AIMD coefficients."""

    name = "highspeed"

    def on_ack(self, acked_bytes: int, rtt: Optional[float]) -> None:
        conn = self.conn
        if conn.cwnd < conn.ssthresh:
            conn.cwnd = min(conn.cwnd + acked_bytes, conn.max_cwnd)
            return
        w = conn.cwnd / conn.mss
        a = hstcp_alpha(w)
        increase = a * conn.mss * acked_bytes / max(conn.cwnd, 1)
        conn.cwnd = min(int(conn.cwnd + increase), conn.max_cwnd)

    def ssthresh_after_loss(self) -> int:
        conn = self.conn
        b = hstcp_beta(conn.cwnd / conn.mss)
        return max(int(conn.cwnd * (1.0 - b)), self.min_cwnd())
