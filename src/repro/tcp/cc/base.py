"""Pluggable congestion-control interface for the guest TCP stack.

The paper's premise is that Linux congestion control is modular ("DCTCP's
congestion control resides in tcp_dctcp.c and is only about 350 lines of
code", §2.2); this package mirrors that modularity.  A
:class:`CongestionControl` owns only window *policy*; all mechanism (loss
detection, retransmission, flow control) lives in
:class:`~repro.tcp.connection.TcpConnection`.

Windows are in **bytes** throughout (the connection's ``cwnd``); algorithms
that think in packets convert via the connection's MSS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..connection import TcpConnection


class CongestionControl:
    """Base class: NewReno-style slow start and congestion avoidance.

    Subclasses override the hooks they need; the defaults implement the
    canonical behaviour (halve on loss, +1 MSS per RTT in avoidance).
    """

    name = "base"

    def __init__(self, conn: "TcpConnection"):
        self.conn = conn

    # -- growth ----------------------------------------------------------
    def on_ack(self, acked_bytes: int, rtt: Optional[float]) -> None:
        """Called for every ACK that advances ``snd_una`` outside recovery."""
        self.reno_increase(acked_bytes)

    def reno_increase(self, acked_bytes: int) -> None:
        """Slow start below ssthresh, else +MSS per window (per-ACK share)."""
        conn = self.conn
        if conn.cwnd < conn.ssthresh:
            conn.cwnd += acked_bytes
        else:
            # Appropriate byte counting: cwnd += MSS * (acked / cwnd).
            conn.cwnd += max(1, conn.mss * acked_bytes // max(conn.cwnd, 1))
        conn.cwnd = min(conn.cwnd, conn.max_cwnd)

    # -- reductions --------------------------------------------------------
    def ssthresh_after_loss(self) -> int:
        """New ssthresh when loss is detected (bytes)."""
        return max(self.conn.cwnd // 2, self.min_cwnd())

    def on_enter_recovery(self) -> None:
        """Extra bookkeeping when fast recovery starts (e.g. CUBIC epoch)."""

    def on_rto(self) -> None:
        """Extra bookkeeping on a retransmission timeout."""

    def on_ecn_signal(self) -> bool:
        """React to an ECE-marked ACK.

        Returns True if the connection should perform the classic
        once-per-window reduction (cwnd = ssthresh_after_loss()); DCTCP
        returns False and manages its own proportional reduction.
        """
        return True

    def on_ack_ecn_info(self, acked_bytes: int, marked: bool) -> None:
        """Per-ACK ECN accounting (DCTCP's alpha estimator)."""

    # -- floors ------------------------------------------------------------
    def min_cwnd(self) -> int:
        """Linux's 2-packet congestion-window floor."""
        return 2 * self.conn.mss
