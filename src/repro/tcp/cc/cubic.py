"""CUBIC congestion control (Ha, Rhee, Xu — Linux's default).

Implements the published window growth function

    W_cubic(t) = C * (t - K)^3 + W_max,      K = cbrt(W_max * beta / C)

with the TCP-friendliness region (track the window Reno would have) and
fast convergence.  Internally CUBIC thinks in MSS units, as the kernel
does; the connection's ``cwnd`` stays in bytes.
"""

from __future__ import annotations

from typing import Optional

from .base import CongestionControl

#: Standard constants from the CUBIC paper / Linux defaults.
CUBIC_C = 0.4          # scaling factor (MSS / s^3)
CUBIC_BETA = 0.7       # multiplicative decrease factor (cwnd *= beta)


class Cubic(CongestionControl):
    """CUBIC with fast convergence and the TCP-friendly region."""

    name = "cubic"

    def __init__(self, conn):
        super().__init__(conn)
        self.w_max = 0.0            # MSS units
        self.epoch_start: Optional[float] = None
        self.k = 0.0
        self.origin_point = 0.0
        self.w_est = 0.0            # TCP-friendly (Reno-equivalent) window
        self.ack_cnt = 0.0

    # ------------------------------------------------------------------
    def _reset_epoch(self) -> None:
        self.epoch_start = None
        self.ack_cnt = 0.0

    def on_ack(self, acked_bytes: int, rtt: Optional[float]) -> None:
        conn = self.conn
        if conn.cwnd < conn.ssthresh:
            conn.cwnd = min(conn.cwnd + acked_bytes, conn.max_cwnd)
            return
        self._cubic_update(acked_bytes, rtt or conn.srtt or 0.0)

    def _cubic_update(self, acked_bytes: int, rtt: float) -> None:
        conn = self.conn
        mss = conn.mss
        cwnd_mss = conn.cwnd / mss
        now = conn.sim.now
        if self.epoch_start is None:
            self.epoch_start = now
            self.ack_cnt = 0.0
            if cwnd_mss < self.w_max:
                self.k = ((self.w_max - cwnd_mss) / CUBIC_C) ** (1.0 / 3.0)
                self.origin_point = self.w_max
            else:
                self.k = 0.0
                self.origin_point = cwnd_mss
            self.w_est = cwnd_mss
        # Target window one RTT into the future, per the kernel.
        t = now - self.epoch_start + rtt
        target = self.origin_point + CUBIC_C * (t - self.k) ** 3
        if target > cwnd_mss:
            # Spread the increase over the ACKs of one window.
            increment = (target - cwnd_mss) / cwnd_mss
        else:
            increment = 1.0 / (100.0 * cwnd_mss)  # minimal growth
        # TCP-friendly region: emulate Reno's AIMD(1, 0.5->beta) rate.
        self.ack_cnt += acked_bytes / mss
        reno_slope = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
        self.w_est += reno_slope * (acked_bytes / mss) / cwnd_mss
        if self.w_est > cwnd_mss + increment:
            increment = self.w_est - cwnd_mss
        conn.cwnd = min(int(conn.cwnd + increment * mss), conn.max_cwnd)

    # ------------------------------------------------------------------
    def ssthresh_after_loss(self) -> int:
        conn = self.conn
        cwnd_mss = conn.cwnd / conn.mss
        # Fast convergence: release bandwidth faster when w_max shrinks.
        if cwnd_mss < self.w_max:
            self.w_max = cwnd_mss * (1.0 + CUBIC_BETA) / 2.0
        else:
            self.w_max = cwnd_mss
        self._reset_epoch()
        return max(int(conn.cwnd * CUBIC_BETA), self.min_cwnd())

    def on_rto(self) -> None:
        self.w_max = self.conn.cwnd / self.conn.mss
        self._reset_epoch()
