"""TCP Illinois (Liu, Basar, Srikant) — loss+delay hybrid, the most
aggressive stack in the paper's Fig. 1 experiment.

Illinois is AIMD with delay-modulated coefficients: the additive increase
``alpha`` shrinks from ``ALPHA_MAX`` toward ``ALPHA_MIN`` as average
queueing delay grows, and the multiplicative decrease ``beta`` grows from
``BETA_MIN`` to ``BETA_MAX``.  Formulas follow the paper / Linux's
tcp_illinois.c (kappa parametrisation).
"""


# repro-lint: disable-file=RL001 (guest-stack CC: snd_una/snd_nxt here are the connection's unbounded linear sequence ints, not 32-bit wrapped values)

from __future__ import annotations

from typing import Optional

from .base import CongestionControl

ALPHA_MIN = 0.3    # segments per RTT
ALPHA_MAX = 10.0
BETA_MIN = 0.125
BETA_MAX = 0.5
D1_FRACTION = 0.01   # delay below d1 = max increase
D2_FRACTION = 0.1    # delay range for beta modulation
D3_FRACTION = 0.8
WIN_THRESH_MSS = 15  # below this window, plain Reno behaviour


class Illinois(CongestionControl):
    """C-AIMD: concave additive increase, delay-adaptive decrease."""

    name = "illinois"

    def __init__(self, conn):
        super().__init__(conn)
        self.base_rtt = float("inf")
        self.max_rtt = 0.0
        self.rtt_sum = 0.0
        self.rtt_cnt = 0
        self.alpha = ALPHA_MAX
        self.beta = BETA_MIN
        self.next_update_seq = conn.snd_nxt
        self.acked_since_update = 0

    # ------------------------------------------------------------------
    def _update_params(self) -> None:
        """Recompute (alpha, beta) from the average delay of the last RTT."""
        if self.rtt_cnt == 0 or self.base_rtt == float("inf"):
            return
        avg_rtt = self.rtt_sum / self.rtt_cnt
        delay = max(avg_rtt - self.base_rtt, 0.0)
        max_delay = max(self.max_rtt - self.base_rtt, 1e-9)
        cwnd_mss = self.conn.cwnd / self.conn.mss
        if cwnd_mss < WIN_THRESH_MSS:
            self.alpha, self.beta = 1.0, BETA_MAX
            return
        d1 = D1_FRACTION * max_delay
        if delay <= d1:
            self.alpha = ALPHA_MAX
        else:
            # alpha(d) = k1 / (k2 + d), fit so alpha(d1)=max, alpha(dm)=min.
            dm = max_delay
            k1 = (ALPHA_MIN * ALPHA_MAX * (dm - d1)) / (ALPHA_MAX - ALPHA_MIN)
            k2 = k1 / ALPHA_MAX - d1
            self.alpha = max(ALPHA_MIN, k1 / (k2 + delay))
        d2 = D2_FRACTION * max_delay
        d3 = D3_FRACTION * max_delay
        if delay <= d2:
            self.beta = BETA_MIN
        elif delay >= d3:
            self.beta = BETA_MAX
        else:
            self.beta = (BETA_MIN * (d3 - delay) + BETA_MAX * (delay - d2)) / (d3 - d2)

    def on_ack(self, acked_bytes: int, rtt: Optional[float]) -> None:
        conn = self.conn
        if rtt is not None and rtt > 0:
            self.base_rtt = min(self.base_rtt, rtt)
            self.max_rtt = max(self.max_rtt, rtt)
            self.rtt_sum += rtt
            self.rtt_cnt += 1
        if conn.cwnd < conn.ssthresh:
            conn.cwnd = min(conn.cwnd + acked_bytes, conn.max_cwnd)
            return
        self.acked_since_update += acked_bytes
        if conn.snd_una >= self.next_update_seq:
            self._update_params()
            self.next_update_seq = conn.snd_nxt
            self.rtt_sum = 0.0
            self.rtt_cnt = 0
        # alpha segments per RTT, spread per-ACK.
        increase = self.alpha * conn.mss * acked_bytes / max(conn.cwnd, 1)
        conn.cwnd = min(int(conn.cwnd + increase), conn.max_cwnd)

    def ssthresh_after_loss(self) -> int:
        conn = self.conn
        return max(int(conn.cwnd * (1.0 - self.beta)), self.min_cwnd())
