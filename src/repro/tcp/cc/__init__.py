"""Pluggable congestion control registry (mirrors Linux's CC table).

``make_cc("cubic", conn)`` is how a connection binds its algorithm;
register custom algorithms with :func:`register` (the non-conforming stack
used by the policing ablation does exactly this).
"""

from __future__ import annotations

from typing import Callable, Dict, TYPE_CHECKING

from .base import CongestionControl
from .cubic import Cubic
from .dctcp import Dctcp
from .highspeed import HighSpeed
from .illinois import Illinois
from .reno import Reno
from .vegas import Vegas

if TYPE_CHECKING:  # pragma: no cover
    from ..connection import TcpConnection

_REGISTRY: Dict[str, Callable[..., CongestionControl]] = {}


def register(name: str, factory: Callable[..., CongestionControl]) -> None:
    """Add (or replace) an algorithm in the registry."""
    _REGISTRY[name] = factory


def make_cc(name: str, conn: "TcpConnection", **kwargs) -> CongestionControl:
    """Instantiate the named algorithm bound to ``conn``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(conn, **kwargs)


def available() -> list:
    """Names of every registered algorithm."""
    return sorted(_REGISTRY)


for _cls in (Reno, Cubic, Dctcp, Vegas, Illinois, HighSpeed):
    register(_cls.name, _cls)

__all__ = [
    "CongestionControl",
    "Cubic",
    "Dctcp",
    "HighSpeed",
    "Illinois",
    "Reno",
    "Vegas",
    "available",
    "make_cc",
    "register",
]
