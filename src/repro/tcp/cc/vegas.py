"""TCP Vegas (Brakmo & Peterson) — the delay-based stack in Fig. 1/Table 1.

Vegas estimates the backlog it keeps in the network:

    diff = cwnd * (rtt - base_rtt) / rtt        (in segments)

and once per RTT adjusts: grow by one MSS if ``diff < alpha``, shrink by
one MSS if ``diff > beta``, hold otherwise.  ``base_rtt`` is the minimum
RTT observed.  Loss handling falls back to Reno, as in Linux.
"""


# repro-lint: disable-file=RL001 (guest-stack CC: snd_una/snd_nxt here are the connection's unbounded linear sequence ints, not 32-bit wrapped values)

from __future__ import annotations

from typing import Optional

from .base import CongestionControl

VEGAS_ALPHA = 2   # segments of backlog: lower bound
VEGAS_BETA = 4    # segments of backlog: upper bound
VEGAS_GAMMA = 1   # slow-start backlog bound


class Vegas(CongestionControl):
    """Window-based Vegas with once-per-RTT updates."""

    name = "vegas"

    def __init__(self, conn):
        super().__init__(conn)
        self.base_rtt = float("inf")
        self.min_rtt_window = float("inf")   # min RTT within current window
        self.rtt_count = 0
        self.next_update_seq = conn.snd_nxt

    def on_ack(self, acked_bytes: int, rtt: Optional[float]) -> None:
        conn = self.conn
        if rtt is not None and rtt > 0:
            self.base_rtt = min(self.base_rtt, rtt)
            self.min_rtt_window = min(self.min_rtt_window, rtt)
            self.rtt_count += 1
        if conn.snd_una < self.next_update_seq:
            return
        self.next_update_seq = conn.snd_nxt
        if self.rtt_count < 2 or self.min_rtt_window == float("inf"):
            # Not enough samples this window: Reno growth, as Linux does.
            self.reno_increase(acked_bytes)
            self._reset_window()
            return
        rtt = self.min_rtt_window
        mss = conn.mss
        cwnd_seg = conn.cwnd / mss
        diff = cwnd_seg * (rtt - self.base_rtt) / rtt
        if conn.cwnd < conn.ssthresh:
            # Slow start, halted when backlog builds.
            if diff > VEGAS_GAMMA:
                conn.ssthresh = conn.cwnd
                conn.cwnd = max(conn.cwnd - mss, self.min_cwnd())
            else:
                conn.cwnd = min(conn.cwnd * 2, conn.max_cwnd)
        elif diff < VEGAS_ALPHA:
            conn.cwnd = min(conn.cwnd + mss, conn.max_cwnd)
        elif diff > VEGAS_BETA:
            conn.cwnd = max(conn.cwnd - mss, self.min_cwnd())
        self._reset_window()

    def _reset_window(self) -> None:
        self.min_rtt_window = float("inf")
        self.rtt_count = 0
