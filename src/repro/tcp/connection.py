"""Guest TCP connection: the VM's stack in the paper's architecture.

This is a from-scratch TCP with the mechanisms the evaluation exercises:

* three-way handshake with window-scale negotiation (AC/DC snoops it),
* cumulative ACKs + SACK (the testbed sets ``tcp_sack=1``, §5): duplicate
  ACK / SACK-threshold loss detection and scoreboard-driven recovery,
* RTO with exponential backoff and a configurable RTOmin (10 ms in §5),
* flow control against the peer's advertised window — the hook AC/DC's
  enforcement module leans on (§3.3): the sender always respects
  ``min(CWND, RWND)``,
* RFC 3168 ECN negotiation and echo, plus DCTCP's per-ACK precise echo,
* TCP timestamps for RTT sampling (Vegas/Illinois need per-ACK RTTs),
* pluggable congestion control (``repro.tcp.cc``), a ``snd_cwnd_clamp``
  equivalent (``max_cwnd``), Linux's is-cwnd-limited growth gate, and
  optional per-flow pacing (models the rate-limited CUBIC of Fig. 2).

Payload bytes are synthetic: the model tracks byte *counts* and sequence
ranges, never buffers content.  Any byte range can therefore be resent
without remembering original segment boundaries.
"""

# repro-lint: disable-file=RL001 (guest stack: sequence numbers are unbounded Python ints in a linear space, never wrapped; only vSwitch-side code sees the 32-bit circular space)

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from ..sim.engine import Simulator
from ..sim.timers import Timer
from ..net.packet import ECN_ECT0, Packet
from .cc import make_cc

if TYPE_CHECKING:  # pragma: no cover
    from ..net.host import Host

# Connection states (only the ones the evaluation needs).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT = "FIN_WAIT"      # our FIN sent, waiting for its ACK
TIME_WAIT = "TIME_WAIT"    # both sides done

DEFAULT_RCV_BUF = 4 * 1024 * 1024   # Linux-ish default max receive buffer
DEFAULT_WSCALE = 9
INITIAL_WINDOW_SEGMENTS = 10        # RFC 6928, cited in §3.1
DEFAULT_MIN_RTO = 0.010             # §5: RTOmin = 10 ms
INITIAL_RTO = 0.100
MAX_RTO = 2.0
MAX_SACK_BLOCKS = 4


def _merge_interval(intervals: List[Tuple[int, int]], start: int, end: int) -> None:
    """Insert [start, end) into a sorted, disjoint interval list, merging."""
    merged = []
    for s, e in intervals:
        if e < start or s > end:
            merged.append((s, e))
        else:
            start, end = min(start, s), max(end, e)
    merged.append((start, end))
    merged.sort()
    intervals[:] = merged


class TcpConnection:
    """One endpoint of a TCP connection running inside the 'VM'."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        laddr: str,
        lport: int,
        raddr: str,
        rport: int,
        cc: str = "cubic",
        mss: int = 1460,
        ecn: bool = False,
        rcv_buf: int = DEFAULT_RCV_BUF,
        wscale: int = DEFAULT_WSCALE,
        min_rto: float = DEFAULT_MIN_RTO,
        max_cwnd: Optional[int] = None,
        pacing_rate_bps: Optional[float] = None,
        cc_kwargs: Optional[dict] = None,
        ignore_rwnd: bool = False,
        ack_division: int = 0,
        ecn_bleach: bool = False,
    ):
        self.sim = sim
        self.host = host
        self.laddr, self.lport = laddr, lport
        self.raddr, self.rport = raddr, rport
        self.mss = mss
        self.state = CLOSED

        # --- sender state -------------------------------------------------
        self.iss = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = INITIAL_WINDOW_SEGMENTS * mss
        self.ssthresh = 1 << 30
        self.max_cwnd = max_cwnd if max_cwnd is not None else (1 << 30)
        self.peer_rwnd = mss  # until the first window arrives
        self.dupacks = 0
        self.in_recovery = False
        self.recovery_point = 0
        self.after_rto = False
        self.app_bytes_queued = 0     # bytes written but not yet sent
        self.unlimited_data = False   # iperf-style infinite source
        self.fin_pending = False
        self.fin_sent = False
        self.fin_acked = False
        # SACK scoreboard: disjoint sorted [start, end) above snd_una.
        self.sacked: List[Tuple[int, int]] = []
        self._retx_next = 0           # recovery retransmission cursor
        self._retx_pipe = 0           # post-RTO: retransmitted, unacked bytes

        # --- receiver state -------------------------------------------------
        self.irs = 0
        self.rcv_nxt = 0
        self.rcv_buf = rcv_buf
        self.my_wscale = wscale
        self.peer_wscale = 0
        self.ooo: List[Tuple[int, int]] = []   # merged [start, end) intervals
        self.fin_received = False
        self.bytes_delivered = 0

        # --- ECN -------------------------------------------------------------
        self.ecn_requested = ecn
        self.ecn_ok = False           # negotiated with the peer
        self.ece_latched = False      # classic receiver echo state
        self.ecn_reduce_point = 0     # once-per-window classic ECE reaction
        self._cwr_pending = False     # announce our reduction on next data

        # --- RTT / RTO ---------------------------------------------------------
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self.min_rto = min_rto
        self.backoff = 0
        self.rto_timer = Timer(sim, self._on_rto)
        self.timeouts = 0
        self.fast_retransmits = 0
        self.retransmitted_bytes = 0

        self.ignore_rwnd = ignore_rwnd
        # Adversarial receiver models (see repro.guard): split cumulative
        # ACKs into this many sub-ACKs (Savage et al.'s ACK division; 0/1
        # = honest), and/or never echo congestion marks (ECN bleaching).
        if ack_division < 0:
            raise ValueError("ack_division must be >= 0")
        self.ack_division = ack_division
        self.ecn_bleach = ecn_bleach

        # --- pacing (models the Fig. 2 per-flow rate limiter) -------------------
        self.pacing_rate_bps = pacing_rate_bps
        self._pace_until = 0.0
        self._pace_event = None

        # --- stats & hooks --------------------------------------------------------
        self.bytes_acked_total = 0
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[int], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.window_probe: Optional[Callable[["TcpConnection"], None]] = None

        cc_kwargs = cc_kwargs or {}
        self.cc_name = cc
        self.cc = make_cc(cc, self, **cc_kwargs)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def bytes_in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def sacked_bytes(self) -> int:
        return sum(e - s for s, e in self.sacked)

    @property
    def pipe(self) -> int:
        """Conservative estimate of bytes actually in the network."""
        return max(self.bytes_in_flight - self.sacked_bytes, 0)

    @property
    def send_window(self) -> int:
        """The enforceable window: min(CWND, peer RWND).

        A non-conforming stack (``ignore_rwnd=True``, the cheater AC/DC's
        policer exists for, §3.3) disregards the advertised window.
        """
        if self.ignore_rwnd:
            return int(self.cwnd)
        return min(int(self.cwnd), self.peer_rwnd)

    @property
    def data_pending(self) -> bool:
        return self.unlimited_data or self.app_bytes_queued > 0

    def key(self) -> Tuple[str, int, str, int]:
        return (self.laddr, self.lport, self.raddr, self.rport)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = SYN_SENT
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self._send_syn()
        self._arm_rto()

    def _send_syn(self, ack: bool = False, tsecr: float = -1.0) -> None:
        syn = self._make_packet(seq=self.iss, syn=True, ack=ack)
        syn.wscale = self.my_wscale
        syn.tsecr = tsecr
        if ack:
            syn.ece = self.ecn_ok
        elif self.ecn_requested:
            syn.ece = True
            syn.cwr = True
        self._transmit(syn)

    def send(self, nbytes: int) -> None:
        """Queue application bytes for transmission."""
        if nbytes < 0:
            raise ValueError("cannot send a negative byte count")
        self.app_bytes_queued += nbytes
        self._try_send()

    def send_forever(self) -> None:
        """Switch to an unlimited (iperf-style) data source."""
        self.unlimited_data = True
        self._try_send()

    def close(self) -> None:
        """Half-close after all queued data is delivered."""
        self.fin_pending = True
        self._try_send()

    # ------------------------------------------------------------------
    # Packet construction / emission
    # ------------------------------------------------------------------
    def _make_packet(self, seq: int = 0, payload_len: int = 0, *,
                     syn: bool = False, fin: bool = False,
                     ack: bool = False) -> Packet:
        pkt = Packet(
            src=self.laddr, sport=self.lport, dst=self.raddr, dport=self.rport,
            seq=seq, payload_len=payload_len, syn=syn, fin=fin, ack=ack,
            tsval=self.sim.now,
        )
        if ack:
            pkt.ack_seq = self.rcv_nxt
        pkt.set_advertised_window(self._advertise_window(), self.my_wscale)
        return pkt

    def _advertise_window(self) -> int:
        """Receive window we advertise (the app drains instantly)."""
        return self.rcv_buf

    def _transmit(self, pkt: Packet) -> None:
        """Hand the packet to the host (which runs it through the vSwitch)."""
        if self.ecn_ok and pkt.payload_len > 0:
            pkt.ecn = ECN_ECT0
            if self._cwr_pending:
                pkt.cwr = True
                self._cwr_pending = False
        self.host.output(pkt)

    def _send_ack(self, tsecr: float, ece: Optional[bool] = None) -> None:
        ackpkt = self._make_packet(seq=self.snd_nxt, ack=True)
        ackpkt.tsecr = tsecr
        if ece is None:
            ece = self.ece_latched
        ackpkt.ece = bool(ece and self.ecn_ok)
        if self.ooo:
            ackpkt.sack_blocks = tuple(self.ooo[:MAX_SACK_BLOCKS])
        self._transmit(ackpkt)

    # ------------------------------------------------------------------
    # Sending data
    # ------------------------------------------------------------------
    def _try_send(self) -> None:
        if self.state not in (ESTABLISHED, FIN_WAIT):
            return
        if self.in_recovery:
            self._recovery_send()
        else:
            while self._send_one():
                pass
        self._maybe_send_fin()

    def _send_one(self) -> bool:
        """Send one new segment if window, data, and pacing allow."""
        if not self.data_pending:
            return False
        window_edge = self.snd_una + self.send_window
        available = window_edge - self.snd_nxt
        if available <= 0:
            return False
        remaining = (1 << 62) if self.unlimited_data else self.app_bytes_queued
        seg = min(self.mss, remaining)
        if seg <= 0:
            return False
        if available < seg:
            # Sub-MSS usable window: only send a short segment when the
            # pipe is empty (silly-window avoidance, but no deadlock when
            # AC/DC enforces byte-granular windows below one MSS).
            if self.bytes_in_flight > 0:
                return False
            seg = min(seg, available)
        if not self._pacing_gate(seg):
            return False
        pkt = self._make_packet(seq=self.snd_nxt, payload_len=seg, ack=True)
        self.snd_nxt += seg
        if not self.unlimited_data:
            self.app_bytes_queued -= seg
        self._transmit(pkt)
        if not self.rto_timer.armed:
            self._arm_rto()
        if self.window_probe is not None:
            self.window_probe(self)
        return True

    def _pacing_gate(self, seg_bytes: int) -> bool:
        """Token-style pacing; returns False and self-reschedules if early."""
        if self.pacing_rate_bps is None:
            return True
        now = self.sim.now
        if self._pace_until > now + 1e-12:
            if self._pace_event is None or self._pace_event.cancelled:
                self._pace_event = self.sim.schedule_at(
                    self._pace_until, self._pace_fire)
            return False
        start = max(self._pace_until, now)
        self._pace_until = start + seg_bytes * 8.0 / self.pacing_rate_bps
        return True

    def _pace_fire(self) -> None:
        self._pace_event = None
        self._try_send()

    def _maybe_send_fin(self) -> None:
        if (self.fin_pending and not self.fin_sent
                and not self.data_pending):
            fin = self._make_packet(seq=self.snd_nxt, ack=True, fin=True)
            self.fin_sent = True
            self.snd_nxt += 1
            self.state = FIN_WAIT
            self._transmit(fin)
            if not self.rto_timer.armed:
                self._arm_rto()

    # ------------------------------------------------------------------
    # Retransmission machinery (SACK scoreboard)
    # ------------------------------------------------------------------
    def _next_hole(self, from_seq: int) -> Optional[Tuple[int, int]]:
        """First presumed-lost [start, end) at or after ``from_seq``.

        In fast recovery a gap counts as lost only if SACKed data exists
        *above* it (RFC 6675's IsLost intuition) — un-SACKed bytes beyond
        the highest SACK block are merely in flight, and retransmitting
        them floods the receiver with duplicates.  After an RTO everything
        unacked below ``recovery_point`` is presumed lost.
        """
        if self.after_rto:
            limit = self.recovery_point
        elif self.sacked:
            limit = min(self.recovery_point, self.sacked[-1][0])
        else:
            # No SACK information: classic fast retransmit of one segment.
            limit = min(self.recovery_point, self.snd_una + self.mss)
        seq = max(from_seq, self.snd_una)
        while seq < limit:
            blocked = False
            for s, e in self.sacked:
                if s <= seq < e:
                    seq = e
                    blocked = True
                    break
                if s > seq:
                    return (seq, min(seq + self.mss, s, limit))
            if not blocked:
                return (seq, min(seq + self.mss, limit))
        return None

    def _retransmit_range(self, start: int, end: int) -> None:
        length = end - start
        if self.fin_sent and end == self.snd_nxt:
            length -= 1  # the FIN slot carries no payload
        if length > 0:
            pkt = self._make_packet(seq=start, payload_len=length, ack=True)
            self._transmit(pkt)
            self.retransmitted_bytes += length
        elif self.fin_sent and start == self.snd_nxt - 1:
            pkt = self._make_packet(seq=start, ack=True, fin=True)
            self._transmit(pkt)

    def _recovery_pipe(self) -> int:
        """In-network estimate during recovery.

        After an RTO everything unacked is presumed lost, so only bytes we
        have retransmitted since count; in fast recovery the conservative
        ``pipe`` (in flight minus SACKed) applies.
        """
        return self._retx_pipe if self.after_rto else self.pipe

    def _recovery_send(self) -> None:
        """RFC 6675-flavoured recovery: fill the pipe with retransmissions
        of scoreboard holes, then (fast recovery only) new data."""
        budget = self.send_window - self._recovery_pipe()
        while budget >= self.mss or (budget > 0 and self._recovery_pipe() == 0):
            hole = self._next_hole(self._retx_next)
            if hole is not None:
                start, end = hole
                self._retransmit_range(start, end)
                self._retx_next = end
                self._retx_pipe += end - start
                budget -= end - start
                continue
            # No holes left below recovery_point: forward-transmit.
            if self.after_rto or not self._send_new_in_recovery():
                break
            budget = self.send_window - self._recovery_pipe()
        if not self.rto_timer.armed and self.bytes_in_flight > 0:
            self._arm_rto()

    def _send_new_in_recovery(self) -> bool:
        if not self.data_pending:
            return False
        if self.snd_nxt - self.snd_una >= self.send_window + self.sacked_bytes:
            return False
        remaining = (1 << 62) if self.unlimited_data else self.app_bytes_queued
        seg = min(self.mss, remaining)
        if seg <= 0:
            return False
        pkt = self._make_packet(seq=self.snd_nxt, payload_len=seg, ack=True)
        self.snd_nxt += seg
        if not self.unlimited_data:
            self.app_bytes_queued -= seg
        self._transmit(pkt)
        return True

    # ------------------------------------------------------------------
    # RTO
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self.rto_timer.start(self.rto * (1 << self.backoff))

    def _on_rto(self) -> None:
        if self.state == CLOSED:
            return
        if self.state == SYN_SENT:
            self.timeouts += 1
            self.backoff = min(self.backoff + 1, 6)
            self._send_syn()
            self._arm_rto()
            return
        if self.bytes_in_flight == 0:
            return
        self.timeouts += 1
        self.cc.on_rto()
        self.ssthresh = self.cc.ssthresh_after_loss()
        self.cwnd = self.mss
        # RTO recovery reuses the scoreboard machinery: every non-SACKed
        # byte below recovery_point is presumed lost and refilled as the
        # (slow-starting) window allows.
        self.in_recovery = True
        self.after_rto = True
        self.recovery_point = self.snd_nxt
        self.dupacks = 0
        self._retx_next = self.snd_una
        self._retx_pipe = 0
        self.backoff = min(self.backoff + 1, 6)
        self._recovery_send()
        self._arm_rto()

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def handle_packet(self, pkt: Packet) -> None:
        """Entry point from the host demux (post-vSwitch ingress)."""
        if pkt.rst:
            self._enter_closed()
            return
        if pkt.syn:
            self._handle_syn(pkt)
            return
        if self.state == CLOSED:
            return
        if self.state == SYN_RCVD and pkt.ack and pkt.ack_seq >= self.iss + 1:
            self._establish()
        if pkt.ack:
            self._handle_ack(pkt)
        if pkt.payload_len > 0:
            self._handle_data(pkt)
        if pkt.fin:
            self._handle_fin(pkt)

    # -- handshake -------------------------------------------------------
    def _handle_syn(self, pkt: Packet) -> None:
        if pkt.ack:  # SYN-ACK for our active open
            if self.state != SYN_SENT:
                return
            self.irs = pkt.seq
            self.rcv_nxt = pkt.seq + 1
            self.peer_wscale = pkt.wscale or 0
            self.peer_rwnd = pkt.advertised_window(self.peer_wscale)
            self.ecn_ok = self.ecn_requested and pkt.ece
            self.snd_una = pkt.ack_seq
            self.rto_timer.stop()
            self.backoff = 0
            # Seed the RTT estimator from the handshake, as Linux does.
            handshake_rtt = self._rtt_sample(pkt)
            if handshake_rtt is not None:
                self._update_rtt(handshake_rtt)
            self._establish()
            self._send_ack(tsecr=pkt.tsval)
            self._try_send()
        else:  # passive side receives SYN
            if self.state not in (CLOSED, SYN_RCVD):
                return
            self.irs = pkt.seq
            self.rcv_nxt = pkt.seq + 1
            self.peer_wscale = pkt.wscale or 0
            self.peer_rwnd = pkt.advertised_window(self.peer_wscale)
            self.ecn_ok = self.ecn_requested and pkt.ece and pkt.cwr
            self.state = SYN_RCVD
            self.snd_una = self.iss
            self.snd_nxt = self.iss + 1
            self._send_syn(ack=True, tsecr=pkt.tsval)
            self._arm_rto()

    def _establish(self) -> None:
        if self.state in (ESTABLISHED, FIN_WAIT, TIME_WAIT):
            return
        self.state = ESTABLISHED
        self.established_at = self.sim.now
        self.rto_timer.stop()
        self.backoff = 0
        if self.on_established is not None:
            self.on_established()

    # -- ACK processing ------------------------------------------------------
    def _update_scoreboard(self, pkt: Packet) -> int:
        """Merge the ACK's SACK blocks; returns newly-SACKed byte count."""
        if not pkt.sack_blocks:
            return 0
        before = self.sacked_bytes
        for s, e in pkt.sack_blocks:
            if e > self.snd_una:
                _merge_interval(self.sacked, max(s, self.snd_una), e)
        return self.sacked_bytes - before

    def _prune_scoreboard(self) -> None:
        self.sacked = [(max(s, self.snd_una), e)
                       for s, e in self.sacked if e > self.snd_una]

    def _handle_ack(self, pkt: Packet) -> None:
        if self.state not in (ESTABLISHED, FIN_WAIT):
            return
        self.peer_rwnd = pkt.advertised_window(self.peer_wscale)
        newly_sacked = self._update_scoreboard(pkt)
        ack_seq = pkt.ack_seq
        if ack_seq > self.snd_una:
            self._handle_new_ack(pkt, ack_seq)
        elif (ack_seq == self.snd_una and pkt.payload_len == 0
              and not pkt.fin and self.bytes_in_flight > 0):
            self._handle_dupack(pkt, newly_sacked)
        self._try_send()
        if self.window_probe is not None:
            self.window_probe(self)

    def _rtt_sample(self, pkt: Packet) -> Optional[float]:
        if pkt.tsecr < 0:
            return None  # no timestamp echo on this packet
        sample = self.sim.now - pkt.tsecr
        return sample if sample >= 0 else None

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = max(self.min_rto, min(self.srtt + 4 * self.rttvar, MAX_RTO))

    def _cwnd_limited(self, acked: int) -> bool:
        """Linux's is_cwnd_limited gate: only grow cwnd when cwnd (not the
        app or the peer's window) was the binding constraint.

        Mirrors tcp_is_cwnd_limited(): slow start keeps growing while
        cwnd < 2 * max_packets_out — so under AC/DC a VM whose RWND is the
        limiter parks its CWND near twice the enforced window (exactly the
        Fig. 10 picture) and AC/DC retains instant upward headroom.
        """
        used = self.bytes_in_flight + acked
        if self.cwnd < self.ssthresh:
            return self.cwnd < 2 * used
        return used + self.mss >= self.cwnd

    def _handle_new_ack(self, pkt: Packet, ack_seq: int) -> None:
        acked = ack_seq - self.snd_una
        fin_ack = False
        if self.fin_sent and ack_seq >= self.snd_nxt:
            fin_ack = True
            acked -= 1  # the FIN's sequence slot carries no data
        self.snd_una = ack_seq
        self._prune_scoreboard()
        self.bytes_acked_total += max(acked, 0)
        self.backoff = 0
        rtt = self._rtt_sample(pkt)
        if rtt is not None:
            self._update_rtt(rtt)
        # DCTCP-style per-ACK ECN accounting (no-op for other algorithms).
        self.cc.on_ack_ecn_info(max(acked, 0), pkt.ece)

        if self.in_recovery:
            self._retx_pipe = max(0, self._retx_pipe - max(acked, 0))
            if ack_seq >= self.recovery_point:
                self.in_recovery = False
                self.dupacks = 0
                if self.after_rto:
                    self.after_rto = False  # keep the slow-started cwnd
                else:
                    self.cwnd = self.ssthresh
            else:
                # Partial ACK: keep the retransmission cursor honest and
                # let _try_send (recovery path) continue filling holes.
                self._retx_next = max(self._retx_next, self.snd_una)
                if self.after_rto and self._cwnd_limited(acked):
                    # Post-timeout recovery slow-starts the refill rate.
                    self.cc.on_ack(max(acked, 0), rtt)
        else:
            self.dupacks = 0
            if pkt.ece and self.ecn_ok:
                self._handle_ece()
            if not (pkt.ece and self.ecn_ok and self.cc_name != "dctcp"):
                if self._cwnd_limited(acked):
                    self.cc.on_ack(max(acked, 0), rtt)

        if self.bytes_in_flight > 0:
            self._arm_rto()
        else:
            self.rto_timer.stop()
        if fin_ack and not self.fin_acked:
            self.fin_acked = True
            self._maybe_finish_close()

    def _handle_ece(self) -> None:
        """Classic once-per-window ECE reaction (DCTCP overrides it)."""
        if not self.cc.on_ecn_signal():
            return  # algorithm handled the reduction itself
        if self.snd_una < self.ecn_reduce_point:
            return  # already reduced in this window
        self.ssthresh = self.cc.ssthresh_after_loss()
        self.cwnd = self.ssthresh
        self.ecn_reduce_point = self.snd_nxt
        self._cwr_pending = True

    def _handle_dupack(self, pkt: Packet, newly_sacked: int) -> None:
        self.dupacks += 1
        self.cc.on_ack_ecn_info(0, pkt.ece)
        if self.in_recovery:
            if self.after_rto:
                # A SACKed retransmission leaves the estimated pipe.
                self._retx_pipe = max(0, self._retx_pipe - newly_sacked)
            return  # _try_send's recovery path reacts to the new SACK info
        loss = self.dupacks >= 3 or self.sacked_bytes > 3 * self.mss
        if loss:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self.fast_retransmits += 1
        self.cc.on_enter_recovery()
        self.ssthresh = self.cc.ssthresh_after_loss()
        self.cwnd = self.ssthresh
        self.in_recovery = True
        self.after_rto = False
        self.recovery_point = self.snd_nxt
        self._retx_next = self.snd_una
        self._arm_rto()

    # -- data reception ----------------------------------------------------
    def _handle_data(self, pkt: Packet) -> None:
        if self.state not in (ESTABLISHED, FIN_WAIT, SYN_RCVD):
            return
        start, end = pkt.seq, pkt.end_seq
        prev_rcv_nxt = self.rcv_nxt
        ce = pkt.ce
        if self.ecn_ok and not self.ecn_bleach:
            if self.cc_name == "dctcp":
                self.ece_latched = ce  # precise per-ACK echo
            elif ce:
                self.ece_latched = True
        if pkt.cwr and self.cc_name != "dctcp":
            self.ece_latched = False
        delivered = 0
        if end <= self.rcv_nxt:
            pass  # pure duplicate
        elif start <= self.rcv_nxt:
            delivered = end - self.rcv_nxt
            self.rcv_nxt = end
            delivered += self._drain_ooo()
        else:
            _merge_interval(self.ooo, start, end)
        if delivered:
            self.bytes_delivered += delivered
            if self.on_data is not None:
                self.on_data(delivered)
        if self.ack_division > 1 and self.rcv_nxt - prev_rcv_nxt > 1:
            self._send_divided_acks(prev_rcv_nxt, tsecr=pkt.tsval)
        else:
            self._send_ack(tsecr=pkt.tsval)

    def _send_divided_acks(self, prev_rcv_nxt: int, tsecr: float) -> None:
        """ACK division (Savage et al. 1999): acknowledge one delivery as
        many sub-MSS cumulative ACKs, tricking packet-counting or
        carelessly byte-counting senders into inflated window growth."""
        total = self.rcv_nxt - prev_rcv_nxt
        k = min(self.ack_division, total)
        step = total // k
        points = [prev_rcv_nxt + step * i for i in range(1, k)]
        points.append(self.rcv_nxt)
        for ack_seq in points:
            ackpkt = self._make_packet(seq=self.snd_nxt, ack=True)
            ackpkt.ack_seq = ack_seq
            ackpkt.tsecr = tsecr
            ackpkt.ece = bool(self.ece_latched and self.ecn_ok)
            if self.ooo:
                ackpkt.sack_blocks = tuple(self.ooo[:MAX_SACK_BLOCKS])
            self._transmit(ackpkt)

    def _drain_ooo(self) -> int:
        delivered = 0
        while self.ooo and self.ooo[0][0] <= self.rcv_nxt:
            s, e = self.ooo.pop(0)
            if e > self.rcv_nxt:
                delivered += e - self.rcv_nxt
                self.rcv_nxt = e
        return delivered

    # -- teardown -------------------------------------------------------------
    def _handle_fin(self, pkt: Packet) -> None:
        fin_seq = pkt.seq + pkt.payload_len
        if fin_seq > self.rcv_nxt:
            return  # FIN beyond a hole; will be retransmitted
        if not self.fin_received:
            self.fin_received = True
            self.rcv_nxt = max(self.rcv_nxt, fin_seq + 1)
        self._send_ack(tsecr=pkt.tsval)
        self._maybe_finish_close()

    def _maybe_finish_close(self) -> None:
        if self.fin_received and (not self.fin_sent or self.fin_acked):
            if self.fin_sent and self.fin_acked:
                self._enter_closed()
            elif not self.fin_pending and not self.fin_sent:
                # Peer closed first; mirror it so both sides converge.
                self.close()

    def _enter_closed(self) -> None:
        if self.state == CLOSED and self.closed_at is not None:
            return
        self.state = CLOSED
        self.closed_at = self.sim.now
        self.rto_timer.stop()
        if self.on_close is not None:
            self.on_close()
