"""Shared switch buffer with dynamic per-queue thresholding.

The paper's testbed switch (IBM G8264) has a 9 MB packet buffer shared by
forty-eight 10 G ports and a *dynamic buffer allocation scheme* that the
Fig. 20 experiment deliberately pressures.  We model the standard Dynamic
Threshold (DT) algorithm (Choudhury & Hahne): a queue may grow up to

    limit = alpha * (capacity - total_used)

so a single congested port can claim ``alpha / (1 + alpha)`` of the buffer,
and as more ports congest, each one's share shrinks — exactly the coupling
Fig. 20 exercises by congesting 47 of 48 ports at once.
"""

from __future__ import annotations

from typing import Dict


class SharedBuffer:
    """Byte-accounted shared memory pool with Dynamic Threshold admission."""

    def __init__(self, capacity_bytes: int, dt_alpha: float = 1.0):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        if dt_alpha <= 0:
            raise ValueError("DT alpha must be positive")
        self.capacity = capacity_bytes
        self.dt_alpha = dt_alpha
        self.used = 0
        #: High-water mark of ``used`` (telemetry; never read by the DT
        #: admission math).
        self.peak_used = 0
        self._queues: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def register_queue(self, queue_id: int) -> None:
        self._queues.setdefault(queue_id, 0)

    def queue_bytes(self, queue_id: int) -> int:
        return self._queues.get(queue_id, 0)

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def queued_total(self) -> int:
        """Sum of all per-queue occupancies (the sanitizer audits this
        against ``used``; they are equal unless accounting leaked)."""
        return sum(self._queues.values())

    def threshold(self) -> float:
        """Current DT admission limit for any single queue."""
        return self.dt_alpha * self.free

    # ------------------------------------------------------------------
    def try_admit(self, queue_id: int, nbytes: int) -> bool:
        """Admit ``nbytes`` into ``queue_id`` if DT and capacity allow.

        Returns True (and charges the pool) on success, False on a tail
        drop.  Admission compares the queue's *current* length to the
        dynamic threshold, matching the classic DT formulation.
        """
        occupancy = self._queues.setdefault(queue_id, 0)
        if nbytes > self.free:
            return False
        if occupancy + nbytes > self.threshold():
            return False
        self._queues[queue_id] = occupancy + nbytes
        self.used += nbytes
        if self.used > self.peak_used:
            self.peak_used = self.used
        return True

    def release(self, queue_id: int, nbytes: int) -> None:
        """Return ``nbytes`` from ``queue_id`` to the pool (on dequeue)."""
        occupancy = self._queues.get(queue_id, 0)
        if nbytes > occupancy:
            raise ValueError(
                f"queue {queue_id} releasing {nbytes} B but holds {occupancy} B"
            )
        self._queues[queue_id] = occupancy - nbytes
        self.used -= nbytes
