"""Shared switch buffer with dynamic per-queue thresholding.

The paper's testbed switch (IBM G8264) has a 9 MB packet buffer shared by
forty-eight 10 G ports and a *dynamic buffer allocation scheme* that the
Fig. 20 experiment deliberately pressures.  We model the standard Dynamic
Threshold (DT) algorithm (Choudhury & Hahne): a queue may grow up to

    limit = alpha * (capacity - total_used)

so a single congested port can claim ``alpha / (1 + alpha)`` of the buffer,
and as more ports congest, each one's share shrinks — exactly the coupling
Fig. 20 exercises by congesting 47 of 48 ports at once.

Occupancy composition (the hybrid-fidelity coupling)
----------------------------------------------------
The fluid tier (``repro.fluid``) does not enqueue packets; it charges its
per-port backlog into the pool as an **overlay**: ``set_overlay`` installs
the fluid bytes for a queue, ``occupancy`` composes packet + fluid bytes
(what WRED sees), and ``free`` subtracts the overlay so DT admission on
the packet path feels fluid pressure exactly as it would feel packets.
Packet-side accounting (``used``, ``queue_bytes``, ``queued_total``) stays
packet-only — the sanitizer's byte-conservation audit is against packets
the datapath actually offered, and composing fluid bytes into it would
make the tripwire fire on correct runs.  With no overlay installed every
composed reading degenerates to its packet-only value, which is what
keeps a zero-background hybrid run byte-identical to pure-packet mode.
"""

from __future__ import annotations

from typing import Dict


class SharedBuffer:
    """Byte-accounted shared memory pool with Dynamic Threshold admission."""

    def __init__(self, capacity_bytes: int, dt_alpha: float = 1.0):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        if dt_alpha <= 0:
            raise ValueError("DT alpha must be positive")
        self.capacity = capacity_bytes
        self.dt_alpha = dt_alpha
        self.used = 0
        #: High-water mark of total occupancy, packet + fluid overlay
        #: (telemetry; never read by the DT admission math).
        self.peak_used = 0
        self._queues: Dict[int, int] = {}
        #: Fluid-tier occupancy charged per queue (see module docstring).
        self._overlay: Dict[int, int] = {}
        #: Sum of all overlay charges (kept incrementally: ``free`` is on
        #: the packet tier's per-packet admission path).
        self.overlay_total = 0

    # ------------------------------------------------------------------
    def register_queue(self, queue_id: int) -> None:
        self._queues.setdefault(queue_id, 0)

    def queue_bytes(self, queue_id: int) -> int:
        """Packet-tier bytes queued for ``queue_id`` (overlay excluded)."""
        return self._queues.get(queue_id, 0)

    def occupancy(self, queue_id: int) -> int:
        """Composed occupancy: packet bytes plus any fluid overlay.

        This is the reading the WRED/ECN profile and any congestion
        signal should use — it is what a real shared-memory switch's
        queue-depth register would show with the background load present.
        """
        return self._queues.get(queue_id, 0) + self._overlay.get(queue_id, 0)

    def overlay_bytes(self, queue_id: int) -> int:
        return self._overlay.get(queue_id, 0)

    @property
    def free(self) -> int:
        return self.capacity - self.used - self.overlay_total

    def queued_total(self) -> int:
        """Sum of all per-queue occupancies (the sanitizer audits this
        against ``used``; they are equal unless accounting leaked)."""
        return sum(self._queues.values())

    def threshold(self) -> float:
        """Current DT admission limit for any single queue."""
        return self.dt_alpha * self.free

    # ------------------------------------------------------------------
    def try_admit(self, queue_id: int, nbytes: int) -> bool:
        """Admit ``nbytes`` into ``queue_id`` if DT and capacity allow.

        Returns True (and charges the pool) on success, False on a tail
        drop.  Admission compares the queue's *current* length to the
        dynamic threshold, matching the classic DT formulation.
        """
        occupancy = self._queues.setdefault(queue_id, 0)
        if nbytes > self.free:
            return False
        if occupancy + nbytes > self.threshold():
            return False
        self._queues[queue_id] = occupancy + nbytes
        self.used += nbytes
        total = self.used + self.overlay_total
        if total > self.peak_used:
            self.peak_used = total
        return True

    def release(self, queue_id: int, nbytes: int) -> None:
        """Return ``nbytes`` from ``queue_id`` to the pool (on dequeue)."""
        occupancy = self._queues.get(queue_id, 0)
        if nbytes > occupancy:
            raise ValueError(
                f"queue {queue_id} releasing {nbytes} B but holds {occupancy} B"
            )
        self._queues[queue_id] = occupancy - nbytes
        self.used -= nbytes

    # ------------------------------------------------------------------
    # Fluid-tier occupancy composition (see module docstring)
    # ------------------------------------------------------------------
    def set_overlay(self, queue_id: int, nbytes: int) -> None:
        """Install the fluid tier's occupancy for ``queue_id``.

        Replaces (not adds to) the queue's previous overlay charge.  The
        caller — the coupling layer — is responsible for capping its
        backlog to what DT admission allows; charging past physical
        capacity is a coupling bug and raises.
        """
        if nbytes < 0:
            raise ValueError(f"overlay must be non-negative, got {nbytes!r}")
        prev = self._overlay.get(queue_id, 0)
        delta = nbytes - prev
        if delta > 0 and self.used + self.overlay_total + delta > self.capacity:
            raise ValueError(
                f"overlay for queue {queue_id} would charge "
                f"{self.used + self.overlay_total + delta}B into a "
                f"{self.capacity}B pool")
        if nbytes:
            self._overlay[queue_id] = nbytes
        else:
            self._overlay.pop(queue_id, None)
        self.overlay_total += delta
        total = self.used + self.overlay_total
        if total > self.peak_used:
            self.peak_used = total
