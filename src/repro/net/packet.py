"""Packet and header model.

AC/DC works entirely by inspecting and rewriting TCP/IP headers in the
vSwitch datapath, so the reproduction models the header fields explicitly
rather than treating packets as opaque blobs:

* the 5-tuple the flow table hashes on (§4),
* sequence/ACK numbers the conntrack infers CC state from (§3.1),
* the IP ECN codepoint and TCP ECE/CWR bits that the sender/receiver
  modules set and strip (§3.2),
* the 16-bit receive window plus the window-scale option that the
  enforcement module rewrites (§3.3),
* TCP options: window scale on SYNs, and the 8-byte AC/DC PACK feedback
  option (total bytes / ECN-marked bytes seen at the receiver vSwitch),
* the reserved-bit flag AC/DC uses to remember whether the VM itself
  negotiated ECN (``vm_ect``).

Sizes are in bytes.  Sequence numbers live in TCP's 32-bit circular
space: the :func:`seq_lt` family implements RFC 1982-style serial
arithmetic so flows that transfer more than 4 GB (or start near the top
of the space) compare correctly across the wrap.  The vSwitch-side
consumers (conntrack, the policer, the vSwitch CC gates) all go through
these helpers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

# --- 32-bit sequence space (RFC 1982 serial arithmetic) ----------------
SEQ_SPACE = 1 << 32
SEQ_MASK = SEQ_SPACE - 1
SEQ_HALF = 1 << 31


def seq_add(seq: int, n: int) -> int:
    """``seq + n`` wrapped into the 32-bit sequence space."""
    return (seq + n) & SEQ_MASK


def seq_delta(a: int, b: int) -> int:
    """Signed circular distance ``a - b`` in [-2^31, 2^31).

    Positive when ``a`` is ahead of ``b`` by less than half the space —
    the serial-arithmetic notion of "later" that survives wraparound.
    """
    return ((a - b + SEQ_HALF) & SEQ_MASK) - SEQ_HALF


def seq_lt(a: int, b: int) -> bool:
    """True if ``a`` precedes ``b`` in the circular sequence space."""
    return seq_delta(a, b) < 0


def seq_leq(a: int, b: int) -> bool:
    return seq_delta(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    """True if ``a`` follows ``b`` in the circular sequence space."""
    return seq_delta(a, b) > 0


def seq_geq(a: int, b: int) -> bool:
    return seq_delta(a, b) >= 0

# --- IP ECN codepoints (RFC 3168) -------------------------------------
ECN_NOT_ECT = 0  # not ECN-capable transport
ECN_ECT0 = 2     # ECN-capable transport, codepoint 0
ECN_CE = 3       # congestion experienced

# --- header sizes ------------------------------------------------------
IP_HEADER = 20
TCP_HEADER = 20
WSCALE_OPTION = 3   # kind, length, shift (padded in real stacks; close enough)
PACK_OPTION = 8     # the paper: "adding an additional 8 bytes as a TCP Option"

#: Conventional Ethernet MTUs used throughout the paper's evaluation.
MTU_ETHERNET = 1500
MTU_JUMBO = 9000


def mss_for_mtu(mtu: int) -> int:
    """Maximum segment size for an MTU (IP + TCP base headers removed)."""
    return mtu - IP_HEADER - TCP_HEADER


FlowKey = Tuple[str, int, str, int]

# Debug-only labels: a pid never enters a datapath decision or a result,
# so a restored run re-counting from 1 is harmless.
_packet_ids = itertools.count(1)  # repro-lint: disable=RL006 (pid is a debug label, never state)


@dataclass
class PackOption:
    """AC/DC congestion feedback carried as a TCP option (§3.2).

    ``total_bytes`` and ``marked_bytes`` are the receiver-module counters
    for the flow: cumulative payload bytes received and the subset that
    arrived with IP ECN = CE.
    """

    total_bytes: int
    marked_bytes: int


@dataclass
class Packet:
    """A TCP/IP packet (or, with TSO in mind, one wire segment).

    ``payload_len`` is application payload; :attr:`size` adds header and
    option overhead and is what links serialize and switch buffers account.
    """

    src: str
    dst: str
    sport: int
    dport: int
    seq: int = 0
    ack_seq: int = 0
    payload_len: int = 0
    # TCP flags
    syn: bool = False
    ack: bool = False
    fin: bool = False
    rst: bool = False
    ece: bool = False
    cwr: bool = False
    # Flow control: raw 16-bit window field; actual window = field << wscale.
    rwnd_field: int = 0xFFFF
    wscale: Optional[int] = None  # window-scale option, present on SYNs only
    # IP ECN codepoint.
    ecn: int = ECN_NOT_ECT
    # AC/DC option & bookkeeping.
    pack: Optional[PackOption] = None
    is_fack: bool = False   # dedicated feedback packet (dropped at sender vSwitch)
    vm_ect: bool = False    # reserved bit: VM's own stack negotiated ECN
    # TCP timestamp option (RTT estimation in guest stacks).
    # -1 means "option absent" (virtual time starts at 0.0, so 0 is a
    # perfectly valid echo value).
    tsval: float = -1.0
    tsecr: float = -1.0
    # SACK option: up to 4 (start, end) byte ranges received out of order.
    # The testbed runs with tcp_sack=1 (§5), and without it large-window
    # loss recovery is unrealistically slow.
    sack_blocks: Optional[Tuple[Tuple[int, int], ...]] = None
    # In-band network telemetry (repro.obs.int), carried OUT OF BAND:
    # neither field counts into :attr:`size`, because switch buffers
    # account admit/release at the same byte size and a stack growing
    # mid-queue would break that conservation (the real ~12 B/hop wire
    # overhead is a documented fidelity boundary, DESIGN.md §16).
    # ``int_stack`` is a list of per-hop tuples appended by switch
    # ports; ``int_echo`` is the immutable digest a receiver vSwitch
    # piggybacks on ACKs.  Both are stripped before any VM sees them.
    int_stack: Optional[list] = None
    int_echo: Optional[object] = None
    pid: int = field(default_factory=lambda: next(_packet_ids))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Wire size in bytes: headers + options + payload."""
        overhead = IP_HEADER + TCP_HEADER
        if self.wscale is not None:
            overhead += WSCALE_OPTION
        if self.pack is not None:
            overhead += PACK_OPTION
        if self.sack_blocks:
            overhead += 2 + 8 * len(self.sack_blocks)
        return overhead + self.payload_len

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's payload (mod 2^32)."""
        return seq_add(self.seq, self.payload_len)

    def copy(self) -> "Packet":
        """Wire-level duplicate: same headers and payload, fresh identity.

        Used by the fault injectors; nested mutable options are copied so
        a later rewrite of one duplicate cannot alias the other.
        """
        dup = replace(self)
        dup.pid = next(_packet_ids)
        if self.pack is not None:
            dup.pack = PackOption(self.pack.total_bytes, self.pack.marked_bytes)
        if self.int_stack is not None:
            # Hop records are immutable tuples; the list that holds them
            # is not (switch ports append to it).
            dup.int_stack = list(self.int_stack)
        # int_echo is immutable by contract (see repro.obs.int.IntEcho),
        # so the duplicate may share the reference.
        return dup

    def flow_key(self) -> FlowKey:
        """5-tuple identity in the direction the packet travels."""
        return (self.src, self.sport, self.dst, self.dport)

    def reverse_key(self) -> FlowKey:
        """5-tuple identity of the opposite direction (data vs ACK path)."""
        return (self.dst, self.dport, self.src, self.sport)

    # --- window helpers -------------------------------------------------
    def advertised_window(self, wscale: int) -> int:
        """Receive window in bytes given the connection's negotiated scale."""
        return self.rwnd_field << wscale

    def set_advertised_window(self, window_bytes: int, wscale: int) -> None:
        """Encode ``window_bytes`` into the 16-bit field under ``wscale``.

        Rounds *up* to the next representable value so that the encoded
        window is never smaller than requested by less than one scale unit,
        then clamps to the 16-bit ceiling.
        """
        if window_bytes < 0:
            raise ValueError(f"negative window {window_bytes!r}")
        unit = 1 << wscale
        self.rwnd_field = min(0xFFFF, (window_bytes + unit - 1) >> wscale)

    # --- ECN helpers ----------------------------------------------------
    @property
    def ect(self) -> bool:
        """True if the packet is marked ECN-capable (or already CE)."""
        return self.ecn in (ECN_ECT0, ECN_CE)

    @property
    def ce(self) -> bool:
        return self.ecn == ECN_CE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            ch
            for ch, on in (
                ("S", self.syn), ("A", self.ack), ("F", self.fin),
                ("R", self.rst), ("E", self.ece), ("C", self.cwr),
            )
            if on
        )
        return (
            f"<Pkt {self.src}:{self.sport}->{self.dst}:{self.dport} "
            f"seq={self.seq} ack={self.ack_seq} len={self.payload_len} "
            f"[{flags}] ecn={self.ecn}>"
        )


def make_data_packet(
    key: FlowKey,
    seq: int,
    payload_len: int,
    ack_seq: int = 0,
) -> Packet:
    """Convenience constructor used heavily by tests."""
    src, sport, dst, dport = key
    return Packet(
        src=src, sport=sport, dst=dst, dport=dport,
        seq=seq, ack_seq=ack_seq, payload_len=payload_len, ack=True,
    )


def make_ack_packet(key: FlowKey, ack_seq: int, rwnd_field: int = 0xFFFF) -> Packet:
    """Convenience constructor for a bare ACK of the *forward* key."""
    src, sport, dst, dport = key
    return Packet(
        src=dst, sport=dport, dst=src, dport=sport,
        ack=True, ack_seq=ack_seq, rwnd_field=rwnd_field,
    )
