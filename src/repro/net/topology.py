"""Topology builders for the paper's experiments (Fig. 7 and §5.2).

* :func:`dumbbell` — Fig. 7a: N sender/receiver pairs across one
  bottleneck link between two switches.
* :func:`parking_lot` — Fig. 7b: a chain of switches, one receiver at the
  end, senders attached along the chain so flows cross different numbers
  of bottlenecks.
* :func:`star` — §5.2: every server on a single switch (the incast,
  stride, shuffle and trace-driven macrobenchmarks).

Routing is static shortest-path, computed once with BFS over the
switch/host graph — the testbed analog of L2 forwarding tables.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from .host import Host
from .switch import Switch

DEFAULT_RATE = 10e9       # 10 GbE
DEFAULT_DELAY = 5e-6      # per-wire propagation


class Topology:
    """A wired collection of hosts and switches with static routing."""

    def __init__(self, sim: Simulator, seed: int = 0):
        self.sim = sim
        self.seed = seed
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        # adjacency: node name -> list of (neighbor name, switch port id or None)
        self._adj: Dict[str, List[Tuple[str, Optional[int]]]] = {}

    # ------------------------------------------------------------------
    def add_host(self, name: str, mtu: int = 9000) -> Host:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        host = Host(self.sim, name, mtu=mtu, seed=self.seed)
        self.hosts[name] = host
        self._adj[name] = []
        return host

    def add_switch(self, name: str, **switch_opts) -> Switch:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        switch = Switch(self.sim, name, **switch_opts)
        self.switches[name] = switch
        self._adj[name] = []
        return switch

    def link_host(self, host: Host, switch: Switch,
                  rate_bps: float = DEFAULT_RATE,
                  delay_s: float = DEFAULT_DELAY) -> None:
        """Full-duplex host<->switch wire."""
        nic = host.attach_nic(rate_bps, delay_s)
        nic.connect(switch)
        port = switch.add_port(rate_bps, delay_s, peer=host)
        self._adj[host.name].append((switch.name, None))
        self._adj[switch.name].append((host.name, port))

    def link_switches(self, a: Switch, b: Switch,
                      rate_bps: float = DEFAULT_RATE,
                      delay_s: float = DEFAULT_DELAY) -> None:
        """Full-duplex switch<->switch wire."""
        port_ab = a.add_port(rate_bps, delay_s, peer=b)
        port_ba = b.add_port(rate_bps, delay_s, peer=a)
        self._adj[a.name].append((b.name, port_ab))
        self._adj[b.name].append((a.name, port_ba))

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Populate every switch FIB with BFS shortest-path next hops."""
        for host_name in self.hosts:
            parents = self._bfs(host_name)
            for sw_name, switch in self.switches.items():
                next_hop = parents.get(sw_name)
                if next_hop is None:
                    continue
                port = self._port_toward(sw_name, next_hop)
                if port is not None:
                    switch.set_route(host_name, port)

    def _bfs(self, root: str) -> Dict[str, str]:
        """Map each node to its next hop *toward* ``root``."""
        parents: Dict[str, str] = {}
        seen = {root}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor, _port in self._adj[node]:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = node
                # Only switches forward; hosts are leaves.
                if neighbor in self.switches:
                    queue.append(neighbor)
        return parents

    def _port_toward(self, sw_name: str, neighbor: str) -> Optional[int]:
        for name, port in self._adj[sw_name]:
            if name == neighbor:
                return port
        return None


# ----------------------------------------------------------------------
# Canonical topologies
# ----------------------------------------------------------------------
def dumbbell(
    sim: Simulator,
    pairs: int = 5,
    rate_bps: float = DEFAULT_RATE,
    delay_s: float = DEFAULT_DELAY,
    mtu: int = 9000,
    seed: int = 0,
    **switch_opts,
) -> Tuple[Topology, List[Host], List[Host]]:
    """Fig. 7a: ``pairs`` senders on one switch, receivers on the other."""
    topo = Topology(sim, seed=seed)
    left = topo.add_switch("sw-left", **switch_opts)
    right = topo.add_switch("sw-right", **switch_opts)
    topo.link_switches(left, right, rate_bps, delay_s)
    senders, receivers = [], []
    for i in range(pairs):
        sender = topo.add_host(f"s{i + 1}", mtu=mtu)
        receiver = topo.add_host(f"r{i + 1}", mtu=mtu)
        topo.link_host(sender, left, rate_bps, delay_s)
        topo.link_host(receiver, right, rate_bps, delay_s)
        senders.append(sender)
        receivers.append(receiver)
    topo.finalize()
    return topo, senders, receivers


def parking_lot(
    sim: Simulator,
    senders: int = 5,
    hops: int = 4,
    rate_bps: float = DEFAULT_RATE,
    delay_s: float = DEFAULT_DELAY,
    mtu: int = 9000,
    seed: int = 0,
    **switch_opts,
) -> Tuple[Topology, List[Host], Host]:
    """Fig. 7b: chain of ``hops`` switches, receiver at the far end.

    Senders are attached round-robin starting from the head of the chain,
    so flows traverse different numbers of bottleneck links.
    """
    if hops < 2:
        raise ValueError("parking lot needs at least 2 switches")
    topo = Topology(sim, seed=seed)
    chain = [topo.add_switch(f"sw{i + 1}", **switch_opts) for i in range(hops)]
    for a, b in zip(chain, chain[1:]):
        topo.link_switches(a, b, rate_bps, delay_s)
    receiver = topo.add_host("recv", mtu=mtu)
    topo.link_host(receiver, chain[-1], rate_bps, delay_s)
    sender_hosts = []
    for i in range(senders):
        host = topo.add_host(f"s{i + 1}", mtu=mtu)
        # Attach: first two at the head, the rest spread down the chain.
        attach = chain[max(0, min(i - 1, hops - 2))]
        topo.link_host(host, attach, rate_bps, delay_s)
        sender_hosts.append(host)
    topo.finalize()
    return topo, sender_hosts, receiver


def star(
    sim: Simulator,
    n_hosts: int,
    rate_bps: float = DEFAULT_RATE,
    delay_s: float = DEFAULT_DELAY,
    mtu: int = 9000,
    host_prefix: str = "h",
    seed: int = 0,
    **switch_opts,
) -> Tuple[Topology, List[Host], Switch]:
    """§5.2: all servers on one switch."""
    topo = Topology(sim, seed=seed)
    switch = topo.add_switch("sw", **switch_opts)
    hosts = []
    for i in range(n_hosts):
        host = topo.add_host(f"{host_prefix}{i + 1}", mtu=mtu)
        topo.link_host(host, switch, rate_bps, delay_s)
        hosts.append(host)
    topo.finalize()
    return topo, hosts, switch
