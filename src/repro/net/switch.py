"""Output-queued switch with a shared buffer and WRED/ECN.

Models the paper's IBM G8264: 48 × 10 G ports sharing a 9 MB packet buffer.
Forwarding is by destination address over a static FIB that the topology
builder populates; queueing/marking policy lives in
:class:`~repro.net.link.SwitchTxPort`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Simulator
from .buffer import SharedBuffer
from .link import Device, SwitchTxPort
from .packet import Packet
from .red import DEFAULT_K_BYTES, EcnMarker

#: The G8264's shared packet buffer.
DEFAULT_BUFFER_BYTES = 9 * 1024 * 1024


class Switch:
    """A store-and-forward switch.

    One :class:`EcnMarker` is shared by all ports (the WRED/ECN profile is
    a switch-wide config in the testbed); buffer accounting is per-port
    against the shared pool.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        dt_alpha: float = 1.0,
        ecn_enabled: bool = True,
        ecn_threshold_bytes: int = DEFAULT_K_BYTES,
    ):
        self.sim = sim
        self.name = name
        self.shared = SharedBuffer(buffer_bytes, dt_alpha)
        self.marker = EcnMarker(enabled=ecn_enabled, threshold_bytes=ecn_threshold_bytes)
        self.ports: Dict[int, SwitchTxPort] = {}
        self.fib: Dict[str, int] = {}
        self._next_port = 0
        self.rx_packets = 0
        self.no_route_drops = 0

    # ------------------------------------------------------------------
    def add_port(self, rate_bps: float, delay_s: float,
                 peer: Optional[Device] = None) -> int:
        """Create a new output port; returns its port id."""
        port_id = self._next_port
        self._next_port += 1
        self.ports[port_id] = SwitchTxPort(
            self.sim, rate_bps, delay_s, self.shared, self.marker,
            queue_id=port_id, peer=peer, name=f"{self.name}.p{port_id}",
        )
        return port_id

    def connect_port(self, port_id: int, peer: Device) -> None:
        self.ports[port_id].connect(peer)

    def set_route(self, dst_addr: str, port_id: int) -> None:
        if port_id not in self.ports:
            raise KeyError(f"{self.name}: unknown port {port_id}")
        self.fib[dst_addr] = port_id

    def attach_obs(self, obs) -> None:
        """Instrument this switch and its ports (see repro.obs)."""
        obs.register_switch(self)

    def attach_int(self, telemetry) -> None:
        """Attach INT hop stampers to every port (see repro.obs.int)."""
        telemetry.instrument_switch(self)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Forward an arriving packet toward its destination."""
        self.rx_packets += 1
        port_id = self.fib.get(packet.dst)
        if port_id is None:
            self.no_route_drops += 1
            return
        self.ports[port_id].enqueue(packet)

    # ------------------------------------------------------------------
    # Counters, in aggregate — the paper reads these off the switch.
    # ------------------------------------------------------------------
    def total_drops(self) -> int:
        return sum(p.stats.dropped_packets for p in self.ports.values())

    def total_tx_packets(self) -> int:
        return sum(p.stats.tx_packets for p in self.ports.values())

    def drop_rate(self) -> float:
        """Switch-wide fraction of forwarded packets that were dropped."""
        sent = self.total_tx_packets()
        dropped = self.total_drops()
        total = sent + dropped
        return dropped / total if total else 0.0
