"""Network substrate: packets, links, switches, hosts, topologies."""

from .buffer import SharedBuffer
from .host import Host
from .link import HostTxPort, PortStats, SwitchTxPort, TxPort
from .packet import (
    ECN_CE,
    ECN_ECT0,
    ECN_NOT_ECT,
    MTU_ETHERNET,
    MTU_JUMBO,
    Packet,
    PackOption,
    mss_for_mtu,
)
from .red import DEFAULT_K_BYTES, EcnMarker, MarkDecision
from .switch import DEFAULT_BUFFER_BYTES, Switch
from .topology import Topology, dumbbell, parking_lot, star

__all__ = [
    "DEFAULT_BUFFER_BYTES",
    "DEFAULT_K_BYTES",
    "ECN_CE",
    "ECN_ECT0",
    "ECN_NOT_ECT",
    "EcnMarker",
    "Host",
    "HostTxPort",
    "MTU_ETHERNET",
    "MTU_JUMBO",
    "MarkDecision",
    "Packet",
    "PackOption",
    "PortStats",
    "SharedBuffer",
    "Switch",
    "SwitchTxPort",
    "Topology",
    "TxPort",
    "dumbbell",
    "mss_for_mtu",
    "parking_lot",
    "star",
]
