"""WRED/ECN marking as configured in the paper's evaluation.

For DCTCP the switches mark ECN-capable packets that arrive to an
*instantaneous* queue **exceeding** the threshold K — a hard threshold,
as DCTCP specifies ("the queue length is greater than K", §3.1 of
DCTCP): a packet arriving at occupancy exactly K is *not* marked.  (An
earlier revision marked at exactly K; the off-by-one shifted every
marking onset one arrival early.)  Non-ECT packets hitting the same
WRED profile are **dropped**, which is the ECN-coexistence trap of
Fig. 15/16 (Judd [36], Wu [72]).  Real WRED drops probabilistically
along a ramp rather than at a cliff, so non-ECT drops here follow the
classic profile: probability 0 at K rising linearly to 1 at
``ramp_factor * K``.  (With a cliff, a competing DCTCP flow that parks
the queue exactly at K would give non-ECT packets a strictly-zero
delivery probability — harsher than any testbed measurement.)

A disabled marker (``enabled=False``) reproduces the CUBIC baseline where
WRED/ECN is off and only buffer exhaustion drops packets.

Besides the per-packet :meth:`EcnMarker.decide`, the profile exposes a
**vectorized batch form** (:meth:`EcnMarker.decide_batch`) evaluating the
same thresholds once over an aggregate of arriving bytes.  The fluid
tier (``repro.fluid``) feeds a whole timestep of background arrivals
through it in one call; the batch form is *expected-value* — it returns
mark/drop fractions deterministically instead of drawing per packet — so
the fluid tier stays RNG-free and byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import rng as rng_registry
from .packet import ECN_CE, Packet

#: DCTCP's recommended threshold at 10 Gb/s: 65 full-size 1.5 KB frames.
DEFAULT_K_BYTES = 65 * 1500

#: Non-ECT drop probability reaches 1.0 at ``ramp_factor * K``.  The ramp
#: is sharp: a non-ECT flow competing with DCTCP (which parks the queue at
#: K) must starve, as in Fig. 15a, while its occasional survivors let the
#: Fig. 16 latency measurement exist at all.
DEFAULT_RAMP_FACTOR = 1.25


@dataclass
class MarkDecision:
    """Outcome of passing one arriving packet through the WRED profile."""

    drop: bool
    marked: bool


@dataclass
class BatchMarkDecision:
    """Expected-value outcome of a batch of arrivals at one occupancy.

    ``marked_bytes``/``dropped_bytes`` are the expected portions of the
    offered ECT/non-ECT bytes; the fractions are the raw profile values
    (useful for per-class feedback laws).  Batch decisions do **not**
    touch the marker's per-packet counters — batch callers own their own
    byte-based accounting.
    """

    marked_bytes: float
    dropped_bytes: float
    mark_fraction: float
    drop_fraction: float


class EcnMarker:
    """Threshold marker on instantaneous queue occupancy.

    ``decide`` is called at enqueue time with the occupancy *before* the
    packet is admitted (standard arrival-based marking).  A ``marked``
    decision is only a *verdict*: the caller applies it with
    :meth:`commit_mark` once the packet has actually been admitted to the
    buffer.  A real switch's WRED stage likewise cannot mark a packet the
    shared-buffer admission is about to discard — stamping (and counting)
    at decision time would inflate marking stats with packets that never
    carried CE onto the wire.
    """

    def __init__(self, enabled: bool = True,
                 threshold_bytes: int = DEFAULT_K_BYTES,
                 ramp_factor: float = DEFAULT_RAMP_FACTOR,
                 seed: int = 0):
        if threshold_bytes <= 0:
            raise ValueError("marking threshold must be positive")
        if ramp_factor < 1.0:
            raise ValueError("ramp factor must be >= 1")
        self.enabled = enabled
        self.threshold = threshold_bytes
        self.ramp_factor = ramp_factor
        self.marked_packets = 0
        self.dropped_packets = 0
        self._rng = rng_registry.stream(seed, "red.wred-drop")

    def _nonect_drop_probability(self, queue_bytes: int) -> float:
        """Linear WRED ramp for ECN-incapable packets."""
        if queue_bytes <= self.threshold:
            return 0.0
        ramp_top = self.threshold * self.ramp_factor
        if queue_bytes >= ramp_top or ramp_top == self.threshold:
            return 1.0
        return (queue_bytes - self.threshold) / (ramp_top - self.threshold)

    def decide(self, packet: Packet, queue_bytes: int) -> MarkDecision:
        """Apply the profile to ``packet`` arriving at ``queue_bytes``.

        Action starts strictly **above** K (DCTCP marks when the queue
        *exceeds* the threshold); at occupancy exactly K the packet
        passes untouched — and, for non-ECT packets, without an RNG
        draw, so a queue parked at exactly K perturbs nothing.
        """
        if not self.enabled or queue_bytes <= self.threshold:
            return MarkDecision(drop=False, marked=False)
        if packet.ect:
            return MarkDecision(drop=False, marked=True)
        if self._rng.random() < self._nonect_drop_probability(queue_bytes):
            self.dropped_packets += 1
            return MarkDecision(drop=True, marked=False)
        return MarkDecision(drop=False, marked=False)

    # -- batch (fluid-tier) form ----------------------------------------
    def mark_fraction(self, queue_bytes: float) -> float:
        """Fraction of ECT bytes marked at this occupancy (0.0 or 1.0:
        DCTCP's hard instantaneous threshold, strict above-K)."""
        if not self.enabled or queue_bytes <= self.threshold:
            return 0.0
        return 1.0

    def decide_batch(self, queue_bytes: float, ect_bytes: float = 0.0,
                     nonect_bytes: float = 0.0) -> BatchMarkDecision:
        """Vectorized WRED over a batch of arrivals at one occupancy.

        One threshold evaluation covers the whole batch — the fluid tier
        pushes an entire timestep of background arrivals through here
        instead of per-packet calls.  Deterministic expected-value: the
        non-ECT ramp contributes its probability as a byte fraction
        rather than a drawn outcome, so batch decisions never consume
        the WRED RNG stream (packet-tier draws are unperturbed).
        """
        mark_frac = self.mark_fraction(queue_bytes)
        drop_frac = (self._nonect_drop_probability(queue_bytes)
                     if self.enabled else 0.0)
        return BatchMarkDecision(
            marked_bytes=ect_bytes * mark_frac,
            dropped_bytes=nonect_bytes * drop_frac,
            mark_fraction=mark_frac,
            drop_fraction=drop_frac,
        )

    def commit_mark(self, packet: Packet) -> None:
        """Stamp CE on an *admitted* packet whose decision was ``marked``."""
        packet.ecn = ECN_CE
        self.marked_packets += 1

    def snapshot(self) -> dict:
        """Counters in metric-source shape (see repro.obs)."""
        return {"marked_packets": self.marked_packets,
                "dropped_packets": self.dropped_packets}
