"""Links and transmit ports.

The wire model is store-and-forward: a transmit port serializes one packet
at a time at the link rate, then the packet propagates for a fixed delay
and is delivered to the device on the far end.  Queueing happens in front
of the serializer and its policy differs by device:

* hosts get an unbounded FIFO (``HostTxPort``) — the testbed's hosts are
  window-limited by TCP and never drop on transmit;
* switches get ``SwitchTxPort``: admission via the shared
  :class:`~repro.net.buffer.SharedBuffer` (dynamic threshold) plus the
  WRED/ECN profile of :class:`~repro.net.red.EcnMarker`.

Counters on every port (packets/bytes sent and dropped) are the stand-in
for the paper's "loss rate (by collecting switch counters)".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Protocol

from ..analysis import sanitize
from ..sim.engine import Simulator
from .buffer import SharedBuffer
from .packet import Packet
from .red import EcnMarker


class Device(Protocol):
    """Anything that can terminate a wire."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class PortStats:
    """Per-port counters, mirroring what one scrapes off a real switch."""

    __slots__ = ("tx_packets", "tx_bytes", "dropped_packets", "dropped_bytes",
                 "marked_packets")

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.marked_packets = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of arriving packets dropped at this port."""
        arrived = self.tx_packets + self.dropped_packets
        return self.dropped_packets / arrived if arrived else 0.0


class TxPort:
    """Base transmit port: FIFO + serializer + propagation.

    Subclasses override :meth:`_admit` / :meth:`_release` to implement a
    buffering policy.  ``rate_bps`` of 0 means an infinitely fast port
    (useful in unit tests).
    """

    def __init__(self, sim: Simulator, rate_bps: float, delay_s: float,
                 peer: Optional[Device] = None, name: str = "port"):
        if rate_bps < 0 or delay_s < 0:
            raise ValueError("rate and delay must be non-negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.peer = peer
        self.name = name
        self.stats = PortStats()
        self._queue: Deque[Packet] = deque()
        self._queue_bytes = 0
        self._busy = False

    # -- policy hooks ---------------------------------------------------
    def _admit(self, packet: Packet) -> bool:
        """Decide whether the packet may join the queue."""
        return True

    def _release(self, packet: Packet) -> None:
        """Return buffer resources when the packet leaves the queue."""

    # -- public API -------------------------------------------------------
    @property
    def queue_bytes(self) -> int:
        return self._queue_bytes

    @property
    def queue_packets(self) -> int:
        return len(self._queue)

    def connect(self, peer: Device) -> None:
        self.peer = peer

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet; returns False (and counts a drop) if rejected."""
        if not self._admit(packet):
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return False
        self._queue.append(packet)
        self._queue_bytes += packet.size
        if not self._busy:
            self._start_next()
        return True

    # -- internals --------------------------------------------------------
    def _serialization_time(self, packet: Packet) -> float:
        if self.rate_bps == 0:
            return 0.0
        return packet.size * 8.0 / self.rate_bps

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        self._queue_bytes -= packet.size
        self.sim.schedule(self._serialization_time(packet), self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        # Buffer memory is held until the packet has left the wire,
        # as in a real store-and-forward switch.
        self._release(packet)
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size
        if self.peer is not None:
            self.sim.schedule(self.delay_s, self.peer.receive, packet)
        self._start_next()


class HostTxPort(TxPort):
    """Host NIC transmit queue: unbounded FIFO (hosts are window-limited)."""


class SwitchTxPort(TxPort):
    """Switch output port: shared-buffer admission + WRED/ECN marking.

    The marking decision uses the queue occupancy *before* the arriving
    packet, consistent with arrival marking on the instantaneous queue.

    A port may carry a **fluid coupling** (``repro.fluid``): background
    flows whose bytes never become packets but whose backlog composes
    into the occupancy WRED sees (via :meth:`SharedBuffer.occupancy`)
    and whose arrival rate eats into the serializer (fluid-interleave:
    packet serialization inflates by ``rate / (rate - fluid_rate)``).
    The hook follows the zero-cost-off contract: ``_fluid`` is ``None``
    unless coupled, and with an idle coupling every composed reading and
    inflation factor is exactly its pure-packet value.
    """

    def __init__(self, sim: Simulator, rate_bps: float, delay_s: float,
                 shared: SharedBuffer, marker: EcnMarker,
                 queue_id: int, peer: Optional[Device] = None,
                 name: str = "swport"):
        super().__init__(sim, rate_bps, delay_s, peer, name)
        self.shared = shared
        self.marker = marker
        self.queue_id = queue_id
        shared.register_queue(queue_id)
        # Byte-conservation tripwire (repro.analysis.sanitize): captured
        # at construction so the per-packet cost when off is one None test.
        self._accounting = (
            sanitize.PortAccounting(name, queue_id)
            if sanitize.is_enabled() else None)
        # Telemetry hook (repro.obs.context.PortObs); same one-None-test
        # contract as the sanitizer accounting above.
        self._obs = None
        # Fluid coupling hook (repro.fluid.coupling.FluidPort); same
        # one-None-test contract.
        self._fluid = None
        # In-band telemetry stamper (repro.obs.int.IntStamper); same
        # one-None-test contract.
        self._int = None

    def attach_obs(self, port_obs) -> None:
        """Install the observability hook for this port (see repro.obs)."""
        self._obs = port_obs

    def attach_fluid(self, fluid_port) -> None:
        """Install the fluid-tier coupling for this port (see repro.fluid)."""
        self._fluid = fluid_port

    def attach_int(self, stamper) -> None:
        """Install the INT hop stamper for this port (see repro.obs.int)."""
        self._int = stamper

    def _serialization_time(self, packet: Packet) -> float:
        seconds = super()._serialization_time(packet)
        fluid = self._fluid
        if fluid is not None:
            seconds *= fluid.service_inflation()
        return seconds

    def _admit(self, packet: Packet) -> bool:
        acct = self._accounting
        if acct is not None:
            acct.on_offer(packet.size)
        obs = self._obs
        qb = self.shared.occupancy(self.queue_id)
        decision = self.marker.decide(packet, qb)
        if decision.drop:
            if acct is not None:
                acct.on_drop(packet.size)
            if obs is not None:
                obs.on_enqueue(qb, False, False)
            return False
        if not self.shared.try_admit(self.queue_id, packet.size):
            # A mark-then-drop packet must not count as marked nor carry a
            # CE stamp it never took onto the wire, so the verdict is
            # committed only after shared-buffer admission succeeds.
            if acct is not None:
                acct.on_drop(packet.size)
            if obs is not None:
                obs.on_enqueue(qb, False, False)
            return False
        if decision.marked:
            self.marker.commit_mark(packet)
            self.stats.marked_packets += 1
        if acct is not None:
            acct.check(self.shared, self.sim)
        if obs is not None:
            obs.on_enqueue(qb, True, decision.marked)
        stamper = self._int
        if stamper is not None:
            stamper.on_enqueue(packet, qb)
        return True

    def _release(self, packet: Packet) -> None:
        self.shared.release(self.queue_id, packet.size)
        stamper = self._int
        if stamper is not None:
            # Stamp at departure (the hop record's residence time covers
            # queueing + serialization); tx counters update after this.
            stamper.on_depart(packet)
        if self._accounting is not None:
            self._accounting.on_release(packet.size)
            self._accounting.check(self.shared, self.sim)
