"""End host: guest TCP endpoints behind a virtual switch.

The packet path mirrors Fig. 3 of the paper.  On egress, a connection's
packet goes through the host's vSwitch datapath (plain OVS or AC/DC) and
then into the NIC transmit queue; on ingress, wire packets pass the
vSwitch before being demultiplexed to a connection.  The vSwitch can
rewrite, consume, or inject packets in either direction, which is exactly
the power AC/DC needs (PACK stripping, FACK generation, RWND rewriting).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Tuple

from ..sim.engine import Simulator
from ..sim.rng import RngFactory
from ..tcp.connection import TcpConnection
from .link import HostTxPort
from .packet import Packet, mss_for_mtu

#: Default egress timing noise (seconds).  Real hosts have scheduling and
#: interrupt jitter; a deterministic simulator without it phase-locks
#: flows into periodic patterns where ECN marks land on the same flows
#: every round (breaking DCTCP's fairness).  The jitter is seeded per
#: host, so runs remain reproducible, and is applied monotonically so it
#: can never reorder a host's own packets.
DEFAULT_TX_JITTER = 2e-6

ConnKey = Tuple[str, int, str, int]


class VSwitch(Protocol):
    """Datapath interface a host drives.

    ``egress``/``ingress`` return the (possibly modified) packet, or None
    when the datapath consumed it (policing drop, FACK absorption).
    """

    def egress(self, packet: Packet) -> Optional[Packet]:  # pragma: no cover
        ...

    def ingress(self, packet: Packet) -> Optional[Packet]:  # pragma: no cover
        ...


class Host:
    """A server: address, NIC, optional vSwitch, TCP connections."""

    def __init__(self, sim: Simulator, name: str, mtu: int = 9000,
                 tx_jitter: float = DEFAULT_TX_JITTER, seed: int = 0):
        self.sim = sim
        self.name = name
        self.addr = name
        self.mtu = mtu
        self.mss = mss_for_mtu(mtu)
        self.nic: Optional[HostTxPort] = None
        self.vswitch: Optional[VSwitch] = None
        self.connections: Dict[ConnKey, TcpConnection] = {}
        self.listeners: Dict[int, dict] = {}
        self._next_port = 10000
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.tx_jitter = tx_jitter
        self._jitter_rng = RngFactory(seed).stream(f"host:{name}")
        self._egress_clock = 0.0
        # Tenant profile: connection options applied to every endpoint on
        # this host (explicit per-connection options still win).  This is
        # how experiments model adversarial tenants — e.g.
        # ``set_tenant_profile(ignore_rwnd=True)`` or ``ack_division=8``.
        self.default_conn_opts: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_nic(self, rate_bps: float, delay_s: float) -> HostTxPort:
        """Create the host's transmit port; the topology connects its peer."""
        self.nic = HostTxPort(self.sim, rate_bps, delay_s, name=f"{self.name}.nic")
        return self.nic

    def attach_vswitch(self, vswitch: VSwitch) -> None:
        self.vswitch = vswitch

    # ------------------------------------------------------------------
    # TCP API
    # ------------------------------------------------------------------
    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    def set_tenant_profile(self, **conn_opts) -> None:
        """Set default connection options for this host's tenant."""
        self.default_conn_opts.update(conn_opts)

    def _apply_profile(self, conn_opts: dict) -> None:
        for key, value in self.default_conn_opts.items():
            conn_opts.setdefault(key, value)
        conn_opts.setdefault("mss", self.mss)

    def connect(self, raddr: str, rport: int, **conn_opts) -> TcpConnection:
        """Active-open a connection to ``raddr:rport``."""
        lport = self.allocate_port()
        self._apply_profile(conn_opts)
        conn = TcpConnection(self.sim, self, self.addr, lport, raddr, rport,
                             **conn_opts)
        self.connections[conn.key()] = conn
        conn.connect()
        return conn

    def listen(self, port: int, on_accept: Optional[Callable[[TcpConnection], None]] = None,
               **conn_opts) -> None:
        """Register a listener; incoming SYNs spawn passive connections."""
        self._apply_profile(conn_opts)
        self.listeners[port] = {"on_accept": on_accept, "opts": conn_opts}

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def output(self, packet: Packet) -> None:
        """Egress from a guest connection toward the wire."""
        if self.vswitch is not None:
            out = self.vswitch.egress(packet)
            if out is None:
                return
            packet = out
        self.wire_out(packet)

    def wire_out(self, packet: Packet) -> None:
        """Bypass the vSwitch (used by the vSwitch itself to inject)."""
        if self.nic is None:
            raise RuntimeError(f"{self.name}: NIC not attached")
        self.tx_packets += 1
        self.tx_bytes += packet.size
        if self.tx_jitter > 0:
            when = max(self.sim.now + self._jitter_rng.uniform(0, self.tx_jitter),
                       self._egress_clock)
            self._egress_clock = when
            self.sim.schedule_at(when, self.nic.enqueue, packet)
        else:
            self.nic.enqueue(packet)

    def receive(self, packet: Packet) -> None:
        """Ingress from the wire."""
        self.rx_packets += 1
        self.rx_bytes += packet.size
        if self.vswitch is not None:
            out = self.vswitch.ingress(packet)
            if out is None:
                return
            packet = out
        self.deliver(packet)

    def deliver(self, packet: Packet) -> None:
        """Demultiplex a packet to its guest connection (post-vSwitch)."""
        key = (packet.dst, packet.dport, packet.src, packet.sport)
        conn = self.connections.get(key)
        if conn is None and packet.syn and not packet.ack:
            conn = self._accept(packet)
        if conn is not None:
            conn.handle_packet(packet)

    def _accept(self, syn: Packet) -> Optional[TcpConnection]:
        listener = self.listeners.get(syn.dport)
        if listener is None:
            return None
        conn = TcpConnection(
            self.sim, self, self.addr, syn.dport, syn.src, syn.sport,
            **listener["opts"],
        )
        self.connections[conn.key()] = conn
        if listener["on_accept"] is not None:
            listener["on_accept"](conn)
        return conn
