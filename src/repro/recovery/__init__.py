"""Checkpoint/restore and crash recovery (DESIGN.md §13).

A long-running service run must survive the death of the process
executing it: a SIGKILLed pool worker, an OOM kill, a crashed host.
This package makes a run *durable* without giving up the repo's
byte-identity contract (DESIGN.md §10):

* :mod:`repro.recovery.checkpoint` — integrity-checked, atomically
  written snapshots of a live :class:`~repro.control.service.Service`
  (the whole object graph: engine heap + clock + timers, named RNG
  stream positions, vSwitch flow tables/conntrack/guard ladders,
  switch buffers, open workload connections, trace-bus records);
* :mod:`repro.recovery.wal` — a write-ahead log of control commands
  submitted since the last snapshot, so live mutations replay exactly;
* :mod:`repro.recovery.durable` — :class:`DurableService`, the
  supervisor gluing both together: snapshot at every epoch boundary,
  restore-and-replay on restart;
* :mod:`repro.recovery.cell` — :func:`durable_service_cell`, the
  process-pool cell that resumes from its own latest checkpoint when a
  killed worker's cell is retried.

The acceptance oracle is strict: a run that is checkpointed, killed
and restored produces a **byte-identical** result — meters, telemetry,
trace signature — to the same run executed uninterrupted.
"""

from .checkpoint import (CheckpointError, CheckpointInfo, latest_checkpoint,
                         list_checkpoints, read_checkpoint, write_checkpoint)
from .wal import WriteAheadLog
from .durable import DurableService, RecoveryStats
from .cell import durable_service_cell

__all__ = [
    "CheckpointError",
    "CheckpointInfo",
    "DurableService",
    "RecoveryStats",
    "WriteAheadLog",
    "durable_service_cell",
    "latest_checkpoint",
    "list_checkpoints",
    "read_checkpoint",
    "write_checkpoint",
]
