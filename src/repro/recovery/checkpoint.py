"""Integrity-checked snapshot files.

A checkpoint is one file::

    REPRO-CKPT 1\n
    <header JSON>\n
    <pickle payload>

The header is canonical JSON carrying the format version, the epoch and
simulated time the snapshot was taken at, the write-ahead-log cursor
(``wal_pos``: commands submitted before the snapshot are *inside* the
pickle; everything at or after the cursor must be replayed), and the
payload's length and sha256.  Readers verify both before unpickling, so
a torn or bit-rotted snapshot is a :class:`CheckpointError`, never a
silently-wrong resume.

Writes are atomic (``O_EXCL`` temp file + ``os.replace`` + fsync), the
same discipline as :class:`repro.runtime.cache.ResultCache`: a crash
mid-snapshot leaves the previous checkpoint intact and at worst a stray
temp file, and :func:`latest_checkpoint` simply falls back to the newest
snapshot that passes its integrity check.

The payload is a :mod:`pickle` of the live object graph.  That is a
deliberate trade (DESIGN.md §13): the simulation is a closed,
single-process graph of plain-Python objects, every scheduled callback
is a bound method or :func:`functools.partial` (never a lambda — that is
enforced by construction in the datapath and checked by the recovery
tests), and ``random.Random`` pickles its exact Mersenne Twister
position.  What pickle restores is therefore *the run itself*, which is
what makes byte-identical resume provable rather than aspirational.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple

MAGIC = b"REPRO-CKPT 1\n"

#: Bump on incompatible snapshot-format changes; a reader refuses the
#: payload of a version it does not understand.
FORMAT_VERSION = 1

_CKPT_NAME = re.compile(r"^epoch-(\d{8})\.ckpt$")


class CheckpointError(RuntimeError):
    """A checkpoint that is missing, torn, corrupt, or incompatible."""


@dataclass(frozen=True)
class CheckpointInfo:
    """Parsed checkpoint header (everything but the payload)."""

    version: int
    epoch: int
    sim_now: float
    wal_pos: int
    payload_len: int
    payload_sha256: str
    path: Optional[str] = None

    def to_json(self) -> dict:
        return {"version": self.version, "epoch": self.epoch,
                "sim_now": self.sim_now, "wal_pos": self.wal_pos,
                "payload_len": self.payload_len,
                "payload_sha256": self.payload_sha256}


def checkpoint_path(root, epoch: int) -> Path:
    """Canonical snapshot file name for an epoch boundary."""
    return Path(root) / f"epoch-{epoch:08d}.ckpt"


def write_checkpoint(path, obj: Any, *, epoch: int, sim_now: float,
                     wal_pos: int) -> CheckpointInfo:
    """Snapshot ``obj`` to ``path`` atomically; returns the header info."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    info = CheckpointInfo(
        version=FORMAT_VERSION, epoch=epoch, sim_now=sim_now,
        wal_pos=wal_pos, payload_len=len(payload),
        payload_sha256=hashlib.sha256(payload).hexdigest(),
        path=str(path))
    header = json.dumps(info.to_json(), sort_keys=True,
                        separators=(",", ":")).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(MAGIC)
            fh.write(header)
            fh.write(b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return info


def read_header(path) -> CheckpointInfo:
    """Parse and validate a checkpoint's header (cheap: no unpickling)."""
    with open(path, "rb") as fh:
        return _read_header(fh, path)[0]


def _read_header(fh: io.BufferedReader, path) -> Tuple[CheckpointInfo, bytes]:
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise CheckpointError(f"{path}: bad magic (not a checkpoint?)")
    header_line = fh.readline()
    try:
        raw = json.loads(header_line.decode("utf-8"))
        info = CheckpointInfo(path=str(path), **raw)
    except (ValueError, TypeError) as exc:
        raise CheckpointError(f"{path}: unparseable header: {exc}") from exc
    if info.version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: format version {info.version} (this reader "
            f"understands {FORMAT_VERSION})")
    return info, header_line


def read_checkpoint(path) -> Tuple[Any, CheckpointInfo]:
    """Load a checkpoint; raises :class:`CheckpointError` unless the
    payload length and digest both verify."""
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise CheckpointError(f"{path}: {exc}") from exc
    with fh:
        info, _ = _read_header(fh, path)
        payload = fh.read()
    if len(payload) != info.payload_len:
        raise CheckpointError(
            f"{path}: torn payload ({len(payload)} bytes, header says "
            f"{info.payload_len})")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != info.payload_sha256:
        raise CheckpointError(f"{path}: payload digest mismatch")
    try:
        obj = pickle.loads(payload)
    except Exception as exc:  # unpicklable despite a valid digest
        raise CheckpointError(f"{path}: unpicklable payload: {exc}") from exc
    return obj, info


def list_checkpoints(root) -> List[Path]:
    """Snapshot files under ``root``, newest epoch first."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = []
    for entry in root.iterdir():
        m = _CKPT_NAME.match(entry.name)
        if m is not None:
            found.append((int(m.group(1)), entry))
    return [p for _e, p in sorted(found, reverse=True)]


def latest_checkpoint(root) -> Optional[Tuple[Any, CheckpointInfo]]:
    """Load the newest checkpoint under ``root`` that passes integrity.

    A corrupt newest snapshot (e.g. the process died mid-``os.replace``
    on a filesystem without atomic rename) falls back to the next
    oldest; returns ``None`` when nothing under ``root`` is loadable.
    """
    for path in list_checkpoints(root):
        try:
            return read_checkpoint(path)
        except CheckpointError:
            continue
    return None


def prune_checkpoints(root, keep: int) -> int:
    """Delete all but the ``keep`` newest snapshots; returns count removed."""
    if keep < 1:
        raise ValueError("must keep at least one checkpoint")
    removed = 0
    for path in list_checkpoints(root)[keep:]:
        path.unlink(missing_ok=True)
        removed += 1
    return removed
