"""The durable service cell: a pool-runnable, resumable unit of work.

:func:`durable_service_cell` is a module-level callable in
:class:`~repro.runtime.spec.RunSpec` shape (plain-JSON kwargs), so the
experiment runtime can fan durable service runs across its process pool
like any other cell.  What makes it *durable* is where it keeps state:
each cell derives a directory under ``recovery_dir`` from the sha256 of
its canonical-JSON identity, and a retried execution of the same cell —
after the pool detected a dead worker — finds the previous incarnation's
checkpoints there and resumes instead of starting over.  A SIGKILLed
worker costs one epoch of progress, not the whole cell.

With ``recovery_dir=None`` the cell degrades to a plain uninterruptible
service run (no supervisor, no snapshots) — that is the baseline the
byte-identity oracle and the overhead benchmark compare against.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import List, Optional

from ..control.service import Service, ServiceConfig
from ..runtime.spec import canonical_json
from .durable import DurableService


def _cell_ident(config: dict, schedule, epochs: int,
                checkpoint_every: int, kill) -> str:
    """Stable identity hash of everything that defines this cell's run."""
    blob = canonical_json({
        "config": config,
        "schedule": schedule or [],
        "epochs": epochs,
        "checkpoint_every": checkpoint_every,
        "kill": kill,
    }).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def durable_service_cell(config: dict,
                         schedule: Optional[List[dict]] = None,
                         epochs: int = 6,
                         recovery_dir: Optional[str] = None,
                         checkpoint_every: int = 1,
                         kill: Optional[dict] = None) -> dict:
    """Run (or resume) one durable service run; returns the service result.

    ``kill``, when set, is a plain-JSON description of a
    :class:`~repro.faults.injectors.WorkerKill`: ``{"at": <sim time>}``
    plus an optional ``"sentinel"`` path (defaults to a file inside the
    cell's own recovery directory, which is exactly the fire-once scope
    a retried cell needs).  Requires ``recovery_dir`` — killing a run
    nothing can resume would just lose it.
    """
    if recovery_dir is None:
        if kill is not None:
            raise ValueError(
                "kill requires recovery_dir: a kill without checkpoints "
                "is just data loss")
        service = Service(ServiceConfig(**config), schedule=schedule or [])
        return service.run(epochs)

    root = (Path(recovery_dir)
            / _cell_ident(config, schedule, epochs, checkpoint_every, kill))
    kill_fault = None
    if kill is not None:
        from ..faults.injectors import WorkerKill
        sentinel = kill.get("sentinel", root / "kill.sentinel")
        kill_fault = WorkerKill(at=kill["at"], sentinel=sentinel)

    supervisor = DurableService(
        config=config, schedule=schedule, root=root,
        checkpoint_every=checkpoint_every, kill=kill_fault)
    try:
        return supervisor.run(epochs)
    finally:
        supervisor.close()
