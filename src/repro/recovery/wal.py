"""Control-plane write-ahead log.

Snapshots are taken at epoch boundaries, but operators submit commands
*between* boundaries — after the last snapshot was written.  Without a
log, a crash would silently drop those commands and the restored run
would diverge from the uninterrupted one.  The WAL closes that window:

* every submission is appended (and fsynced) to the log **before** it
  reaches the in-memory control plane — shape-rejected commands
  included, because a rejection is a visible side effect too (it lands
  in the command log and on the trace bus);
* each snapshot records the WAL cursor (``wal_pos``) at write time;
* restore loads the snapshot, then re-submits every logged entry at or
  after that cursor, in order.  The control plane is deterministic in
  (state, submission sequence), so the replayed run re-applies exactly
  what the uninterrupted run applied.

Lines are crc32-framed (:func:`repro.control.commands.encode_wal_entry`)
so a torn tail — the crash happened mid-append — is detected and
dropped rather than replayed as garbage.  Entries after a torn line are
ignored too: a torn middle means the file was corrupted at rest, and
replaying around a hole would reorder the submission sequence.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple

from ..control.commands import decode_wal_entry, encode_wal_entry


class WriteAheadLog:
    """Append-only, crc-framed command log backing one durable service."""

    def __init__(self, path, sync: bool = True):
        self.path = Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Torn/corrupt lines dropped at open (observability, not errors).
        self.torn_dropped = 0
        entries = self._scan()
        #: Next position to be assigned (== count of valid entries when
        #: positions are dense, which append() maintains).
        self.pos = entries[-1][0] + 1 if entries else 0
        self._fh = None

    # ------------------------------------------------------------------
    def _scan(self) -> List[Tuple[int, object]]:
        if not self.path.exists():
            return []
        entries: List[Tuple[int, object]] = []
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                decoded = decode_wal_entry(line)
                if decoded is None:
                    # Torn tail (or corruption): everything from here on
                    # is untrusted.
                    self.torn_dropped += 1
                    break
                entries.append(decoded)
        return entries

    def _file(self):
        if self._fh is None or self._fh.closed:
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    # ------------------------------------------------------------------
    def append(self, command: object) -> int:
        """Durably log one submission; returns its position.

        The entry is flushed (and fsynced unless ``sync=False``) before
        this returns — write-ahead means the log wins races with the
        crash, not loses them.
        """
        pos = self.pos
        fh = self._file()
        fh.write(encode_wal_entry(pos, command))
        fh.write("\n")
        fh.flush()
        if self.sync:
            os.fsync(fh.fileno())
        self.pos = pos + 1
        return pos

    def entries(self, start: int = 0) -> List[Tuple[int, object]]:
        """Valid ``(pos, command)`` entries with ``pos >= start``."""
        return [(pos, cmd) for pos, cmd in self._scan() if pos >= start]

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    # The open file handle must not leak into snapshots: the WAL object
    # itself is never pickled (it belongs to the supervisor, not the
    # service), but keep the contract explicit.
    def __getstate__(self):  # pragma: no cover - guard rail
        raise TypeError("WriteAheadLog is supervisor state; snapshot the "
                        "service, not the log")
