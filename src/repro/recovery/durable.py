"""The durable-service supervisor: snapshot, crash, restore, replay.

:class:`DurableService` wraps a :class:`~repro.control.service.Service`
with the two pieces of persistence that make a crash survivable:

* a **checkpoint** of the whole live service at every epoch boundary
  (``checkpoint_every=N`` thins that to every Nth; ``0`` disables
  snapshotting entirely, which is the supervisor's zero-overhead mode);
* a **write-ahead log** of every command submitted through
  :meth:`submit`, so mutations that arrived after the last snapshot
  replay exactly on restore.

Construction is restore-first: pointing a ``DurableService`` at a root
directory that already holds checkpoints resumes the run from the
newest valid snapshot (falling back past corrupt ones) and re-submits
the WAL suffix; pointing it at an empty directory starts fresh.  A
crash *before the first snapshot* is recovered too — the service is
rebuilt from its config and the full WAL is replayed from position 0,
which is why the constructor routes the initial ``schedule`` through
the WAL rather than handing it to the service directly.

Everything the supervisor does is invisible to the run's result: the
service's trace bus, meters and telemetry contain no recovery events
(those go to the supervisor's *own* bus), so a checkpointed-killed-
restored run is byte-identical to an uninterrupted one — the §10
determinism contract extended to process death (DESIGN.md §13).
"""

from __future__ import annotations

import time  # repro-lint: disable-file=RL003,RL101 (snapshot latency is a property of the host, not the run; the tainted stores land in supervisor stats, never in the service result)
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..control.service import Service, ServiceConfig
from ..obs import TraceBus
from .checkpoint import (CheckpointError, CheckpointInfo, checkpoint_path,
                         latest_checkpoint, prune_checkpoints,
                         write_checkpoint)
from .wal import WriteAheadLog

#: Subdirectories of a durable-service root.
CHECKPOINT_DIR = "checkpoints"
WAL_FILE = "wal.jsonl"


@dataclass
class RecoveryStats:
    """Supervisor-side accounting; never part of the service result."""

    snapshots: int = 0
    snapshot_bytes_last: int = 0
    snapshot_bytes_total: int = 0
    snapshot_s_last: float = 0.0
    snapshot_s_total: float = 0.0
    restores: int = 0
    wal_replayed: int = 0
    wal_torn_dropped: int = 0
    checkpoints_pruned: int = 0
    restored_epoch: Optional[int] = None

    def report(self) -> dict:
        return {
            "snapshots": self.snapshots,
            "snapshot_bytes_last": self.snapshot_bytes_last,
            "snapshot_bytes_total": self.snapshot_bytes_total,
            "snapshot_s_last": self.snapshot_s_last,
            "snapshot_s_total": self.snapshot_s_total,
            "restores": self.restores,
            "wal_replayed": self.wal_replayed,
            "wal_torn_dropped": self.wal_torn_dropped,
            "checkpoints_pruned": self.checkpoints_pruned,
            "restored_epoch": self.restored_epoch,
        }


class DurableService:
    """One durable service run rooted at a directory.

    ``kill`` optionally carries a
    :class:`~repro.faults.injectors.WorkerKill`: the supervisor runs the
    engine up to ``kill.at`` and lets the injector SIGKILL the process
    mid-epoch — without scheduling an engine event, so the interrupted
    run's calendar stays identical to the uninterrupted baseline's.
    """

    def __init__(self, config=None, schedule: Optional[List[dict]] = None,
                 *, root, checkpoint_every: int = 1, keep: int = 3,
                 wal_sync: bool = True, kill=None):
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables)")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = Path(root)
        self.checkpoint_every = checkpoint_every
        self.keep = keep
        self.kill = kill
        self.stats = RecoveryStats()
        self.restored_from: Optional[CheckpointInfo] = None
        self.wal = WriteAheadLog(self.root / WAL_FILE, sync=wal_sync)
        self.stats.wal_torn_dropped = self.wal.torn_dropped

        loaded = latest_checkpoint(self.root / CHECKPOINT_DIR)
        if loaded is not None:
            service, info = loaded
            if not isinstance(service, Service):
                raise CheckpointError(
                    f"{info.path}: payload is {type(service).__name__}, "
                    f"not a Service")
            if service.control.submitted != info.wal_pos:
                raise CheckpointError(
                    f"{info.path}: snapshot submission cursor "
                    f"{service.control.submitted} != header wal_pos "
                    f"{info.wal_pos} (mismatched root?)")
            self.service = service
            self.restored_from = info
            self.stats.restores = 1
            self.stats.restored_epoch = info.epoch
            self._bind_bus()
            self.bus.emit("recovery.restore", component="recovery",
                          epoch=info.epoch, wal_pos=info.wal_pos,
                          path=str(info.path))
            self._replay(start=info.wal_pos)
        else:
            if config is None:
                raise CheckpointError(
                    f"{self.root}: no checkpoint to resume and no config "
                    f"to start fresh from")
            if not isinstance(config, ServiceConfig):
                config = ServiceConfig(**config)
            self.service = Service(config)
            self._bind_bus()
            if self.wal.pos > 0:
                # Crashed before the first snapshot: the WAL alone is
                # the submission history; replay it from the beginning.
                self.stats.restores = 1
                self._replay(start=0)
            else:
                for raw in schedule or []:
                    self.submit(raw)

    # ------------------------------------------------------------------
    def _bind_bus(self) -> None:
        """The supervisor's own trace bus: recovery events are stamped
        with the (deterministic) sim clock but recorded *outside* the
        service's trace, keeping the result signature restore-invariant."""
        self.bus = TraceBus(self.service.sim)

    def _replay(self, start: int) -> None:
        entries = self.wal.entries(start=start)
        for _pos, raw in entries:
            self.service.control.submit(raw)
        self.stats.wal_replayed += len(entries)
        if self.service.control.submitted != self.wal.pos:
            raise CheckpointError(
                f"{self.root}: WAL replay left the control plane at "
                f"cursor {self.service.control.submitted}, log is at "
                f"{self.wal.pos}")
        self.bus.emit("recovery.wal_replay", component="recovery",
                      replayed=len(entries), start=start)

    # ------------------------------------------------------------------
    def submit(self, raw: object) -> None:
        """Durably submit one control command (logged before applied)."""
        self.wal.append(raw)
        self.service.control.submit(raw)

    @property
    def epochs_run(self) -> int:
        return self.service.epochs_run

    # ------------------------------------------------------------------
    def advance(self) -> dict:
        """Run one epoch to its boundary, close it, maybe snapshot."""
        service = self.service
        kill = self.kill
        if (kill is not None and not kill.fired()
                and service.sim.now < kill.at <= service.next_epoch_end):
            # Split the epoch at the kill instant.  run(until=t) at an
            # arbitrary t does not perturb the calendar, so a baseline
            # without the kill stays byte-identical.
            service.sim.run(until=kill.at)
            kill.maybe_fire()  # no return when it SIGKILLs
        report = service.run_epoch()
        if (self.checkpoint_every
                and service.epochs_run % self.checkpoint_every == 0):
            self.snapshot()
        return report

    def snapshot(self) -> CheckpointInfo:
        """Write one epoch-boundary checkpoint (atomic, integrity-hashed)."""
        service = self.service
        assert service.control.submitted == self.wal.pos, \
            "control plane and WAL cursors diverged"
        t0 = time.perf_counter()
        info = write_checkpoint(
            checkpoint_path(self.root / CHECKPOINT_DIR, service.epochs_run),
            service, epoch=service.epochs_run, sim_now=service.sim.now,
            wal_pos=self.wal.pos)
        elapsed = time.perf_counter() - t0
        stats = self.stats
        stats.snapshots += 1
        stats.snapshot_bytes_last = info.payload_len
        stats.snapshot_bytes_total += info.payload_len
        stats.snapshot_s_last = elapsed
        stats.snapshot_s_total += elapsed
        stats.checkpoints_pruned += prune_checkpoints(
            self.root / CHECKPOINT_DIR, self.keep)
        self.bus.emit("recovery.snapshot", component="recovery",
                      epoch=info.epoch, bytes=info.payload_len,
                      wal_pos=info.wal_pos, seconds=elapsed)
        return info

    # ------------------------------------------------------------------
    def run(self, epochs: int) -> dict:
        """Run (or finish) up to ``epochs`` total epochs; canonical result.

        Restore-aware: a service resumed at epoch k runs only the
        remaining ``epochs - k``.
        """
        if epochs < 1:
            raise ValueError("at least one epoch")
        while self.service.epochs_run < epochs:
            self.advance()
        return self.result()

    def result(self) -> dict:
        return self.service.result()

    def recovery_report(self) -> dict:
        """Supervisor-side durability accounting (kept out of the
        service result on purpose — it differs between an interrupted
        and an uninterrupted run)."""
        return self.stats.report()

    def close(self) -> None:
        self.wal.close()
