"""CLI driver: ``python -m repro.analysis {lint,analyze,baseline}``.

* ``lint``     — the per-file AST pass (RL001–RL006).
* ``analyze``  — the whole-program pass (RL101–RL104) with incremental
  caching, optional committed baseline, and JSON/SARIF output.
* ``baseline`` — regenerate the committed baseline from current
  findings.

Exit status (all subcommands): 0 when clean, 1 when violations were
found, 2 on usage or I/O errors.  Reports are stable across runs
(sorted by file, line, column, code) so CI output can be diffed; the
analyze cache/progress line goes to stderr so stdout stays the report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baseline import (DEFAULT_BASELINE_PATH, apply_baseline, load_baseline,
                       write_baseline)
from .cache import AnalysisCache, default_cache_path
from .checkers import CHECKER_CATALOG, AnalyzeConfig, analyze_paths
from .lint import LintConfig, lint_paths
from .report import format_json, format_report, format_sarif
from .rules import RULE_CATALOG


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repro-specific static analysis for the AC/DC datapath.")
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser("lint", help="run the per-file AST lint pass")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: src/)")
    lint.add_argument("--select", default="",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    analyze = sub.add_parser(
        "analyze", help="run the whole-program pass (RL101-RL104)")
    analyze.add_argument("paths", nargs="*",
                         help="package roots to analyze (default: src/)")
    analyze.add_argument("--select", default="",
                         help="comma-separated checker codes (default: all)")
    analyze.add_argument("--list-rules", action="store_true",
                         help="print the checker catalog and exit")
    analyze.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text", help="report format for stdout")
    analyze.add_argument("--sarif", metavar="PATH",
                         help="additionally write a SARIF 2.1.0 log here")
    analyze.add_argument("--baseline", metavar="PATH", nargs="?",
                         const=DEFAULT_BASELINE_PATH, default=None,
                         help="subtract findings recorded in this baseline "
                              f"(default path: {DEFAULT_BASELINE_PATH})")
    analyze.add_argument("--cache", metavar="PATH",
                         default=default_cache_path(),
                         help="incremental cache file")
    analyze.add_argument("--no-cache", action="store_true",
                         help="analyze cold, without reading or writing "
                              "the cache")
    analyze.add_argument("--stats-json", metavar="PATH",
                         help="write run statistics (parsed/checked/"
                              "from_cache counts) as JSON")

    baseline = sub.add_parser(
        "baseline", help="manage the committed analyze baseline")
    baseline.add_argument("paths", nargs="*",
                          help="package roots to analyze (default: src/)")
    baseline.add_argument("--write", metavar="PATH", nargs="?",
                          const=DEFAULT_BASELINE_PATH, default=None,
                          help="write the baseline covering current "
                               "findings (default path: "
                               f"{DEFAULT_BASELINE_PATH})")
    return parser


def _parse_select(raw: str, catalog) -> Optional[tuple]:
    select = tuple(c.strip() for c in raw.split(",") if c.strip())
    unknown = [c for c in select if c not in catalog]
    if unknown:
        print(f"repro-analysis: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return None
    return select


def _run_lint(args) -> int:
    if args.list_rules:
        for code in sorted(RULE_CATALOG):
            print(f"{code}  {RULE_CATALOG[code]}")
        return 0
    select = _parse_select(args.select, RULE_CATALOG)
    if select is None:
        return 2
    config = LintConfig(select=select)
    try:
        violations = lint_paths(args.paths or ["src/"], config)
    except OSError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    print(format_report(violations))
    return 1 if violations else 0


def _analyze(paths, select, cache):
    config = AnalyzeConfig(select=select)
    return analyze_paths(paths or ["src/"], config, cache=cache)


def _run_analyze(args) -> int:
    if args.list_rules:
        for code in sorted(CHECKER_CATALOG):
            print(f"{code}  {CHECKER_CATALOG[code]}")
        return 0
    select = _parse_select(args.select, CHECKER_CATALOG)
    if select is None:
        return 2
    cache = None if args.no_cache else AnalysisCache(args.cache)
    try:
        violations, stats = _analyze(args.paths, select, cache)
    except OSError as exc:
        print(f"repro-analysis: {exc}", file=sys.stderr)
        return 2
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"repro-analysis: {exc}", file=sys.stderr)
            return 2
        violations, absorbed = apply_baseline(violations, baseline)
        if absorbed:
            print(f"repro-analysis: baseline absorbed {absorbed} "
                  "finding(s)", file=sys.stderr)
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(format_sarif(violations, rules=CHECKER_CATALOG))
            fh.write("\n")
    if args.stats_json:
        import json
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(format_json(violations))
    elif args.format == "sarif":
        print(format_sarif(violations, rules=CHECKER_CATALOG))
    else:
        print(format_report(violations, tool="repro-analysis"))
    print(f"repro-analysis: {stats.modules} module(s), "
          f"{stats.parsed} parsed, {stats.checked} checked, "
          f"{stats.from_cache} from cache", file=sys.stderr)
    return 1 if violations else 0


def _run_baseline(args) -> int:
    try:
        violations, _ = _analyze(args.paths, (), cache=None)
    except OSError as exc:
        print(f"repro-analysis: {exc}", file=sys.stderr)
        return 2
    if args.write is None:
        print(format_report(violations, tool="repro-analysis"))
        print("repro-analysis: re-run with --write to record these "
              "findings as the baseline", file=sys.stderr)
        return 1 if violations else 0
    count = write_baseline(violations, args.write)
    print(f"repro-analysis: wrote baseline with {count} finding(s) "
          f"to {args.write}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "analyze":
        return _run_analyze(args)
    if args.command == "baseline":
        return _run_baseline(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
