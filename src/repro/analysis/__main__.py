"""CLI driver: ``python -m repro.analysis lint [paths...]``.

Exit status: 0 when the tree is clean, 1 when violations were found,
2 on usage or I/O errors.  The report is stable across runs (sorted by
file, line, column, code) so CI output can be diffed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .lint import LintConfig, lint_paths
from .report import format_report
from .rules import RULE_CATALOG


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repro-specific static analysis for the AC/DC datapath.")
    sub = parser.add_subparsers(dest="command")
    lint = sub.add_parser("lint", help="run the AST lint pass")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: src/)")
    lint.add_argument("--select", default="",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command != "lint":
        parser.print_help()
        return 2
    if args.list_rules:
        for code in sorted(RULE_CATALOG):
            print(f"{code}  {RULE_CATALOG[code]}")
        return 0
    paths = args.paths or ["src/"]
    select = tuple(c.strip() for c in args.select.split(",") if c.strip())
    unknown = [c for c in select if c not in RULE_CATALOG]
    if unknown:
        print(f"repro-lint: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    config = LintConfig(select=select)
    try:
        violations = lint_paths(paths, config)
    except OSError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    print(format_report(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
