"""Content-hash incremental cache for the whole-program analyzer.

One JSON file (default ``.repro-analysis-cache.json``, overridable via
``--cache`` or ``$REPRO_ANALYSIS_CACHE``) holding, per module:

* the **summary** (sha256 + extracted facts) — reused by
  :func:`repro.analysis.project.build_project` whenever the file's
  content hash still matches, skipping the parse entirely;
* the **post-suppression findings** — reused by
  :func:`repro.analysis.checkers.analyze_paths` for modules outside the
  reverse-import closure of the changed set.

Findings are only reused when the stored *epoch* matches: the epoch
hashes the analyzer version, checker config, merged event schemas and
the picklable set, i.e. every global input a module's findings can
depend on besides its own content and its imports.  A config change, a
schema change, or a shift in what the pickle roots reach therefore
invalidates findings wholesale while still reusing summaries (which
depend only on file content).

The cache is an optimisation, never an input: a corrupt or
wrong-version file is silently discarded and the run proceeds cold.
The file is machine-local state and belongs in ``.gitignore``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .project import Project
from .rules import Violation

CACHE_VERSION = 1
DEFAULT_CACHE_PATH = ".repro-analysis-cache.json"
CACHE_ENV_VAR = "REPRO_ANALYSIS_CACHE"


def default_cache_path() -> str:
    return os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_PATH)


def _violation_to_json(v: Violation) -> list:
    return [v.path, v.line, v.col, v.code, v.message]


def _violation_from_json(row: list) -> Violation:
    return Violation(path=row[0], line=row[1], col=row[2],
                     code=row[3], message=row[4])


class AnalysisCache:
    """Load/store wrapper around the cache file."""

    def __init__(self, path: Optional[str] = None):
        self.path = path if path is not None else default_cache_path()
        self._data = self._load()

    def _load(self) -> dict:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) \
                or data.get("version") != CACHE_VERSION:
            return {}
        return data

    # ------------------------------------------------------------------
    def summaries(self) -> Dict[str, dict]:
        """abs path -> summary JSON (content-hash validated by caller)."""
        out: Dict[str, dict] = {}
        for entry in self._data.get("modules", {}).values():
            summary = entry.get("summary")
            if summary and "path" in summary:
                out[os.path.abspath(summary["path"])] = summary
        return out

    def findings(self, epoch: str) -> Dict[str, List[Violation]]:
        """module -> cached findings, only when the epoch matches."""
        if self._data.get("epoch") != epoch:
            return {}
        out: Dict[str, List[Violation]] = {}
        for name, entry in self._data.get("modules", {}).items():
            rows = entry.get("findings")
            if rows is not None:
                out[name] = [_violation_from_json(row) for row in rows]
        return out

    # ------------------------------------------------------------------
    def store(self, project: Project, epoch: str,
              by_module: Dict[str, List[Violation]]) -> None:
        modules: Dict[str, dict] = {}
        for name, summary in project.modules.items():
            modules[name] = {
                "summary": summary.to_json(),
                "findings": [_violation_to_json(v)
                             for v in by_module.get(name, [])],
            }
        payload = {"version": CACHE_VERSION, "epoch": epoch,
                   "modules": modules}
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._data = payload
