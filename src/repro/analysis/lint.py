"""`repro-lint` driver: parse, apply rules, honour suppressions.

Suppression syntax (a reason is **required** — a bare disable does not
suppress and is itself reported as RL000):

* inline, on the flagged line (or a standalone comment on the line
  directly above it)::

      ahead = nxt - una  # repro-lint: disable=RL001 (linear test fixture)

* file-level, anywhere in the file, applying to every line::

      # repro-lint: disable-file=RL001 (guest stack is linear-space)

Multiple codes may be given comma-separated: ``disable=RL001,RL003 (...)``.

Two structural exemptions are built in rather than suppressed inline,
because they *are* the sanctioned implementations the rules point to:
``net/packet.py`` (the RFC 1982 serial-arithmetic helpers) is exempt from
RL001, and ``sim/rng.py`` (the named-stream registry) from RL002.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from .rules import RULE_CATALOG, RuleVisitor, Violation
from .suppress import parse_suppressions


@dataclass(frozen=True)
class LintConfig:
    """Rule configuration; defaults encode the repo's structure."""

    #: Path suffixes exempt from RL001 (the serial-arithmetic helpers).
    serial_helper_suffixes: Tuple[str, ...] = ("net/packet.py",)
    #: Path suffixes exempt from RL002 (the sanctioned RNG registry).
    rng_registry_suffixes: Tuple[str, ...] = ("sim/rng.py",)
    #: Restrict to these codes (None = every rule).
    select: Tuple[str, ...] = ()

    def enabled_for(self, path: str) -> Set[str]:
        codes = set(self.select) if self.select else set(RULE_CATALOG)
        codes.discard("RL000")  # emitted by the suppression parser
        codes.discard("RL999")  # emitted by the parse-error path
        norm = path.replace(os.sep, "/")
        if any(norm.endswith(sfx) for sfx in self.serial_helper_suffixes):
            codes.discard("RL001")
        if any(norm.endswith(sfx) for sfx in self.rng_registry_suffixes):
            # The registry both seeds its own Randoms (RL002) and is the
            # sanctioned construction site RL006 points everyone else to.
            codes.discard("RL002")
            codes.discard("RL006")
        return codes


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                config: LintConfig = LintConfig()) -> List[Violation]:
    """Lint one unit of source text; returns surviving violations."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 1,
                          col=(exc.offset or 1) - 1, code="RL999",
                          message=f"parse error: {exc.msg}")]
    visitor = RuleVisitor(path, enabled=config.enabled_for(path))
    visitor.visit(tree)
    sup = parse_suppressions(source, path)
    kept = sup.apply(visitor.violations)
    kept.extend(sup.malformed)
    return sorted(kept)


def lint_file(path: str, config: LintConfig = LintConfig()) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, config=config)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a deterministic list of .py files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, f)
                           for f in sorted(files) if f.endswith(".py"))
        else:
            out.append(path)
    return out


def lint_paths(paths: Sequence[str],
               config: LintConfig = LintConfig()) -> List[Violation]:
    """Lint every ``.py`` file under ``paths``; sorted, deterministic."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, config))
    return sorted(violations)
