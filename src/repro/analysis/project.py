"""Whole-program project model for ``python -m repro.analysis analyze``.

The per-file lint pass (:mod:`repro.analysis.lint`) sees one module at a
time, so anything that crosses a module boundary — a wall-clock value
laundered through a helper function, an ``emit()`` whose event type only
exists in another module's ``EVENT_SCHEMAS``, a lambda assigned onto a
class that some *other* module pickles — is invisible to it.  This
module parses the package once into a **project model**:

* one :class:`ModuleSummary` per file — a plain-JSON fact sheet (symbol
  table, import edges, emit sites, a taint-dataflow skeleton, hook-use
  guardedness, callable-onto-attribute stores, suppression table) that
  the incremental cache (:mod:`repro.analysis.cache`) can persist and
  reload without re-parsing the file;
* an **import graph** over the analyzed modules (module-level imports
  only — a function-local import is the sanctioned idiom for keeping a
  dependency *out* of a pickle closure, so it deliberately does not
  create an edge), with forward reachability (for the snapshot-safety
  picklable set) and reverse closure (for cache invalidation);
* a conservative **call graph** over ``repro.*``: bare names resolved
  through each module's import table, ``self.method`` resolved within
  the defining class, ``module.function`` through module aliases.
  Anything ambiguous resolves to *nothing* — the checkers only ever act
  on edges that are certain.

The checkers themselves live in :mod:`repro.analysis.checkers`.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .suppress import Suppressions, parse_suppressions

#: Bump when summary *shape* changes: stale caches are discarded wholesale.
SUMMARY_VERSION = 1

# --- taint sources (mirrors the per-file RL002/RL003 vocabulary) ----------
WALL_CLOCK_TIME_ATTRS = {
    "time", "monotonic", "perf_counter", "process_time",
    "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
}
WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Default attribute names treated as optional zero-cost-off hooks when a
#: class can leave them ``None`` (RL103).
DEFAULT_HOOK_ATTRS = (
    "obs", "trace", "flight", "sanitizer", "guard", "window_cb",
    "recorder", "bus", "_obs", "_accounting", "_int", "int_tel",
)

#: Callees whose callable arguments land in the engine's (picklable) heap.
DEFAULT_SCHEDULE_CALLEES = ("schedule", "schedule_at", "Timer")


@dataclass(frozen=True)
class ProjectConfig:
    """Knobs that shape what the summaries record.

    Changing any of these invalidates cached summaries (they are part of
    the cache's config hash).
    """

    #: Path suffixes exempt from RNG-source detection (the sanctioned
    #: stream registry constructs its own seeded Randoms).
    rng_registry_suffixes: Tuple[str, ...] = ("sim/rng.py",)
    hook_attrs: Tuple[str, ...] = DEFAULT_HOOK_ATTRS
    schedule_callees: Tuple[str, ...] = DEFAULT_SCHEDULE_CALLEES

    def digest(self) -> str:
        payload = repr((SUMMARY_VERSION, self.rng_registry_suffixes,
                        self.hook_attrs, self.schedule_callees))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class ModuleSummary:
    """Everything the checkers need to know about one module."""

    module: str
    path: str
    sha256: str
    facts: dict

    def to_json(self) -> dict:
        return {"module": self.module, "path": self.path,
                "sha256": self.sha256, "facts": self.facts}

    @classmethod
    def from_json(cls, data: dict) -> "ModuleSummary":
        return cls(module=data["module"], path=data["path"],
                   sha256=data["sha256"], facts=data["facts"])

    @property
    def suppressions(self) -> Suppressions:
        return Suppressions.from_json(self.facts.get("suppressions", {}))


# ---------------------------------------------------------------------------
# Module naming
# ---------------------------------------------------------------------------
def module_name_for(path: str) -> Tuple[str, bool]:
    """Dotted module name for ``path`` and whether it is a package.

    Walks up the directory tree as long as ``__init__.py`` files are
    found, so ``src/repro/core/acdc.py`` maps to ``repro.core.acdc``
    regardless of the invocation directory.
    """
    path = os.path.abspath(path)
    parts: List[str] = []
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.insert(0, os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    stem = os.path.splitext(os.path.basename(path))[0]
    is_pkg = stem == "__init__"
    if not is_pkg:
        parts.append(stem)
    return ".".join(parts) if parts else stem, is_pkg


def _dotted(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c``; None when it is not
    a pure chain (calls, subscripts... break it)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_optional_annotation(node: Optional[ast.AST]) -> bool:
    """``Optional[X]`` or ``X | None`` annotations."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript) and _terminal(node.value) == "Optional":
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_none(node.left) or _is_none(node.right) \
            or _is_optional_annotation(node.left) \
            or _is_optional_annotation(node.right)
    return False


#: RL006-style mutable-registry values (module-level run state).
_MUTABLE_CALLEES = {"list", "dict", "set", "bytearray", "deque",
                    "defaultdict", "OrderedDict", "Counter",
                    "count", "cycle", "chain", "repeat"}


def _is_registry_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _terminal(node.func) in _MUTABLE_CALLEES
    return False


# ---------------------------------------------------------------------------
# Summary construction
# ---------------------------------------------------------------------------
class _Summarizer:
    """One pass over a parsed module, producing the JSONable fact sheet."""

    def __init__(self, module: str, path: str, is_pkg: bool,
                 tree: ast.Module, source: str, config: ProjectConfig):
        self.module = module
        self.path = path
        self.is_pkg = is_pkg
        self.tree = tree
        self.source = source
        self.config = config
        norm = path.replace(os.sep, "/")
        self.rng_exempt = any(norm.endswith(sfx)
                              for sfx in config.rng_registry_suffixes)
        # import state
        self.module_aliases: Dict[str, str] = {}   # alias -> dotted module
        self.from_bindings: Dict[str, Tuple[str, str]] = {}  # name -> (mod, orig)
        self.import_targets: Set[str] = set()
        # module symbol table
        self.module_defs: Set[str] = set()         # top-level function names
        self.registries: Set[str] = set()          # mutable module-level state
        # facts under construction
        self.functions: Dict[str, dict] = {}
        self.classes: Dict[str, dict] = {}
        self.emits: List[dict] = []
        self.literals: Set[str] = set()
        self.schemas: Dict[str, List[str]] = {}
        self.schema_lines: Dict[str, int] = {}
        self.picklable_stores: List[dict] = []

    # ------------------------------------------------------------------
    def run(self) -> dict:
        self._collect_imports_and_toplevel()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarize_function(node, qual=node.name, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._summarize_class(node)
        self._collect_emits_and_literals()
        sup = parse_suppressions(self.source, self.path)
        return {
            "imports": sorted(self.import_targets),
            "functions": self.functions,
            "classes": self.classes,
            "emits": self.emits,
            "string_literals": sorted(self.literals),
            "event_schemas": self.schemas,
            "event_schema_lines": self.schema_lines,
            "picklable_stores": self.picklable_stores,
            "registries": sorted(self.registries),
            "suppressions": sup.to_json(),
        }

    # ------------------------------------------------------------------
    def _collect_imports_and_toplevel(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.asname or "." not in alias.name:
                        self.module_aliases[bound] = alias.name
                    # `import a.b` binds `a` but makes a.b importable too.
                    if node.col_offset == 0:
                        self.import_targets.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.from_bindings[bound] = (base, alias.name)
                    if node.col_offset == 0:
                        # Edge to the longest plausible module path; the
                        # project trims it to an analyzed module later.
                        self.import_targets.add(f"{base}.{alias.name}")
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._note_module_binding(target, node.value, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._note_module_binding(node.target, node.value, node)

    def _resolve_from_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = self.module.split(".")
        pkg = parts if self.is_pkg else parts[:-1]
        if node.level - 1 > len(pkg):
            return None
        base = pkg[: len(pkg) - (node.level - 1)]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _note_module_binding(self, target: ast.AST, value: ast.AST,
                             node: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name == "EVENT_SCHEMAS" and isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue
                fields: List[str] = []
                if isinstance(val, (ast.Tuple, ast.List)):
                    fields = [e.value for e in val.elts
                              if isinstance(e, ast.Constant)
                              and isinstance(e.value, str)]
                self.schemas[key.value] = fields
                self.schema_lines[key.value] = key.lineno
        elif (not name.isupper() and not name.startswith("__")
              and _is_registry_value(value)):
            self.registries.add(name)

    # ------------------------------------------------------------------
    def _collect_emits_and_literals(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if len(node.value) <= 120:
                    self.literals.add(node.value)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"):
                first = node.args[0] if node.args else None
                type_ = (first.value
                         if isinstance(first, ast.Constant)
                         and isinstance(first.value, str) else None)
                self.emits.append({
                    "line": node.lineno, "col": node.col_offset,
                    "type": type_,
                    "fields": sorted(kw.arg for kw in node.keywords
                                     if kw.arg is not None),
                    "has_star": any(kw.arg is None for kw in node.keywords),
                    "recv": _dotted(node.func.value) or "<expr>",
                })

    # ------------------------------------------------------------------
    # Call / source resolution
    # ------------------------------------------------------------------
    def _resolve_call(self, func: ast.AST,
                      cls: Optional[str]) -> Optional[str]:
        """Conservative callee id ``module:qualname``; None if unsure."""
        if isinstance(func, ast.Name):
            bound = self.from_bindings.get(func.id)
            if bound is not None:
                return f"{bound[0]}:{bound[1]}"
            if func.id in self.module_defs:
                return f"{self.module}:{func.id}"
            return None
        if isinstance(func, ast.Attribute):
            if (cls is not None and isinstance(func.value, ast.Name)
                    and func.value.id == "self"):
                return f"{self.module}:{cls}.{func.attr}"
            if isinstance(func.value, ast.Name):
                mod = self.module_aliases.get(func.value.id)
                if mod is not None:
                    return f"{mod}:{func.attr}"
        return None

    def _source_kind(self, call: ast.Call) -> Optional[str]:
        """'wall-clock' / 'rng' when ``call`` is a nondeterminism source."""
        func = call.func
        if isinstance(func, ast.Name):
            bound = self.from_bindings.get(func.id)
            if bound is None:
                return None
            mod, orig = bound
            if mod == "time" and orig in WALL_CLOCK_TIME_ATTRS:
                return "wall-clock"
            if mod == "datetime" and orig == "datetime":
                return None  # class alias; calls are constructions
            if mod == "random" and not self.rng_exempt:
                if orig == "Random":
                    return None if (call.args or call.keywords) else "rng"
                if orig == "SystemRandom":
                    return "rng"
                return "rng"
            return None
        chain = _dotted(func)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        mod = self.module_aliases.get(head)
        if mod == "time" and rest in WALL_CLOCK_TIME_ATTRS:
            return "wall-clock"
        if mod == "datetime" and (
                rest in WALL_CLOCK_DATETIME_ATTRS
                or (rest.startswith("datetime.")
                    and rest.split(".", 1)[1] in WALL_CLOCK_DATETIME_ATTRS)):
            return "wall-clock"
        bound = self.from_bindings.get(head)
        if bound == ("datetime", "datetime") \
                and rest in WALL_CLOCK_DATETIME_ATTRS:
            return "wall-clock"
        if mod == "random" and not self.rng_exempt:
            if rest == "Random":
                return None if (call.args or call.keywords) else "rng"
            if "." not in rest:
                return "rng"
        return None

    # ------------------------------------------------------------------
    # Expression facts (taint skeleton)
    # ------------------------------------------------------------------
    def _expr_facts(self, node: ast.AST, cls: Optional[str],
                    local_defs: Set[str]) -> dict:
        deps: Set[str] = set()
        calls: Set[str] = set()
        kinds: Set[str] = set()
        sched: List[dict] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                deps.add(sub.id)
            elif isinstance(sub, ast.Call):
                kind = self._source_kind(sub)
                if kind is not None:
                    kinds.add(kind)
                ref = self._resolve_call(sub.func, cls)
                if ref is not None:
                    calls.add(ref)
                callee = _terminal(sub.func)
                if callee in self.config.schedule_callees and any(
                        isinstance(a, ast.Lambda) or (
                            isinstance(a, ast.Name) and a.id in local_defs)
                        for a in sub.args):
                    sched.append({"callee": callee, "line": sub.lineno,
                                  "col": sub.col_offset})
        return {"deps": sorted(deps), "calls": sorted(calls),
                "kinds": sorted(kinds), "sched": sched}

    # ------------------------------------------------------------------
    # Functions: taint dataflow skeleton + call sites
    # ------------------------------------------------------------------
    def _summarize_function(self, node, qual: str,
                            cls: Optional[str]) -> None:
        assigns: List[dict] = []
        attr_stores: List[dict] = []
        returns: List[dict] = []
        call_sites: List[dict] = []
        # Prescan locally-bound names: params and assignment targets
        # shadow module-level bindings, so `self.x = name` only counts as
        # a registry/import reference when `name` is NOT bound locally.
        local_defs: Set[str] = set()
        local_names: Set[str] = set()
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            local_names.add(arg.arg)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                local_names.add(vararg.arg)
        for sub in ast.walk(node):
            if (isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub is not node):
                local_defs.add(sub.name)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                local_names.add(sub.id)
        local_names |= local_defs

        def facts_for(value: ast.AST) -> dict:
            f = self._expr_facts(value, cls, local_defs)
            for s in f.pop("sched"):
                self.picklable_stores.append({
                    "kind": "scheduled-callable", "attr": s["callee"],
                    "name": qual, "line": s["line"], "col": s["col"]})
            return f

        def handle_store(target: ast.AST, value: ast.AST,
                         extra_dep: Optional[str] = None) -> None:
            f = facts_for(value)
            if extra_dep is not None:
                f = dict(f, deps=sorted(set(f["deps"]) | {extra_dep}))
            entry = dict(f, line=target.lineno, col=target.col_offset)
            if isinstance(target, ast.Name):
                assigns.append(dict(entry, target=target.id))
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                base = target.value if isinstance(target, ast.Subscript) \
                    else target
                attr = _dotted(base)
                if attr is None:
                    return
                if isinstance(target, ast.Subscript):
                    attr += "[...]"
                attr_stores.append(dict(entry, attr=attr))
                self._note_picklable_store(target, value,
                                           local_defs, local_names)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    handle_store(elt, value)

        def walk(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested scopes stay out of this dataflow
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        handle_store(target, stmt.value)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    handle_store(stmt.target, stmt.value)
                elif isinstance(stmt, ast.AugAssign):
                    extra = stmt.target.id \
                        if isinstance(stmt.target, ast.Name) else None
                    handle_store(stmt.target, stmt.value, extra_dep=extra)
                elif isinstance(stmt, ast.Return) and stmt.value is not None:
                    returns.append(dict(facts_for(stmt.value),
                                        line=stmt.lineno))
                else:
                    for value in ast.iter_child_nodes(stmt):
                        if isinstance(value, ast.expr):
                            facts_for(value)  # side effect: sched stores
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        ref = self._resolve_call(sub.func, cls)
                        if ref is not None:
                            call_sites.append({
                                "ref": ref,
                                "name": _dotted(sub.func) or "<call>",
                                "line": sub.lineno, "col": sub.col_offset})
                # recurse into compound statements
                for sub_body in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, sub_body, None)
                    if inner and not isinstance(stmt, (ast.FunctionDef,
                                                       ast.AsyncFunctionDef)):
                        walk(inner)
                for handler in getattr(stmt, "handlers", ()):
                    walk(handler.body)

        walk(node.body)
        self.functions[qual] = {
            "assigns": assigns, "attr_stores": attr_stores,
            "returns": returns, "calls": call_sites,
            "line": node.lineno,
        }

    def _note_picklable_store(self, target: ast.AST, value: ast.AST,
                              local_defs: Set[str],
                              local_names: Set[str]) -> None:
        """RL104 raw material: callables/registries stored on instances."""
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        attr = target.attr
        entry = {"attr": attr, "line": target.lineno,
                 "col": target.col_offset}
        if isinstance(value, ast.Lambda):
            self.picklable_stores.append(dict(entry, kind="lambda", name=""))
        elif isinstance(value, ast.GeneratorExp):
            self.picklable_stores.append(
                dict(entry, kind="generator-expression", name=""))
        elif isinstance(value, ast.Name):
            if value.id in local_defs:
                self.picklable_stores.append(
                    dict(entry, kind="local-function", name=value.id))
            elif value.id in local_names:
                pass  # a local/param shadows any module-level binding
            elif value.id in self.registries:
                self.picklable_stores.append(dict(
                    entry, kind="registry-ref", name=value.id,
                    ref=f"{self.module}:{value.id}"))
            elif value.id in self.from_bindings:
                mod, orig = self.from_bindings[value.id]
                self.picklable_stores.append(dict(
                    entry, kind="registry-ref", name=value.id,
                    ref=f"{mod}:{orig}"))

    # ------------------------------------------------------------------
    # Classes: optional hooks + guarded uses (RL103), methods (taint)
    # ------------------------------------------------------------------
    def _summarize_class(self, node: ast.ClassDef) -> None:
        optional_hooks: Dict[str, int] = {}
        hook_uses: List[dict] = []
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarize_function(item, qual=f"{node.name}.{item.name}",
                                         cls=node.name)
                _HookWalker(self, item, optional_hooks, hook_uses).run()
        self.classes[node.name] = {
            "optional_hooks": optional_hooks,
            "hook_uses": hook_uses,
            "line": node.lineno,
        }


class _HookWalker:
    """Per-method guardedness analysis for zero-cost-off hooks.

    Tracks, statement by statement, which hook expressions
    (``self.<hook>`` and local aliases of them) are *narrowed* — proven
    non-``None`` on the current path — and records every dereference
    (attribute access, call, subscript) with its guardedness.  Also
    infers which hook attributes the class can leave as ``None``.
    """

    def __init__(self, owner: _Summarizer, fn, optional_hooks: Dict[str, int],
                 hook_uses: List[dict]):
        self.owner = owner
        self.fn = fn
        self.hooks = set(owner.config.hook_attrs)
        self.optional_hooks = optional_hooks
        self.hook_uses = hook_uses
        self.aliases: Dict[str, str] = {}   # local name -> hook attr
        self.maybe_none: Set[str] = set()   # locals that may hold None
        args = fn.args
        pos = list(args.posonlyargs) + list(args.args)
        defaults = list(args.defaults)
        for arg, default in zip(reversed(pos), reversed(defaults)):
            if _is_none(default):
                self.maybe_none.add(arg.arg)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if _is_none(default):
                self.maybe_none.add(arg.arg)
        for arg in pos + list(args.kwonlyargs):
            if _is_optional_annotation(arg.annotation):
                self.maybe_none.add(arg.arg)

    # -- expression classification -------------------------------------
    def _key_of(self, node: ast.AST) -> Optional[str]:
        """Canonical tracking key: ``self.X`` or an alias local name."""
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and node.attr in self.hooks):
            return f"self.{node.attr}"
        if isinstance(node, ast.Name) and node.id in self.aliases:
            return node.id
        return None

    def _attr_of(self, key: str) -> str:
        return key[5:] if key.startswith("self.") else self.aliases[key]

    @staticmethod
    def _name_narrowing(test: ast.AST) -> Tuple[Set[str], Set[str]]:
        """Local names proven non-None when ``test`` is (true, false)."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.left, ast.Name) \
                and _is_none(test.comparators[0]):
            if isinstance(test.ops[0], ast.IsNot):
                return {test.left.id}, set()
            if isinstance(test.ops[0], ast.Is):
                return set(), {test.left.id}
        if isinstance(test, ast.Name):
            return {test.id}, set()
        return set(), set()

    def _possibly_none(self, value: ast.AST,
                       nonnull: Set[str] = frozenset()) -> bool:
        if _is_none(value):
            return True
        if isinstance(value, ast.Name):
            return value.id in self.maybe_none and value.id not in nonnull
        if isinstance(value, ast.IfExp):
            # `x if x is not None else y` narrows x inside its branch.
            pos, neg = self._name_narrowing(value.test)
            return self._possibly_none(value.body, nonnull | pos) \
                or self._possibly_none(value.orelse, nonnull | neg)
        if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
            return self._possibly_none(value.values[-1], nonnull)
        if (isinstance(value, ast.Call) and _terminal(value.func) == "getattr"
                and len(value.args) == 3):
            return self._possibly_none(value.args[2], nonnull)
        return False

    # -- narrowing -------------------------------------------------------
    def _test_narrowing(self, test: ast.AST) -> Tuple[Set[str], Set[str]]:
        """(keys non-None when test is true, keys non-None when false)."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            key = self._key_of(test.left)
            if key is not None and _is_none(test.comparators[0]):
                if isinstance(test.ops[0], ast.IsNot):
                    return {key}, set()
                if isinstance(test.ops[0], ast.Is):
                    return set(), {key}
        key = self._key_of(test)
        if key is not None:  # truthiness: `if self.trace:`
            return {key}, set()
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            pos, neg = self._test_narrowing(test.operand)
            return neg, pos
        if isinstance(test, ast.BoolOp):
            pos: Set[str] = set()
            neg: Set[str] = set()
            for value in test.values:
                p, n = self._test_narrowing(value)
                pos |= p
                neg |= n
            # `A and B` true proves every conjunct's positive facts;
            # `A or B` false proves every disjunct's negative facts
            # (the `if x is None or x.sim is None: return` idiom).
            if isinstance(test.op, ast.And):
                return pos, set()
            return set(), neg
        return set(), set()

    @staticmethod
    def _terminates(body: Sequence[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))

    # -- expression scanning ---------------------------------------------
    def _scan(self, node: ast.AST, narrowed: Set[str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.BoolOp):
            acc = set(narrowed)
            for value in node.values:
                self._scan(value, acc)
                pos, neg = self._test_narrowing(value)
                acc |= pos if isinstance(node.op, ast.And) else neg
            return
        if isinstance(node, ast.IfExp):
            self._scan(node.test, narrowed)
            pos, neg = self._test_narrowing(node.test)
            self._scan(node.body, narrowed | pos)
            self._scan(node.orelse, narrowed | neg)
            return
        if isinstance(node, ast.Lambda):
            self._scan(node.body, set())  # deferred execution: no guards
            return
        base = None
        if isinstance(node, ast.Attribute):
            base = node.value
        elif isinstance(node, ast.Call):
            base = node.func
            # `self.window_cb(...)`: the call dereferences the hook even
            # though the Attribute node *is* the key, not its parent.
            key = self._key_of(node.func)
            if key is not None:
                self._record_use(key, node, narrowed)
                base = None
        elif isinstance(node, ast.Subscript):
            base = node.value
        if base is not None:
            key = self._key_of(base)
            if key is not None:
                self._record_use(key, node, narrowed)
        for child in ast.iter_child_nodes(node):
            self._scan(child, narrowed)

    def _record_use(self, key: str, node: ast.AST,
                    narrowed: Set[str]) -> None:
        self.hook_uses.append({
            "attr": self._attr_of(key), "key": key,
            "line": node.lineno, "col": node.col_offset,
            "guarded": key in narrowed,
        })

    # -- statement walking -----------------------------------------------
    def run(self) -> None:
        self._walk(self.fn.body, set())

    def _walk(self, body: Sequence[ast.stmt], narrowed: Set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                self._scan(stmt.test, narrowed)
                pos, neg = self._test_narrowing(stmt.test)
                self._walk(stmt.body, narrowed | pos)
                self._walk(stmt.orelse, narrowed | neg)
                if self._terminates(stmt.body):
                    narrowed |= neg
                if stmt.orelse and self._terminates(stmt.orelse):
                    narrowed |= pos
                self._narrow_locals(stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                if value is not None:
                    self._scan(value, narrowed)
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    self._scan_store_target(target, narrowed)
                    self._apply_assign(target, value, narrowed)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan(stmt.iter, narrowed)
                self._walk(stmt.body, set(narrowed))
                self._walk(stmt.orelse, set(narrowed))
            elif isinstance(stmt, ast.While):
                self._scan(stmt.test, narrowed)
                pos, _ = self._test_narrowing(stmt.test)
                self._walk(stmt.body, set(narrowed) | pos)
                self._walk(stmt.orelse, set(narrowed))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan(item.context_expr, narrowed)
                self._walk(stmt.body, narrowed)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, set(narrowed))
                for handler in stmt.handlers:
                    self._walk(handler.body, set(narrowed))
                self._walk(stmt.orelse, set(narrowed))
                self._walk(stmt.finalbody, narrowed)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(stmt.body, set())  # deferred: no outer guards
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan(child, narrowed)

    def _scan_store_target(self, target: ast.AST,
                           narrowed: Set[str]) -> None:
        # Stores *through* a hook (`self.obs.x = 1`) dereference it too.
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            key = self._key_of(target.value)
            if key is not None:
                self._record_use(key, target, narrowed)
            else:
                self._scan(target.value, narrowed)

    def _apply_assign(self, target: ast.AST, value: Optional[ast.AST],
                      narrowed: Set[str]) -> None:
        if value is None:
            return
        if isinstance(target, ast.Name):
            name = target.id
            narrowed.discard(name)
            key = self._key_of(value)
            if key is not None and key.startswith("self."):
                self.aliases[name] = key[5:]
            else:
                self.aliases.pop(name, None)
            if self._possibly_none(value):
                self.maybe_none.add(name)
            else:
                self.maybe_none.discard(name)
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in self.hooks):
            narrowed.discard(f"self.{target.attr}")
            if self._possibly_none(value):
                self.optional_hooks.setdefault(target.attr, target.lineno)

    def _narrow_locals(self, stmt: ast.If) -> None:
        """``if name is None: name = <non-None>`` (or return/raise) is the
        sanctioned narrowing idiom — afterwards the local is non-None."""
        test = stmt.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and _is_none(test.comparators[0])
                and isinstance(test.left, ast.Name)):
            return
        name = test.left.id
        rebinds = any(
            isinstance(inner, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                and not self._possibly_none(inner.value)
                for t in inner.targets)
            for inner in stmt.body)
        if rebinds or self._terminates(stmt.body):
            self.maybe_none.discard(name)


# ---------------------------------------------------------------------------
# Project assembly
# ---------------------------------------------------------------------------
def summarize_source(source: str, path: str,
                     config: Optional[ProjectConfig] = None) -> ModuleSummary:
    """Parse and summarize one module (raises SyntaxError on bad input)."""
    config = config if config is not None else ProjectConfig()
    module, is_pkg = module_name_for(path)
    tree = ast.parse(source, filename=path)
    facts = _Summarizer(module, path, is_pkg, tree, source, config).run()
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return ModuleSummary(module=module, path=path, sha256=digest, facts=facts)


@dataclass
class BuildStats:
    """What one project build actually did (for the cache contract)."""

    parsed: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    errors: List[Tuple[str, str]] = field(default_factory=list)


class Project:
    """The assembled whole-program model."""

    def __init__(self, summaries: Dict[str, ModuleSummary]):
        self.modules = summaries
        self._names = set(summaries)
        # import graph, trimmed to analyzed modules
        self.imports: Dict[str, Set[str]] = {}
        for name, summary in summaries.items():
            edges: Set[str] = set()
            for target in summary.facts.get("imports", ()):
                trimmed = self._trim(target)
                if trimmed is not None and trimmed != name:
                    edges.add(trimmed)
            self.imports[name] = edges
        self.reverse: Dict[str, Set[str]] = {name: set() for name in summaries}
        for name, edges in self.imports.items():
            for target in edges:
                self.reverse[target].add(name)

    def _trim(self, target: str) -> Optional[str]:
        parts = target.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self._names:
                return candidate
            parts.pop()
        return None

    # ------------------------------------------------------------------
    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Forward import reachability (the picklable-module set)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self._names]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.imports.get(name, ()))
        return seen

    def reverse_closure(self, seeds: Sequence[str]) -> Set[str]:
        """Seeds plus every module that (transitively) imports them."""
        seen: Set[str] = set()
        stack = [s for s in seeds if s in self._names]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.reverse.get(name, ()))
        return seen

    # ------------------------------------------------------------------
    def functions(self) -> Dict[str, dict]:
        """Merged ``module:qualname`` -> function facts table."""
        table: Dict[str, dict] = {}
        for name, summary in self.modules.items():
            for qual, facts in summary.facts.get("functions", {}).items():
                table[f"{name}:{qual}"] = facts
        return table

    def event_schemas(self) -> Tuple[Dict[str, List[str]], Optional[str]]:
        """(merged EVENT_SCHEMAS, module that defines them)."""
        merged: Dict[str, List[str]] = {}
        owner: Optional[str] = None
        for name in sorted(self.modules):
            schemas = self.modules[name].facts.get("event_schemas", {})
            if schemas:
                merged.update(schemas)
                owner = name if owner is None else owner
        return merged, owner


def build_project(paths: Sequence[str],
                  config: Optional[ProjectConfig] = None,
                  cached: Optional[Dict[str, dict]] = None,
                  ) -> Tuple[Project, BuildStats]:
    """Parse ``paths`` into a :class:`Project`.

    ``cached`` maps path -> summary JSON from a previous run; entries
    whose content hash still matches are reused without parsing.
    """
    from .lint import iter_python_files  # shared walker, no cycle

    config = config if config is not None else ProjectConfig()
    stats = BuildStats()
    summaries: Dict[str, ModuleSummary] = {}
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            stats.errors.append((path, str(exc)))
            continue
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        entry = (cached or {}).get(os.path.abspath(path))
        if entry is not None and entry.get("sha256") == digest:
            summary = ModuleSummary.from_json(entry)
            stats.reused.append(summary.module)
        else:
            try:
                summary = summarize_source(source, path, config)
            except SyntaxError as exc:
                stats.errors.append((path, f"parse error: {exc.msg}"))
                continue
            stats.parsed.append(summary.module)
        summaries[summary.module] = summary
    return Project(summaries), stats
