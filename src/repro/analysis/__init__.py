"""Correctness tooling for the AC/DC reproduction.

Two layers, one motivation: the paper's argument (§3.1–3.3) rests on the
vSwitch *exactly* reconstructing and enforcing TCP window state, and the
bug classes that silently corrupt that reconstruction keep recurring —
raw (non-serial) sequence comparisons that break at the 2^32 wrap,
encoded-RWND/wscale rounding errors, and nondeterminism from ad-hoc
RNG or wall-clock use.  This package catches them mechanically:

* **`repro-lint`** (:mod:`repro.analysis.lint`) — an AST static-analysis
  pass over the source tree with repro-specific rules (RL001–RL005), an
  inline suppression syntax that requires a written reason, and a CLI
  driver: ``python -m repro.analysis lint src/``.
* **whole-program analyzer** (:mod:`repro.analysis.project` +
  :mod:`repro.analysis.checkers`) — parses the package once into a
  project model (symbol tables, import graph, conservative call graph)
  and runs cross-file checkers RL101–RL104 (determinism taint,
  trace-contract, unguarded hooks, snapshot reachability) with
  content-hash incremental caching and a committed-baseline mechanism:
  ``python -m repro.analysis analyze src/``.
* **runtime sanitizer** (:mod:`repro.analysis.sanitize`) — opt-in
  invariant probes wrapped around the vSwitch datapath, the simulation
  engine and the switch buffer accounting.  Enabled via
  ``REPRO_SANITIZE=1`` or ``AcdcConfig(sanitize=True)``; zero cost when
  off.  Violations raise :class:`~repro.analysis.sanitize.InvariantViolation`
  carrying the flow key, the sim time and the run seed so every failure
  is replayable.
"""

from .checkers import (
    CHECKER_CATALOG,
    AnalyzeConfig,
    analyze_paths,
    analyze_project,
)
from .lint import LintConfig, lint_file, lint_paths, lint_source
from .project import Project, build_project
from .report import format_report
from .rules import RULE_CATALOG, Violation
from .sanitize import (
    DatapathSanitizer,
    InvariantViolation,
    enable,
    is_enabled,
    run_seed,
    set_run_seed,
)

__all__ = [
    "AnalyzeConfig",
    "CHECKER_CATALOG",
    "DatapathSanitizer",
    "InvariantViolation",
    "LintConfig",
    "Project",
    "RULE_CATALOG",
    "Violation",
    "analyze_paths",
    "analyze_project",
    "build_project",
    "enable",
    "format_report",
    "is_enabled",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_seed",
    "set_run_seed",
]
