"""Stable report formatting shared by ``lint`` and ``analyze``.

CI diffs the output between runs, so every format is strictly
deterministic: findings sorted by (path, line, column, code), paths
normalised to forward slashes and made relative to the invocation
directory when possible.  Three renderers:

* :func:`format_report` — the canonical one-finding-per-line text
  report with a fixed summary line;
* :func:`format_json` — a plain list of finding objects, for scripting;
* :func:`format_sarif` — SARIF 2.1.0, for code-scanning upload.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

from .rules import RULE_CATALOG, Violation


def _display_path(path: str, base: str) -> str:
    try:
        rel = os.path.relpath(path, base)
    except ValueError:  # different drive (Windows)
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def _displayed(violations: Sequence[Violation],
               base: str) -> List[Violation]:
    return sorted(
        Violation(path=_display_path(v.path, base), line=v.line,
                  col=v.col, code=v.code, message=v.message)
        for v in violations
    )


def format_report(violations: Sequence[Violation], base: str = ".",
                  tool: str = "repro-lint") -> str:
    """Render findings as the canonical file:line-sorted text report."""
    display = _displayed(violations, base)
    rendered = [v.render() for v in display]
    n = len(display)
    rendered.append(f"{tool}: {n} violation{'s' if n != 1 else ''}")
    return "\n".join(rendered)


def format_json(violations: Sequence[Violation], base: str = ".") -> str:
    """Findings as a JSON array (one object per finding)."""
    rows = [{"path": v.path, "line": v.line, "col": v.col,
             "code": v.code, "message": v.message}
            for v in _displayed(violations, base)]
    return json.dumps(rows, indent=2, sort_keys=True)


def format_sarif(violations: Sequence[Violation], base: str = ".",
                 tool: str = "repro-analysis",
                 rules: Dict[str, str] = None) -> str:
    """Findings as a SARIF 2.1.0 log (GitHub code-scanning format)."""
    catalog = dict(RULE_CATALOG)
    if rules:
        catalog.update(rules)
    display = _displayed(violations, base)
    used = sorted({v.code for v in display})
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool,
                "informationUri":
                    "https://example.invalid/repro-analysis",
                "rules": [{"id": code,
                           "shortDescription":
                               {"text": catalog.get(code, code)}}
                          for code in used],
            }},
            "results": [{
                "ruleId": v.code,
                "level": "error",
                "message": {"text": v.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": v.path},
                    "region": {"startLine": v.line,
                               "startColumn": v.col + 1},
                }}],
            } for v in display],
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)
