"""Stable report formatting for `repro-lint`.

CI diffs the linter's output between runs, so the format is strictly
deterministic: findings sorted by (path, line, column, code), paths
normalised to forward slashes and made relative to the invocation
directory when possible, one finding per line, and a fixed summary line.
"""

from __future__ import annotations

import os
from typing import List, Sequence

from .rules import Violation


def _display_path(path: str, base: str) -> str:
    try:
        rel = os.path.relpath(path, base)
    except ValueError:  # different drive (Windows)
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def format_report(violations: Sequence[Violation],
                  base: str = ".") -> str:
    """Render findings as the canonical file:line-sorted report."""
    rendered: List[str] = []
    display = sorted(
        Violation(path=_display_path(v.path, base), line=v.line,
                  col=v.col, code=v.code, message=v.message)
        for v in violations
    )
    rendered.extend(v.render() for v in display)
    n = len(display)
    rendered.append(f"repro-lint: {n} violation{'s' if n != 1 else ''}")
    return "\n".join(rendered)
