"""Shared suppression parsing for the per-file lint pass *and* the
whole-program analyzer.

Both tools honour the same comment syntax (a reason is **required** — a
bare disable does not suppress and is itself reported as RL000):

* inline, on the flagged line (or a standalone comment on the line
  directly above it)::

      ahead = nxt - una  # repro-lint: disable=RL001 (linear test fixture)

* file-level, anywhere in the file, applying to every line::

      # repro-lint: disable-file=RL001 (guest stack is linear-space)

Multiple codes may be given comma-separated: ``disable=RL001,RL003 (...)``.

The parsed table is a plain-JSON value (:meth:`Suppressions.to_json` /
:meth:`Suppressions.from_json`) so the analyzer's incremental cache can
re-apply suppressions to cached findings without re-reading the file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set

from .rules import Violation

SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>RL\d{3}(?:\s*,\s*RL\d{3})*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)


@dataclass
class Suppressions:
    file_level: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: Lines holding *only* a suppression comment: a disable there also
    #: covers the following line (for statements too long to annotate).
    standalone: Set[int] = field(default_factory=set)
    malformed: List[Violation] = field(default_factory=list)

    # ------------------------------------------------------------------
    def covers(self, v: Violation) -> bool:
        """True if finding ``v`` is suppressed by this table."""
        if v.code in self.file_level:
            return True
        if v.code in self.by_line.get(v.line, ()):
            return True
        prev = v.line - 1
        return prev in self.standalone and v.code in self.by_line.get(prev, ())

    def apply(self, violations: List[Violation]) -> List[Violation]:
        """Findings surviving suppression, in input order."""
        return [v for v in violations if not self.covers(v)]

    # ------------------------------------------------------------------
    # JSON round-trip (for the analyzer's module-summary cache)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "file_level": sorted(self.file_level),
            "by_line": {str(line): sorted(codes)
                        for line, codes in sorted(self.by_line.items())},
            "standalone": sorted(self.standalone),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Suppressions":
        return cls(
            file_level=set(data.get("file_level", ())),
            by_line={int(line): set(codes)
                     for line, codes in data.get("by_line", {}).items()},
            standalone=set(data.get("standalone", ())),
        )


def parse_suppressions(source: str, path: str) -> Suppressions:
    """Scan ``source`` for suppression comments.

    Reason-less disables are collected as RL000 violations in
    ``.malformed`` (the disable itself is ignored); the per-file lint
    pass reports them, the analyzer leaves that to lint so the two tools
    never double-report the same comment.
    """
    sup = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = SUPPRESS_RE.search(text)
        if m is None:
            continue
        codes = {c.strip() for c in m.group("codes").split(",")}
        reason = (m.group("reason") or "").strip()
        if not reason:
            sup.malformed.append(Violation(
                path=path, line=lineno, col=max(text.find("#"), 0),
                code="RL000",
                message="suppression is missing its (reason); the disable "
                        "is ignored"))
            continue
        if m.group("scope"):
            sup.file_level |= codes
        else:
            sup.by_line.setdefault(lineno, set()).update(codes)
            if text.lstrip().startswith("#"):
                sup.standalone.add(lineno)
    return sup
