"""Opt-in runtime invariant sanitizer for the AC/DC datapath.

The probes assert, on every packet the vSwitch touches, the window-state
invariants the paper's argument rests on (§3.1–3.3) plus the simulation
substrate's own conservation laws:

* **serial monotonicity** — conntrack's ``snd_una``/``snd_nxt`` never
  retreat in RFC 1982 serial order, and the advertised window edge the
  VM is shown advances as a *serial* maximum (a raw ``max()`` breaks at
  the 2^32 wrap — the exact bug class PR 1 retrofitted away);
* **RWND encode→decode fidelity** — every window rewrite, re-decoded
  under the negotiated wscale, round-trips through an independent
  re-implementation of the 16-bit/wscale encoding (§3.3);
* **feedback consistency** — PACK/FACK counters satisfy
  ``marked ≤ total``, deltas are non-negative, and no consumed report
  exceeds the receiver-module high-water mark registered for the flow
  (§3.2, cross-vSwitch);
* **switch byte conservation** — per port: offered − dropped − released
  bytes equals the shared-buffer occupancy; pool-wide: the pool's
  ``used`` equals the sum of its queues and stays within capacity;
* **no event behind the clock** — the engine refuses to schedule in the
  past (always-on) and, under the sanitizer, trips on any popped event
  whose deadline is behind the clock (a mutated-Event tripwire).

Enablement: ``REPRO_SANITIZE=1`` in the environment, or explicitly per
datapath via ``AcdcConfig(sanitize=True)``; :func:`enable` forces it
process-wide for tests.  When off, the datapath holds no sanitizer
object and pays a single ``is None`` check per hook.

Every violation raises :class:`InvariantViolation` carrying the flow
key, the virtual time and the run seed (:func:`set_run_seed`), so a
failure in CI is replayable locally from the message alone.

This module deliberately re-implements the serial arithmetic and window
encoding with local modular expressions instead of importing the
production helpers — a probe that validates code against itself detects
nothing.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

_SEQ_SPACE = 1 << 32
_SEQ_HALF = 1 << 31

# ---------------------------------------------------------------------------
# Enablement and run context
# ---------------------------------------------------------------------------
_forced: Optional[bool] = None
_run_seed: Optional[int] = None


def is_enabled() -> bool:
    """True if sanitizing is on: :func:`enable` override, else the env."""
    if _forced is not None:
        return _forced
    value = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def enable(on: Optional[bool] = True) -> None:
    """Force sanitizing on/off process-wide; ``None`` restores the env."""
    global _forced  # repro-lint: disable=RL006 (process-wide toggle, configuration not run state)
    _forced = on


def set_run_seed(seed: Optional[int]) -> None:
    """Record the run's master seed for violation diagnostics."""
    global _run_seed  # repro-lint: disable=RL006 (diagnostic label, re-set by every run entry point)
    _run_seed = seed


def run_seed() -> Optional[int]:
    return _run_seed


class InvariantViolation(AssertionError):
    """A runtime invariant probe fired.

    Carries everything needed to replay the failure: which invariant,
    the flow key, the virtual time, and the run seed.
    """

    def __init__(self, invariant: str, detail: str, *,
                 flow=None, sim_time: Optional[float] = None,
                 host: Optional[str] = None,
                 seed: Optional[int] = None,
                 flight_dump: Optional[str] = None):
        self.invariant = invariant
        self.detail = detail
        self.flow = flow
        self.sim_time = sim_time
        self.host = host
        self.seed = seed if seed is not None else run_seed()
        #: Path to the vSwitch's flight-recorder dump (the last N datapath
        #: decisions before the violation), when one was armed — inspect
        #: with ``python -m repro.obs timeline <path>``.
        self.flight_dump = flight_dump
        message = (f"[sanitize:{invariant}] {detail} "
                   f"(flow={flow}, t={sim_time}, host={host}, seed={self.seed})")
        if flight_dump is not None:
            message += f" [flight recorder dump: {flight_dump}]"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Independent arithmetic (NOT imported from repro.net.packet, on purpose)
# ---------------------------------------------------------------------------
def _sdelta(a: int, b: int) -> int:
    """Signed circular distance a − b in [−2^31, 2^31)."""
    return ((a - b + _SEQ_HALF) % _SEQ_SPACE) - _SEQ_HALF


def _encoded_window(window_bytes: int, wscale: int) -> int:
    """Reference 16-bit/wscale encoding: round *up* to the next scale
    unit, clamp to the 16-bit ceiling, decode back to bytes."""
    unit = 1 << wscale
    field = min(0xFFFF, -(-window_bytes // unit))  # ceil division
    return field << wscale


# ---------------------------------------------------------------------------
# Datapath probes (one instance per AcdcVswitch)
# ---------------------------------------------------------------------------
class DatapathSanitizer:
    """Invariant probes for one vSwitch's datapath.

    Cross-vSwitch state (the receiver-module feedback high-water marks)
    lives on the shared :class:`~repro.sim.engine.Simulator` instance,
    so the sender-side and receiver-side probes of one run see each
    other while concurrent runs in one process stay isolated.
    """

    def __init__(self, vswitch) -> None:
        self.sim = vswitch.sim
        self.host = getattr(vswitch.host, "addr", "?")
        self._vswitch = vswitch
        #: flow key -> serial high-water of the advertised window edge.
        self._edges: Dict[Tuple, int] = {}

    # -- plumbing ----------------------------------------------------------
    def _fail(self, invariant: str, detail: str, flow=None) -> None:
        # A violation is terminal for the run, so dump the vSwitch's
        # flight-recorder ring (the last N datapath decisions, including
        # the offending one) and attach the path to the exception.
        dump_path = None
        flight = getattr(self._vswitch, "flight", None)
        if flight is not None and len(flight):
            try:
                dump_path = flight.dump(tag=invariant)
            except OSError:
                dump_path = None  # diagnostics must never mask the failure
        # When tracing is on, the violation (and any flight dump) also
        # lands on the bus, so a traced run's export shows *why* it died
        # next to the datapath events that led up to it.
        trace = getattr(self._vswitch, "trace", None)
        if trace is not None:
            from ..obs.trace import ERROR
            trace.emit("sanitizer.violation", flow=flow,
                       component="sanitize", severity=ERROR,
                       invariant=invariant, detail=detail)
            if dump_path is not None:
                trace.emit("flight.dump", flow=flow, component="sanitize",
                           severity=ERROR, path=str(dump_path),
                           invariant=invariant)
        raise InvariantViolation(invariant, detail, flow=flow,
                                 sim_time=self.sim.now, host=self.host,
                                 flight_dump=dump_path)

    def _feedback_registry(self) -> Dict[Tuple, Tuple[int, int]]:
        reg = getattr(self.sim, "_sanitize_feedback_highwater", None)
        if reg is None:
            reg = {}
            self.sim._sanitize_feedback_highwater = reg
        return reg

    # -- §3.1: conntrack serial monotonicity -------------------------------
    def check_serial_progress(self, key, prev_una: Optional[int],
                              new_una: Optional[int],
                              prev_nxt: Optional[int],
                              new_nxt: Optional[int]) -> None:
        """snd_una / snd_nxt must never retreat in serial order."""
        if prev_una is not None and new_una is not None \
                and _sdelta(new_una, prev_una) < 0:
            self._fail("snd-una-monotonic",
                       f"snd_una retreated {prev_una} -> {new_una} "
                       f"(serial delta {_sdelta(new_una, prev_una)})", key)
        if prev_nxt is not None and new_nxt is not None \
                and _sdelta(new_nxt, prev_nxt) < 0:
            self._fail("snd-nxt-monotonic",
                       f"snd_nxt retreated {prev_nxt} -> {new_nxt} "
                       f"(serial delta {_sdelta(new_nxt, prev_nxt)})", key)

    # -- §3.3: window encoding fidelity ------------------------------------
    def check_rewrite(self, key, pkt, window_bytes: int, wscale: int,
                      rewritten: bool) -> None:
        """The window the VM decodes must match the reference encoding."""
        decoded = pkt.rwnd_field << wscale
        if rewritten:
            want = _encoded_window(window_bytes, wscale)
            if decoded != want:
                self._fail(
                    "rwnd-roundtrip",
                    f"rewrite of {window_bytes}B under wscale {wscale} "
                    f"decodes to {decoded}B, reference encoding is {want}B",
                    key)
            if decoded < min(window_bytes, 0xFFFF << wscale):
                self._fail(
                    "rwnd-roundtrip",
                    f"encoded window {decoded}B lies below the requested "
                    f"{window_bytes}B (downward lie)", key)
        elif decoded > 0 and window_bytes < decoded \
                and _encoded_window(window_bytes, wscale) < decoded:
            # The enforcer left the ACK alone, which is only legitimate
            # when the original advertisement was already no looser than
            # the enforced window's encodable form.
            self._fail(
                "rwnd-enforce-skipped",
                f"ACK passed through advertising {decoded}B while the "
                f"enforced window is {window_bytes}B", key)

    def check_window_value(self, key, window_bytes: int, cc) -> None:
        """The vSwitch CC must emit a window within its configured band."""
        if window_bytes < 0:
            self._fail("cc-window-band",
                       f"negative enforced window {window_bytes}", key)
        max_wnd = getattr(cc, "max_wnd", None)
        if max_wnd is not None and window_bytes > max_wnd:
            self._fail("cc-window-band",
                       f"enforced window {window_bytes}B exceeds the "
                       f"configured ceiling {max_wnd}B", key)

    def note_advertised_edge(self, key, ack_seq: int, visible_window: int,
                             guard_edge: Optional[int] = None) -> None:
        """Track the window edge shown to the VM as a *serial* maximum.

        The high-water must advance serially; if a guard is attached, its
        independently tracked ``advertised_edge`` must agree — the two
        are computed from the same advertisements, so any divergence
        means one side's window arithmetic broke (e.g. a raw max across
        the 2^32 wrap).
        """
        if visible_window < 0:
            self._fail("advertised-edge",
                       f"negative visible window {visible_window}", key)
        candidate = (ack_seq + visible_window) % _SEQ_SPACE
        prev = self._edges.get(key)
        if prev is None or _sdelta(candidate, prev) > 0:
            new = candidate
        else:
            new = prev
        if prev is not None and _sdelta(new, prev) < 0:
            self._fail("advertised-edge",
                       f"edge high-water retreated {prev} -> {new}", key)
        self._edges[key] = new
        if guard_edge is not None and guard_edge != new:
            self._fail(
                "advertised-edge",
                f"guard tracks edge {guard_edge}, sanitizer tracks {new} "
                f"(serial-max divergence)", key)

    def forget_flow(self, key) -> None:
        """Drop per-flow edge state (entry resurrected from scratch)."""
        self._edges.pop(key, None)

    # -- §3.2: feedback-channel consistency --------------------------------
    def check_feedback_counters(self, key, total: int, marked: int,
                                where: str) -> None:
        if marked > total or total < 0 or marked < 0:
            self._fail("feedback-counters",
                       f"{where}: marked {marked}B / total {total}B "
                       "(marked must be within [0, total])", key)

    def register_feedback_report(self, key, total: int, marked: int) -> None:
        """Receiver module shipped a report: record the high-water."""
        self.check_feedback_counters(key, total, marked, "receiver report")
        reg = self._feedback_registry()
        prev_total, prev_marked = reg.get(key, (0, 0))
        reg[key] = (max(prev_total, total), max(prev_marked, marked))

    def check_feedback_consume(self, key, pack) -> None:
        """Sender module consumed a report: it cannot exceed anything the
        receiver module ever generated for this flow."""
        self.check_feedback_counters(key, pack.total_bytes,
                                     pack.marked_bytes, "consumed report")
        reg = self._feedback_registry()
        high = reg.get(key)
        if high is not None and pack.total_bytes > high[0]:
            self._fail(
                "feedback-conservation",
                f"consumed report claims {pack.total_bytes}B total but the "
                f"receiver module only ever counted {high[0]}B", key)

    def check_feedback_deltas(self, key, total_delta: int,
                              marked_delta: int) -> None:
        if total_delta < 0 or marked_delta < 0 or marked_delta > total_delta:
            self._fail("feedback-deltas",
                       f"reader produced deltas total={total_delta} "
                       f"marked={marked_delta}", key)


# ---------------------------------------------------------------------------
# Switch byte-accounting probes (one per SwitchTxPort when sanitizing)
# ---------------------------------------------------------------------------
class PortAccounting:
    """Conservation tripwire: offered − dropped − released == queued."""

    __slots__ = ("name", "queue_id", "offered", "dropped", "released")

    def __init__(self, name: str, queue_id: int):
        self.name = name
        self.queue_id = queue_id
        self.offered = 0
        self.dropped = 0
        self.released = 0

    def on_offer(self, nbytes: int) -> None:
        self.offered += nbytes

    def on_drop(self, nbytes: int) -> None:
        self.dropped += nbytes

    def on_release(self, nbytes: int) -> None:
        self.released += nbytes

    def check(self, shared, sim) -> None:
        """Audit this queue against the shared pool, and the pool itself."""
        queued = self.offered - self.dropped - self.released
        actual = shared.queue_bytes(self.queue_id)
        if queued != actual:
            raise InvariantViolation(
                "switch-byte-conservation",
                f"port {self.name}: offered {self.offered} - dropped "
                f"{self.dropped} - released {self.released} = {queued}B "
                f"but the shared pool holds {actual}B for this queue",
                sim_time=getattr(sim, "now", None), host=self.name)
        total = shared.queued_total()
        if shared.used != total or not 0 <= shared.used <= shared.capacity:
            raise InvariantViolation(
                "switch-byte-conservation",
                f"shared pool used={shared.used}B but queues sum to "
                f"{total}B (capacity {shared.capacity}B)",
                sim_time=getattr(sim, "now", None), host=self.name)
