"""Committed-baseline mechanism for the whole-program analyzer.

A baseline is a committed JSON file mapping finding *fingerprints* to
counts.  ``analyze --baseline FILE`` subtracts baselined findings from
the report, so legacy findings are tracked without failing CI while any
**new** finding still does.  The fingerprint deliberately omits line and
column — ``path:code:message`` — so unrelated edits that shift a
grandfathered finding a few lines do not resurrect it; counts bound how
many identical findings a file may carry.

The repo's own baseline (``.repro-analysis-baseline.json``) is committed
**empty**: every real finding the checkers surfaced was fixed in-tree,
and the empty file is the standing assertion that it stays that way.

``python -m repro.analysis baseline --write`` regenerates the file from
the current findings (for consumers adopting the analyzer on a tree
with pre-existing findings).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from .report import _display_path
from .rules import Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = ".repro-analysis-baseline.json"


def fingerprint(v: Violation, base: str = ".") -> str:
    return f"{_display_path(v.path, base)}:{v.code}:{v.message}"


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint -> allowed count.  Missing file = empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {}
    if not isinstance(data, dict) \
            or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a repro-analysis baseline "
                         f"(expected version {BASELINE_VERSION})")
    findings = data.get("findings", {})
    return {fp: int(count) for fp, count in findings.items()}


def apply_baseline(violations: Sequence[Violation],
                   baseline: Dict[str, int],
                   base: str = ".") -> Tuple[List[Violation], int]:
    """(non-baselined findings, how many the baseline absorbed).

    Each fingerprint absorbs at most its recorded count, in report
    order, so a file growing an *additional* identical finding still
    fails.
    """
    budget = dict(baseline)
    kept: List[Violation] = []
    absorbed = 0
    for v in sorted(violations):
        fp = fingerprint(v, base)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            absorbed += 1
        else:
            kept.append(v)
    return kept, absorbed


def write_baseline(violations: Sequence[Violation], path: str,
                   base: str = ".") -> int:
    """Write a baseline covering ``violations``; returns the count."""
    counts: Dict[str, int] = {}
    for v in sorted(violations):
        fp = fingerprint(v, base)
        counts[fp] = counts.get(fp, 0) + 1
    payload = {"version": BASELINE_VERSION, "findings": counts}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(violations)
