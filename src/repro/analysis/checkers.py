"""Cross-file checkers RL101–RL104 over the project model.

These are the whole-program counterparts of the per-file ``repro-lint``
rules: each one enforces a platform contract that only holds (or breaks)
across module boundaries.

RL101 **determinism-taint** — wall-clock reads and unseeded RNG draws
    are *sources*; the checker propagates their taint through local
    assignments, function returns, and the conservative call graph, and
    flags any store of a tainted value into long-lived state
    (``self.x = ...``, ``obj.attr = ...``, ``d[k] = ...``).  This
    catches the helper-function laundering RL002/RL003 cannot see:
    ``def now_s(): return time.time()`` in one module, ``self.t0 =
    now_s()`` in another.

RL102 **trace-contract** — every ``emit("type", ...)`` with a literal
    event type is validated against the merged ``EVENT_SCHEMAS``:
    the type must be registered, every required field present as a
    keyword (unless a ``**splat`` makes the site dynamic), and no
    keyword may collide with the envelope's reserved fields.  The
    global pass then reports *dead schemas*: registered types that no
    emit site (and no other module's string literal — dispatch tables
    count as liveness) ever references.

RL103 **unguarded-hook** — a zero-cost-off hook attribute the class can
    leave as ``None`` must only ever be dereferenced behind the
    ``is None`` guard idiom (directly, via a local alias, a BoolOp
    short-circuit, or an early return).  The ≤2 % tracing-off overhead
    bound in CI depends on this shape.

RL104 **snapshot-reachability** — modules import-reachable from the
    pickle roots (``repro.control.service`` by default) form the
    *picklable set*; inside it, lambdas / local functions / generator
    objects stored on instances, callables handed to scheduler calls,
    and aliases of module-global mutable registries are all things
    ``pickle`` either rejects outright or silently shares across runs.

Per-module findings are pure functions of (module summary, epoch
context), which is what makes the incremental cache in
:mod:`repro.analysis.cache` sound: call edges only exist along import
edges, so the reverse-import closure of a change covers every module
whose findings could move, and everything epoch-global (schemas, the
picklable set, checker config) is hashed into the cache epoch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .project import (BuildStats, ModuleSummary, Project, ProjectConfig,
                      build_project)
from .rules import Violation

#: Bump when checker semantics change: invalidates cached findings.
ANALYSIS_VERSION = 1

CHECKER_CATALOG = {
    "RL101": "determinism-taint: wall-clock/unseeded-RNG value reaches "
             "long-lived state through assignments, returns, or calls",
    "RL102": "trace-contract: emit() site or EVENT_SCHEMAS entry breaks "
             "the registered event schema (or the schema is dead)",
    "RL103": "unguarded-hook: optional zero-cost-off hook dereferenced "
             "without an `is None` guard",
    "RL104": "snapshot-reachability: unpicklable callable or shared "
             "module state stored on objects reached by checkpoints",
}

#: Keywords that collide with the trace envelope `emit` writes itself.
_RESERVED_EMIT_KWARGS = ("t", "type", "sev")
#: `emit` signature parameters, not payload fields.
_EMIT_SIGNATURE_KWARGS = ("flow", "component", "severity")


@dataclass(frozen=True)
class AnalyzeConfig:
    """Configuration for one whole-program analysis run."""

    #: Restrict to these checkers (empty = all of RL101–RL104).
    select: Tuple[str, ...] = ()
    #: Modules whose import closure forms the picklable set (RL104).
    pickle_roots: Tuple[str, ...] = ("repro.control.service",)
    project: ProjectConfig = field(default_factory=ProjectConfig)

    def enabled(self, code: str) -> bool:
        return not self.select or code in self.select

    def epoch(self, project: Project) -> str:
        """Cache epoch: hash of everything global a module's findings
        can depend on besides its own content."""
        schemas, owner = project.event_schemas()
        payload = repr((
            ANALYSIS_VERSION, self.select, self.pickle_roots,
            self.project.digest(), sorted(schemas.items()), owner,
            sorted(project.reachable_from(self.pickle_roots)),
        ))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class _Context:
    """Global facts shared by every per-module check."""

    project: Project
    config: AnalyzeConfig
    schemas: Dict[str, List[str]]
    schema_owner: Optional[str]
    returns_taint: Dict[str, Set[str]]
    picklable: Set[str]


# ---------------------------------------------------------------------------
# RL101: interprocedural taint fixpoint
# ---------------------------------------------------------------------------
def _local_taint(facts: dict,
                 returns_taint: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
    """Fixpoint over one function's assignments: local name -> kinds."""
    tainted: Dict[str, Set[str]] = {}
    changed = True
    while changed:
        changed = False
        for entry in facts.get("assigns", ()):
            kinds = _entry_taint(entry, tainted, returns_taint)
            current = tainted.get(entry["target"], set())
            if not kinds <= current:
                tainted[entry["target"]] = current | kinds
                changed = True
    return tainted


def _entry_taint(entry: dict, tainted: Dict[str, Set[str]],
                 returns_taint: Dict[str, Set[str]]) -> Set[str]:
    kinds = set(entry.get("kinds", ()))
    for dep in entry.get("deps", ()):
        kinds |= tainted.get(dep, set())
    for callee in entry.get("calls", ()):
        kinds |= returns_taint.get(callee, set())
    return kinds


def _taint_fixpoint(project: Project) -> Dict[str, Set[str]]:
    """Which functions return tainted values, and of which kinds."""
    table = project.functions()
    returns_taint: Dict[str, Set[str]] = {fq: set() for fq in table}
    changed = True
    while changed:
        changed = False
        for fq, facts in table.items():
            tainted = _local_taint(facts, returns_taint)
            kinds: Set[str] = set()
            for entry in facts.get("returns", ()):
                kinds |= _entry_taint(entry, tainted, returns_taint)
            if not kinds <= returns_taint[fq]:
                returns_taint[fq] |= kinds
                changed = True
    return returns_taint


def _taint_provenance(entry: dict, tainted: Dict[str, Set[str]],
                      returns_taint: Dict[str, Set[str]]) -> str:
    if entry.get("kinds"):
        return "direct source call"
    for callee in entry.get("calls", ()):
        if returns_taint.get(callee):
            return f"via {callee.split(':', 1)[1]}()"
    for dep in entry.get("deps", ()):
        if tainted.get(dep):
            return f"via local '{dep}'"
    return "via dataflow"


def _check_rl101(summary: ModuleSummary, ctx: _Context) -> List[Violation]:
    out: List[Violation] = []
    for qual, facts in summary.facts.get("functions", {}).items():
        tainted = _local_taint(facts, ctx.returns_taint)
        for store in facts.get("attr_stores", ()):
            kinds = _entry_taint(store, tainted, ctx.returns_taint)
            if not kinds:
                continue
            src = _taint_provenance(store, tainted, ctx.returns_taint)
            out.append(Violation(
                path=summary.path, line=store["line"], col=store["col"],
                code="RL101",
                message=f"'{store['attr']}' is assigned a "
                        f"{'/'.join(sorted(kinds))}-tainted value ({src}); "
                        "sim-visible state must come from sim.now() or "
                        "seeded streams"))
    return out


# ---------------------------------------------------------------------------
# RL102: emit sites vs EVENT_SCHEMAS
# ---------------------------------------------------------------------------
def _check_rl102(summary: ModuleSummary, ctx: _Context) -> List[Violation]:
    if not ctx.schemas:
        return []
    out: List[Violation] = []
    for emit in summary.facts.get("emits", ()):
        type_ = emit.get("type")
        if type_ is None:
            continue  # dynamic event type; runtime validation covers it
        reserved = sorted(set(emit.get("fields", ()))
                          & set(_RESERVED_EMIT_KWARGS))
        if reserved:
            out.append(Violation(
                path=summary.path, line=emit["line"], col=emit["col"],
                code="RL102",
                message=f"emit('{type_}') passes reserved envelope "
                        f"field(s) {', '.join(reserved)}; the bus writes "
                        "those itself"))
        if type_ not in ctx.schemas:
            out.append(Violation(
                path=summary.path, line=emit["line"], col=emit["col"],
                code="RL102",
                message=f"emit('{type_}') is not registered in "
                        "EVENT_SCHEMAS; register the event type or fix "
                        "the spelling"))
            continue
        if emit.get("has_star"):
            continue  # **splat: field set is dynamic at this site
        provided = set(emit.get("fields", ())) - set(_EMIT_SIGNATURE_KWARGS)
        missing = sorted(set(ctx.schemas[type_]) - provided)
        if missing:
            out.append(Violation(
                path=summary.path, line=emit["line"], col=emit["col"],
                code="RL102",
                message=f"emit('{type_}') is missing required "
                        f"field(s): {', '.join(missing)}"))
    return out


def _check_dead_schemas(ctx: _Context) -> List[Violation]:
    """Global pass: registered event types nothing ever emits."""
    if ctx.schema_owner is None or not ctx.config.enabled("RL102"):
        return []
    owner = ctx.project.modules[ctx.schema_owner]
    live: Set[str] = set()
    for name, summary in ctx.project.modules.items():
        for emit in summary.facts.get("emits", ()):
            if emit.get("type") is not None:
                live.add(emit["type"])
        if name != ctx.schema_owner:
            # A literal anywhere else (dispatch tables, adapters mapping
            # kinds to types) counts as liveness for that type.
            live |= set(summary.facts.get("string_literals", ())) \
                & set(ctx.schemas)
    out: List[Violation] = []
    lines = owner.facts.get("event_schema_lines", {})
    for type_ in sorted(set(ctx.schemas) - live):
        out.append(Violation(
            path=owner.path, line=lines.get(type_, 1), col=0,
            code="RL102",
            message=f"event type '{type_}' is registered in EVENT_SCHEMAS "
                    "but never emitted (dead schema); emit it or retire "
                    "the registration"))
    return owner.suppressions.apply(out)


# ---------------------------------------------------------------------------
# RL103: optional hooks must be dereferenced behind `is None` guards
# ---------------------------------------------------------------------------
def _check_rl103(summary: ModuleSummary, ctx: _Context) -> List[Violation]:
    out: List[Violation] = []
    for cls_name, cls in summary.facts.get("classes", {}).items():
        optional = cls.get("optional_hooks", {})
        if not optional:
            continue
        for use in cls.get("hook_uses", ()):
            attr = use["attr"]
            if attr not in optional or use["guarded"]:
                continue
            out.append(Violation(
                path=summary.path, line=use["line"], col=use["col"],
                code="RL103",
                message=f"'{cls_name}.{attr}' may be None (assigned at "
                        f"line {optional[attr]}) but is dereferenced "
                        "without an 'is None' guard; zero-cost-off hooks "
                        "must stay behind the guard idiom"))
    return out


# ---------------------------------------------------------------------------
# RL104: picklable-set snapshot safety
# ---------------------------------------------------------------------------
def _check_rl104(summary: ModuleSummary, ctx: _Context) -> List[Violation]:
    if summary.module not in ctx.picklable:
        return []
    out: List[Violation] = []
    for store in summary.facts.get("picklable_stores", ()):
        kind = store["kind"]
        attr = store["attr"]
        if kind == "lambda":
            msg = (f"lambda stored on 'self.{attr}' reaches pickled "
                   "checkpoint state; use functools.partial or a bound "
                   "method")
        elif kind == "local-function":
            msg = (f"locally-defined function '{store['name']}' stored on "
                   f"'self.{attr}' cannot be pickled; hoist it to module "
                   "level")
        elif kind == "generator-expression":
            msg = (f"generator object stored on 'self.{attr}' cannot be "
                   "pickled; materialise it or rebuild it on restore")
        elif kind == "scheduled-callable":
            msg = (f"lambda/local function passed to {attr}() lands in "
                   "the engine heap, which is pickled at checkpoints; "
                   "use functools.partial or a bound method")
        elif kind == "registry-ref":
            ref_mod, _, ref_name = store.get("ref", "::").partition(":")
            target = ctx.project.modules.get(ref_mod)
            if target is None or \
                    ref_name not in target.facts.get("registries", ()):
                continue
            msg = (f"'self.{attr}' aliases module-global mutable state "
                   f"'{ref_name}' ({ref_mod}); pickling would capture "
                   "shared run state in the snapshot")
        else:  # pragma: no cover - future kinds
            continue
        out.append(Violation(path=summary.path, line=store["line"],
                             col=store["col"], code="RL104", message=msg))
    return out


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------
_PER_MODULE_CHECKS = (
    ("RL101", _check_rl101),
    ("RL102", _check_rl102),
    ("RL103", _check_rl103),
    ("RL104", _check_rl104),
)


def build_context(project: Project, config: AnalyzeConfig) -> _Context:
    schemas, owner = project.event_schemas()
    return _Context(
        project=project, config=config, schemas=schemas, schema_owner=owner,
        returns_taint=(_taint_fixpoint(project)
                       if config.enabled("RL101") else {}),
        picklable=(project.reachable_from(config.pickle_roots)
                   if config.enabled("RL104") else set()),
    )


def check_module(ctx: _Context, module: str) -> List[Violation]:
    """All per-module findings for ``module``, suppressions applied."""
    summary = ctx.project.modules[module]
    found: List[Violation] = []
    for code, check in _PER_MODULE_CHECKS:
        if ctx.config.enabled(code):
            found.extend(check(summary, ctx))
    return sorted(summary.suppressions.apply(found))


@dataclass
class AnalyzeStats:
    """What one analyze run actually did (drives the CI cache assert)."""

    modules: int = 0
    parsed: int = 0
    reused: int = 0
    checked: int = 0
    from_cache: int = 0

    def to_json(self) -> dict:
        return {"modules": self.modules, "parsed": self.parsed,
                "reused": self.reused, "checked": self.checked,
                "from_cache": self.from_cache}


def analyze_project(project: Project, config: Optional[AnalyzeConfig] = None,
                    ) -> List[Violation]:
    """Run every enabled checker over an assembled project (no cache)."""
    config = config if config is not None else AnalyzeConfig()
    ctx = build_context(project, config)
    findings: List[Violation] = []
    for module in sorted(project.modules):
        findings.extend(check_module(ctx, module))
    findings.extend(_check_dead_schemas(ctx))
    return sorted(findings)


def analyze_paths(paths: Sequence[str],
                  config: Optional[AnalyzeConfig] = None,
                  cache=None) -> Tuple[List[Violation], AnalyzeStats]:
    """Analyze ``paths`` with optional incremental caching.

    ``cache`` is an :class:`repro.analysis.cache.AnalysisCache` (or
    None).  Only modules whose content changed — plus their
    reverse-import closure — are re-checked; everything else reuses the
    cached summaries and findings.  Parse failures surface as RL999.
    """
    config = config if config is not None else AnalyzeConfig()
    cached_summaries = cache.summaries() if cache is not None else None
    project, build_stats = build_project(paths, config.project,
                                         cached_summaries)
    ctx = build_context(project, config)
    epoch = config.epoch(project)
    prior = cache.findings(epoch) if cache is not None else {}

    dirty = project.reverse_closure(build_stats.parsed)
    dirty |= {m for m in project.modules if m not in prior}
    stats = AnalyzeStats(modules=len(project.modules),
                         parsed=len(build_stats.parsed),
                         reused=len(build_stats.reused))
    findings: List[Violation] = []
    by_module: Dict[str, List[Violation]] = {}
    for module in sorted(project.modules):
        if module in dirty:
            by_module[module] = check_module(ctx, module)
            stats.checked += 1
        else:
            by_module[module] = prior[module]
            stats.from_cache += 1
        findings.extend(by_module[module])
    findings.extend(_check_dead_schemas(ctx))  # global: recomputed always
    for path, msg in build_stats.errors:
        findings.append(Violation(path=path, line=1, col=0, code="RL999",
                                  message=msg))
    if cache is not None:
        cache.store(project, epoch, by_module)
    return sorted(findings), stats
