"""The `repro-lint` rule catalog: one AST pass, five repro-specific rules.

Each rule targets a bug class that has already cost a PR to fix by hand
(see DESIGN.md §9):

* **RL001 raw-seq-compare** — ordered comparison (``<``/``<=``/``>``/
  ``>=``) or bare subtraction on identifiers that name TCP sequence
  state (``seq``/``ack_seq``/``snd_una``/``snd_nxt``/``edge``...).
  Sequence numbers live in a 32-bit circular space; ordered comparisons
  must go through the RFC 1982 serial helpers (``seq_lt`` & friends in
  ``repro.net.packet``) and distances through ``seq_delta`` or the
  ``(a - b) & SEQ_MASK`` idiom, which the rule recognises as safe.
* **RL002 unseeded-rng** — ``random.Random()`` with no seed, module-level
  ``random.*`` calls (the process-global RNG), or ``random.SystemRandom``:
  all nondeterministic across runs.  Sanctioned path:
  :class:`repro.sim.rng.RngFactory` named streams.
* **RL003 wall-clock** — ``time.time()``/``monotonic()``/``perf_counter``/
  ``datetime.now()`` and friends: simulation code must use the engine
  clock (``sim.now``), never the host's.
* **RL004 float-time-equality** — ``==``/``!=`` between two simulation
  timestamps.  Virtual time is a float; exact equality between computed
  timestamps is a rounding bug waiting to happen (compare with ordering
  or an epsilon).
* **RL005 mutable-default-arg** — a list/dict/set (literal, comprehension
  or constructor) as a parameter default: shared across calls, a classic
  source of cross-flow state bleed.
* **RL006 non-snapshot-safe-state** — state that checkpoint/restore
  (DESIGN.md §13) cannot capture: a module-level mutable registry
  (lowercase module-level name bound to a dict/list/set/deque/
  ``itertools.count``...), a ``global`` statement (the tell-tale of a
  module-level counter being mutated), or a ``random.Random(...)``
  constructed directly instead of drawn from the
  :class:`repro.sim.rng.RngFactory` registry.  A snapshot pickles the
  *object graph reachable from the service*; module globals and private
  RNGs are invisible to it and silently reset on restore.  ALL_CAPS
  module constants are exempt by convention (they are configuration,
  not run state).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

RULE_CATALOG: Dict[str, str] = {
    "RL000": "suppression-missing-reason: a `# repro-lint: disable=` "
             "comment must carry a (reason)",
    "RL001": "raw-seq-compare: ordered comparison or bare subtraction on "
             "sequence-space identifiers; use the serial helpers "
             "(seq_lt/seq_delta) or the `(a - b) & SEQ_MASK` idiom",
    "RL002": "unseeded-rng: module-level random.* call, unseeded "
             "random.Random(), or SystemRandom; draw from a named "
             "RngFactory stream instead",
    "RL003": "wall-clock: host clock call (time.time/monotonic/"
             "perf_counter, datetime.now/utcnow/today); simulation code "
             "must use the engine clock",
    "RL004": "float-time-equality: ==/!= between two simulation "
             "timestamps; compare with ordering or an epsilon",
    "RL005": "mutable-default-arg: mutable default parameter value is "
             "shared across calls",
    "RL006": "non-snapshot-safe-state: module-level mutable registry, "
             "global-statement counter, or direct random.Random "
             "construction outside sim.rng; invisible to "
             "checkpoint/restore",
    "RL999": "parse-error: file could not be parsed",
}


@dataclass(frozen=True, order=True)
class Violation:
    """One lint finding, ordered for the stable report format."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# --- RL001: identifiers that name 32-bit sequence-space values ----------
#: An identifier is "sequence-like" when one of its snake_case tokens is a
#: sequence-space word.  `newly_acked`, `dupacks`, `ack_count` (byte/event
#: counts) deliberately do not match; `ack_seq`, `snd_una`, `cut_seq`,
#: `advertised_edge`, `window_end`'s partner `snd_una` do.
_SEQ_TOKENS = {"seq", "una", "nxt", "edge", "iss", "irs"}

#: Time-like identifiers for RL004: the engine clock and derived stamps.
_TIME_EXACT = {"now", "deadline"}
_TIME_SUFFIXES = ("_at", "_time", "_deadline", "_timestamp")

_WALL_CLOCK_TIME_ATTRS = {
    "time", "monotonic", "perf_counter", "process_time",
    "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

_SNAKE_SPLIT = re.compile(r"[^a-zA-Z0-9]+")


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_seq_name(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    if name.isupper():
        # ALL_CAPS names are the sequence-space *constants* (SEQ_MASK,
        # SEQ_HALF...) that the sanctioned wrap-safe idioms are built
        # from, not sequence-number variables.
        return False
    tokens = [t for t in _SNAKE_SPLIT.split(name.lower()) if t]
    return any(tok in _SEQ_TOKENS for tok in tokens)


def _is_time_name(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return lowered in _TIME_EXACT or lowered.endswith(_TIME_SUFFIXES)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = _terminal_name(node.func)
        return callee in {"list", "dict", "set", "bytearray",
                          "deque", "defaultdict", "OrderedDict", "Counter"}
    return False


#: RL006: stateful-iterator constructors — a module-level
#: ``itertools.count()`` is a registry of one mutable cursor.
_STATEFUL_ITER_CALLEES = {"count", "cycle", "chain", "repeat"}


def _is_registry_value(node: ast.AST) -> bool:
    """Mutable containers *or* stateful iterators (RL006 scope)."""
    if _is_mutable_literal(node):
        return True
    if isinstance(node, ast.Call):
        return _terminal_name(node.func) in _STATEFUL_ITER_CALLEES
    return False


class RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor emitting raw (pre-suppression) violations."""

    def __init__(self, path: str,
                 enabled: Optional[Set[str]] = None) -> None:
        self.path = path
        self.enabled = enabled  # None = all rules
        self.violations: List[Violation] = []
        # Aliases under which the `random` / `time` / `datetime` modules
        # (or their nondeterministic members) are reachable in this file.
        self._random_aliases: Set[str] = set()
        self._random_func_names: Set[str] = set()
        self._random_class_names: Set[str] = set()  # `from random import Random`
        self._time_aliases: Set[str] = set()
        self._time_func_names: Set[str] = set()
        self._datetime_aliases: Set[str] = set()  # datetime module or class
        self._parents: Dict[int, ast.AST] = {}

    # ------------------------------------------------------------------
    def _emit(self, code: str, node: ast.AST, message: str) -> None:
        if self.enabled is not None and code not in self.enabled:
            return
        self.violations.append(Violation(
            path=self.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), code=code, message=message))

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._parents[id(child)] = node
        super().generic_visit(node)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    # ------------------------------------------------------------------
    # Import tracking (for RL002 / RL003)
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name == "Random":
                    # Construction is checked at call sites (RL002 when
                    # unseeded, RL006 when built outside the registry).
                    self._random_class_names.add(alias.asname or alias.name)
                    continue
                self._random_func_names.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME_ATTRS:
                    self._time_func_names.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self._datetime_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # RL001 + RL004: comparisons
    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                if _is_seq_name(left) or _is_seq_name(right):
                    self._emit(
                        "RL001", node,
                        "ordered comparison on sequence-space identifier "
                        f"'{_terminal_name(left) if _is_seq_name(left) else _terminal_name(right)}'"
                        " (use seq_lt/seq_leq/seq_gt/seq_geq)")
            elif isinstance(op, (ast.Eq, ast.NotEq)):
                if _is_time_name(left) and _is_time_name(right):
                    self._emit(
                        "RL004", node,
                        "exact float equality between sim timestamps "
                        f"'{_terminal_name(left)}' and '{_terminal_name(right)}'")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # RL001: bare subtraction on sequence identifiers
    # ------------------------------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (isinstance(node.op, ast.Sub)
                and (_is_seq_name(node.left) or _is_seq_name(node.right))
                and not self._is_masked(node)):
            name = (_terminal_name(node.left) if _is_seq_name(node.left)
                    else _terminal_name(node.right))
            self._emit(
                "RL001", node,
                f"bare subtraction on sequence-space identifier '{name}' "
                "(use seq_delta, or mask with `& SEQ_MASK`)")
        self.generic_visit(node)

    def _is_masked(self, node: ast.BinOp) -> bool:
        """True for the wrap-safe ``(a - b ...) & SEQ_MASK`` idiom: the
        subtraction sits (possibly under further +/- terms) below a
        bitwise-and whose other operand mentions SEQ_MASK."""
        child: ast.AST = node
        parent = self.parent(child)
        while isinstance(parent, ast.BinOp):
            if isinstance(parent.op, ast.BitAnd):
                other = parent.right if parent.left is child else parent.left
                if _terminal_name(other) == "SEQ_MASK":
                    return True
                return False
            if not isinstance(parent.op, (ast.Add, ast.Sub)):
                return False
            child = parent
            parent = self.parent(child)
        return False

    # ------------------------------------------------------------------
    # RL002 + RL003: calls
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in self._random_aliases:
                self._check_random_attr_call(node, attr)
            elif base in self._time_aliases and attr in _WALL_CLOCK_TIME_ATTRS:
                self._emit("RL003", node,
                           f"wall-clock call time.{attr}() "
                           "(use the engine clock, sim.now)")
            elif (base in self._datetime_aliases
                    and attr in _WALL_CLOCK_DATETIME_ATTRS):
                self._emit("RL003", node,
                           f"wall-clock call {base}.{attr}() "
                           "(use the engine clock, sim.now)")
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in self._datetime_aliases
                and func.value.attr == "datetime"
                and func.attr in _WALL_CLOCK_DATETIME_ATTRS):
            # datetime.datetime.now()
            self._emit("RL003", node,
                       f"wall-clock call datetime.datetime.{func.attr}() "
                       "(use the engine clock, sim.now)")
        elif isinstance(func, ast.Name):
            if func.id in self._random_func_names:
                self._emit("RL002", node,
                           f"module-level random function {func.id}() uses "
                           "the shared global RNG (use an RngFactory stream)")
            elif func.id in self._random_class_names:
                if not node.args and not node.keywords:
                    self._emit("RL002", node,
                               "unseeded Random() is nondeterministic "
                               "(seed it, or use an RngFactory stream)")
                else:
                    self._emit("RL006", node,
                               "direct Random(...) construction bypasses "
                               "the RngFactory stream registry; its "
                               "position is invisible to snapshots")
            elif func.id in self._time_func_names:
                self._emit("RL003", node,
                           f"wall-clock call {func.id}() "
                           "(use the engine clock, sim.now)")
        self.generic_visit(node)

    def _check_random_attr_call(self, node: ast.Call, attr: str) -> None:
        if attr == "Random":
            if not node.args and not node.keywords:
                self._emit("RL002", node,
                           "unseeded random.Random() is nondeterministic "
                           "(seed it, or use an RngFactory stream)")
            else:
                self._emit("RL006", node,
                           "direct random.Random(...) construction bypasses "
                           "the RngFactory stream registry; its position "
                           "is invisible to snapshots")
        elif attr == "SystemRandom":
            self._emit("RL002", node,
                       "random.SystemRandom is nondeterministic by design")
        else:
            self._emit("RL002", node,
                       f"module-level random.{attr}() uses the shared "
                       "global RNG (use an RngFactory stream)")

    # ------------------------------------------------------------------
    # RL006: module-level mutable registries and global counters
    # ------------------------------------------------------------------
    def _check_module_binding(self, node: ast.AST, target: ast.AST,
                              value: Optional[ast.AST]) -> None:
        """Flag ``name = <mutable>`` at module scope for non-constant
        names.  ALL_CAPS bindings are configuration-by-convention and
        dunders (``__all__``...) are interpreter protocol — both exempt."""
        if value is None or not isinstance(target, ast.Name):
            return
        name = target.id
        if name.isupper() or name.startswith("__"):
            return
        if not isinstance(self.parent(node), ast.Module):
            return
        if _is_registry_value(value):
            self._emit("RL006", node,
                       f"module-level mutable registry '{name}' lives "
                       "outside every snapshot (restored runs silently "
                       "reset it); hold it on an object the run owns")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_module_binding(node, target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_module_binding(node, node.target, node.value)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        # A `global` statement is the tell-tale of a module-level counter
        # being written from inside a function — process-local state that
        # no checkpoint captures (and immutable values like ints dodge
        # the registry check above, so catch them at the mutation site).
        names = ", ".join(node.names)
        self._emit("RL006", node,
                   f"global statement mutates module-level state "
                   f"({names}); snapshots cannot capture it — hold it on "
                   "an object the run owns")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # RL005: mutable default arguments
    # ------------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            if _is_mutable_literal(default):
                self._emit("RL005", default,
                           "mutable default argument is shared across calls "
                           "(default to None and construct inside)")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)
