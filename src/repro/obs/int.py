"""In-band network telemetry (INT): per-hop metadata from switch to sender.

PowerTCP-class congestion control consumes *in-network* state — queue
depth, link utilization, hop latency — rather than end-to-end proxies
for it.  This module builds that signal path on the reproduction's
datapath (DESIGN.md §16):

* :class:`IntStamper` — per-``SwitchTxPort`` hook: each transiting
  packet that leaves the port gets one hop record appended to its
  (out-of-band) ``int_stack``: hop id, instantaneous + EWMA queue
  depth, cumulative port tx-bytes, EWMA utilization, hop residence
  time.  The stack is bounded (:data:`MAX_INT_HOPS`); overflow is
  counted, never an error.
* :class:`IntSink` — per-flow receiver-role state in the vSwitch: it
  absorbs and validates arriving stacks (a mangled stack degrades to a
  counted invalid, never an exception), aggregates them per hop, and
  folds the aggregate into a compact :class:`IntEcho` digest attached
  to the next egress ACK — the same piggyback direction as the PACK
  feedback option.
* :class:`TelemetryView` — per-flow sender-role state: consumes echoes,
  tracks the path signature, the bottleneck hop (argmax queue depth),
  the queue-depth series and the per-hop latency decomposition.  It is
  the read hook handed to ``vswitch_cc.on_int_report`` (consumer stub
  for now) and the per-hop queue-depth source the canary SLO engine
  grades (``repro.control.slo``).
* :class:`IntTelemetry` — the run-level context wiring all of the
  above, plus the monotonic run-global counters the metric registry
  snapshots (flow entries are garbage-collected; run totals must not
  shrink with them).

Everything is sim-clock-only and RNG-free, and every datapath touch
point follows the zero-cost-off hook contract: the hook attribute is
``None`` when INT is off and the datapath pays exactly one ``is None``
test (checked by repro-lint RL103).

The stack and echo ride the packet **out of band**: they do not count
into :attr:`Packet.size`, because a mid-queue size change would break
the shared buffer's admit/release byte conservation.  The real wire
overhead (≈12 B per hop, bounded by :data:`MAX_INT_HOPS`) is a
documented fidelity boundary, not a modelled one — see DESIGN.md §16.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .trace import INFO, WARNING

#: Hard bound on the per-packet hop stack.  Real INT deployments bound
#: the stack to fit header budgets; eight hops covers any datacenter
#: path this repo builds (the deepest stock topology is 4 hops).
MAX_INT_HOPS = 8

#: Fields of one hop record, in stack order:
#: ``(hop, q_bytes, q_ewma_bytes, tx_bytes, util, residence_s)``.
HOP_FIELDS = 6

#: EWMA smoothing for the stamper's queue-depth and utilization
#: estimates (per-event, like DCTCP's g — small enough to smooth,
#: large enough to track an incast onset within tens of packets).
DEFAULT_EWMA_ALPHA = 0.25


def valid_hop(record) -> bool:
    """Shape-check one hop record (fault injectors mangle these)."""
    if not isinstance(record, tuple) or len(record) != HOP_FIELDS:
        return False
    hop, q, q_ewma, tx, util, res = record
    if not isinstance(hop, str) or not hop:
        return False
    for value in (q, q_ewma, tx, util, res):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if value < 0:
            return False
    return True


def valid_stack(stack) -> bool:
    """Shape-check a whole hop stack; empty stacks are invalid too."""
    if not isinstance(stack, list) or not stack:
        return False
    if len(stack) > MAX_INT_HOPS:
        return False
    return all(valid_hop(rec) for rec in stack)


class IntStamper:
    """Per-port hop metadata source (held by ``SwitchTxPort._int``).

    ``on_enqueue`` fires on shared-buffer admission (the occupancy the
    packet actually joined behind); ``on_depart`` fires when the packet
    leaves the wire-side of the port and appends the hop record, so the
    residence time covers queueing *and* serialization.  ``tx_bytes``
    is read before the departing packet is counted (the port updates
    its counters after releasing buffer memory).
    """

    __slots__ = ("sim", "port", "hop_id", "max_hops", "ewma_alpha",
                 "q_ewma", "util_ewma", "stamped", "overflowed",
                 "_pending", "_last_depart")

    def __init__(self, sim, port, hop_id: str,
                 max_hops: int = MAX_INT_HOPS,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if max_hops < 1:
            raise ValueError("max_hops must be positive")
        self.sim = sim
        self.port = port
        self.hop_id = hop_id
        self.max_hops = max_hops
        self.ewma_alpha = ewma_alpha
        self.q_ewma = 0.0
        self.util_ewma = 0.0
        self.stamped = 0
        self.overflowed = 0
        # pid -> (admit time, occupancy at admission); admitted packets
        # always depart, so entries cannot leak.
        self._pending: Dict[int, Tuple[float, int]] = {}
        self._last_depart = 0.0

    def on_enqueue(self, packet, queue_bytes: int) -> None:
        alpha = self.ewma_alpha
        self.q_ewma += alpha * (queue_bytes - self.q_ewma)
        self._pending[packet.pid] = (self.sim.now, queue_bytes)

    def on_depart(self, packet) -> None:
        pending = self._pending.pop(packet.pid, None)
        if pending is None:
            return  # admitted before the stamper was attached
        now = self.sim.now
        admitted_at, q_inst = pending
        rate = self.port.rate_bps
        serialization = packet.size * 8.0 / rate if rate > 0 else 0.0
        gap = now - self._last_depart
        busy = 1.0 if gap <= 0.0 else min(1.0, serialization / gap)
        self._last_depart = now
        alpha = self.ewma_alpha
        self.util_ewma += alpha * (busy - self.util_ewma)
        stack = packet.int_stack
        if stack is None:
            stack = packet.int_stack = []
        if len(stack) >= self.max_hops:
            self.overflowed += 1
            return
        stack.append((self.hop_id, q_inst, self.q_ewma,
                      self.port.stats.tx_bytes, self.util_ewma,
                      now - admitted_at))
        self.stamped += 1

    def snapshot(self) -> dict:
        """Counters in metric-source shape (see repro.obs.context)."""
        return {
            "stamped": self.stamped,
            "overflowed": self.overflowed,
            "q_ewma_bytes": self.q_ewma,
            "util_ewma": self.util_ewma,
        }


class IntEcho:
    """Compact digest of absorbed hop stacks, echoed on an ACK.

    ``hops`` holds one aggregate tuple per hop in path order:
    ``(hop, q_last, q_max, q_ewma_last, util_last, residence_sum,
    residence_max)``.  The object is immutable by contract once
    attached to a packet — fault injectors *replace* it with garbage,
    they never mutate it in place — so :meth:`Packet.copy` may share
    the reference between duplicates.
    """

    __slots__ = ("serial", "path", "hops", "stacks")

    def __init__(self, serial: int, path: Tuple[str, ...],
                 hops: Tuple[tuple, ...], stacks: int):
        self.serial = serial
        self.path = path
        self.hops = hops
        self.stacks = stacks


def valid_echo(echo) -> bool:
    """Shape-check an echo digest at the sender (faults mangle these)."""
    if not isinstance(echo, IntEcho):
        return False
    if not isinstance(echo.serial, int) or echo.serial < 1:
        return False
    if not isinstance(echo.path, tuple) or not echo.path:
        return False
    if not isinstance(echo.hops, tuple) or len(echo.hops) != len(echo.path):
        return False
    if not isinstance(echo.stacks, int) or echo.stacks < 1:
        return False
    for hop_id, agg in zip(echo.path, echo.hops):
        if not isinstance(hop_id, str) or not hop_id:
            return False
        if not isinstance(agg, tuple) or len(agg) != 7 or agg[0] != hop_id:
            return False
        for value in agg[1:]:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
            if value < 0:
                return False
    return True


class IntSink:
    """Receiver-role INT state for one flow (``FlowEntry.int_sink``).

    Aggregates arriving stacks into the current echo window; a new path
    signature (reroute, or the first stack of a window) restarts the
    window on the new path.
    """

    __slots__ = ("absorbed", "invalid", "serial", "path", "hops", "stacks")

    def __init__(self) -> None:
        self.absorbed = 0
        self.invalid = 0
        self.serial = 0       # echoes generated so far
        self.path: Optional[Tuple[str, ...]] = None
        self.hops: Optional[List[list]] = None
        self.stacks = 0       # stacks folded into the current window

    def absorb(self, stack) -> bool:
        """Fold one hop stack in; False (counted) if it fails validation."""
        if not valid_stack(stack):
            self.invalid += 1
            return False
        path = tuple(rec[0] for rec in stack)
        if path != self.path:
            self.path = path
            self.hops = [[rec[0], rec[1], rec[1], rec[2], rec[4],
                          rec[5], rec[5]] for rec in stack]
            self.stacks = 1
        else:
            for agg, rec in zip(self.hops, stack):
                agg[1] = rec[1]
                if rec[1] > agg[2]:
                    agg[2] = rec[1]
                agg[3] = rec[2]
                agg[4] = rec[4]
                agg[5] += rec[5]
                if rec[5] > agg[6]:
                    agg[6] = rec[5]
            self.stacks += 1
        self.absorbed += 1
        return True

    def make_echo(self) -> Optional[IntEcho]:
        """Close the current window into a digest (None if it is empty)."""
        if self.stacks == 0:
            return None
        self.serial += 1
        echo = IntEcho(self.serial, self.path,
                       tuple(tuple(agg) for agg in self.hops), self.stacks)
        self.path = None
        self.hops = None
        self.stacks = 0
        return echo


class TelemetryView:
    """Sender-role per-flow telemetry (``FlowEntry.int_view``).

    The read surface for ``vswitch_cc.on_int_report`` and the SLO
    engine: latest path, bottleneck hop, queue-depth series, per-hop
    residence decomposition.  ``q_samples`` grows one entry per valid
    report (bounded by the run's report count, like an FCT series);
    epoch consumers read deltas by index.
    """

    __slots__ = ("reports", "invalid", "lost", "last_serial",
                 "path", "path_changes", "bottleneck", "q_max_bytes",
                 "q_last_bytes", "util", "residence_s", "hop_residence_s",
                 "q_samples", "updated_at")

    def __init__(self) -> None:
        self.reports = 0
        self.invalid = 0
        self.lost = 0           # serial gaps: echoes whose ACK never arrived
        self.last_serial = 0
        self.path: Optional[Tuple[str, ...]] = None
        self.path_changes = 0
        self.bottleneck: Optional[str] = None
        self.q_max_bytes = 0.0      # bottleneck queue max, latest window
        self.q_last_bytes = 0.0     # bottleneck queue last sample
        self.util = 0.0             # bottleneck utilization, latest window
        self.residence_s = 0.0      # whole-path residence, latest window
        self.hop_residence_s: Dict[str, float] = {}
        self.q_samples: List[float] = []
        self.updated_at = 0.0

    def on_echo(self, echo, now: float) -> Tuple[str, bool]:
        """Consume one echo; returns ``(status, path_changed)``."""
        if not valid_echo(echo):
            self.invalid += 1
            return "invalid", False
        if echo.serial > self.last_serial:
            self.lost += echo.serial - self.last_serial - 1
        # serial <= last: the receiver-side sink restarted (vSwitch
        # crash/resurrection); resync without counting losses.
        self.last_serial = echo.serial
        path_changed = self.path is not None and echo.path != self.path
        if path_changed:
            self.path_changes += 1
        self.path = echo.path
        # Bottleneck = argmax window queue max, first hop on ties (path
        # order, so the choice is deterministic).
        bottleneck = max(echo.hops, key=lambda agg: agg[2])
        self.bottleneck = bottleneck[0]
        self.q_last_bytes = bottleneck[1]
        self.q_max_bytes = bottleneck[2]
        self.util = bottleneck[4]
        # Latency decomposition: mean residence per hop over the window.
        self.hop_residence_s = {
            agg[0]: agg[5] / echo.stacks for agg in echo.hops}
        self.residence_s = sum(self.hop_residence_s.values())
        self.q_samples.append(float(bottleneck[2]))
        self.reports += 1
        self.updated_at = now
        return "ok", path_changed

    def summary(self) -> dict:
        """JSON-able per-flow view (CLI, experiments)."""
        return {
            "reports": self.reports,
            "invalid": self.invalid,
            "lost": self.lost,
            "path": list(self.path) if self.path is not None else None,
            "path_changes": self.path_changes,
            "bottleneck": self.bottleneck,
            "q_max_bytes": self.q_max_bytes,
            "residence_s": self.residence_s,
            "hop_residence_s": dict(sorted(self.hop_residence_s.items())),
        }


class IntTelemetry:
    """Run-level INT context: stampers on switches, sink/echo/view logic
    for the vSwitches, and run-global monotonic counters.

    Mirrors :class:`~repro.obs.context.ObsContext`'s lifecycle: may be
    created unbound, ``bind(sim)`` attaches the clock, ``attach_topology``
    instruments every switch, and AC/DC vSwitches get the context as
    their ``int_tel`` hook via :meth:`attach_vswitch`.
    """

    def __init__(self, sim=None, max_hops: int = MAX_INT_HOPS,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA):
        self.sim = sim
        self.max_hops = max_hops
        self.ewma_alpha = ewma_alpha
        self.stampers: List[IntStamper] = []
        self.vswitches: List[object] = []
        # Run-global counters (flow entries are GC'd; these are not).
        self.stacks_absorbed = 0
        self.stacks_invalid = 0
        self.echoes_attached = 0
        self.reports_ok = 0
        self.reports_invalid = 0
        self.path_changes = 0

    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Attach the run's simulator (idempotent for the same one)."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise RuntimeError("IntTelemetry is already bound to a simulator")
        self.sim = sim
        for stamper in self.stampers:
            stamper.sim = sim

    def instrument_switch(self, switch) -> None:
        """Attach one stamper per output port; hop id = the port name."""
        for port in switch.ports.values():
            stamper = IntStamper(self.sim, port, port.name,
                                 max_hops=self.max_hops,
                                 ewma_alpha=self.ewma_alpha)
            port.attach_int(stamper)
            self.stampers.append(stamper)

    def attach_topology(self, topology) -> None:
        """Instrument every switch of a built topology."""
        for switch in topology.switches.values():
            self.instrument_switch(switch)

    def attach_vswitch(self, vswitch) -> None:
        """Install this context as the vSwitch's ``int_tel`` hook."""
        attach = getattr(vswitch, "attach_int", None)
        if attach is None:
            return  # PlainOvs: no INT endpoint
        attach(self)
        self.vswitches.append(vswitch)

    # ------------------------------------------------------------------
    # Datapath hooks (called by AcdcVswitch behind its `is None` test)
    # ------------------------------------------------------------------
    def on_ingress_data(self, vswitch, entry, pkt) -> None:
        """INT sink: absorb and strip the hop stack of arriving data."""
        stack = pkt.int_stack
        if stack is None:
            return
        pkt.int_stack = None  # never reaches the VM
        sink = entry.int_sink
        if sink is None:
            sink = entry.int_sink = IntSink()
        if sink.absorb(stack):
            self.stacks_absorbed += 1
        else:
            self.stacks_invalid += 1
            if vswitch.trace is not None:
                vswitch.trace.emit("int.report", flow=entry.key,
                                   component="int.sink", severity=WARNING,
                                   status="invalid_stack")

    def on_egress_ack(self, entry, ack) -> None:
        """INT echo: piggyback the window digest on an egress ACK."""
        sink = entry.int_sink
        if sink is None:
            return
        echo = sink.make_echo()
        if echo is not None:
            ack.int_echo = echo
            self.echoes_attached += 1

    def on_ingress_ack(self, vswitch, entry, pkt) -> None:
        """Sender side: consume and strip the echo, update the view,
        surface ``int.report`` / ``int.path_change``, poke the CC stub."""
        echo = pkt.int_echo
        if echo is None:
            return
        pkt.int_echo = None  # vSwitch-to-vSwitch metadata, always stripped
        view = entry.int_view
        if view is None:
            view = entry.int_view = TelemetryView()
        status, path_changed = view.on_echo(echo, vswitch.sim.now)
        if status != "ok":
            self.reports_invalid += 1
            if vswitch.trace is not None:
                vswitch.trace.emit("int.report", flow=entry.key,
                                   component="int.view", severity=WARNING,
                                   status="invalid_echo")
            return
        self.reports_ok += 1
        if path_changed:
            self.path_changes += 1
        tr = vswitch.trace
        if tr is not None:
            if path_changed:
                tr.emit("int.path_change", flow=entry.key,
                        component="int.view", severity=WARNING,
                        path=list(view.path))
            tr.emit("int.report", flow=entry.key, component="int.view",
                    severity=INFO, status="ok", serial=echo.serial,
                    bottleneck=view.bottleneck,
                    q_max_bytes=view.q_max_bytes,
                    util=view.util,
                    residence_s=view.residence_s,
                    path_len=len(view.path),
                    stacks=echo.stacks,
                    lost=view.lost)
        entry.vswitch_cc.on_int_report(view)

    # ------------------------------------------------------------------
    def views(self) -> Dict[tuple, TelemetryView]:
        """All live sender-side views, keyed by flow key (sorted)."""
        out = {}
        for vswitch in self.vswitches:
            for key, entry in vswitch.table.entries.items():
                if entry.int_view is not None:
                    out[key] = entry.int_view
        return {key: out[key] for key in sorted(out)}

    def snapshot(self) -> dict:
        """Run-global counters in metric-source shape."""
        return {
            "stacks_absorbed": self.stacks_absorbed,
            "stacks_invalid": self.stacks_invalid,
            "echoes_attached": self.echoes_attached,
            "reports_ok": self.reports_ok,
            "reports_invalid": self.reports_invalid,
            "path_changes": self.path_changes,
            "stamped": sum(s.stamped for s in self.stampers),
            "overflowed": sum(s.overflowed for s in self.stampers),
        }
