"""The structured trace bus.

Every telemetry event is **typed**: its ``type`` must appear in
:data:`EVENT_SCHEMAS` and carry at least the schema's required fields,
so a typo'd emission fails loudly at the call site instead of producing
an unfilterable mystery record.  Events are timestamped from the
simulator clock only — a trace is a property of the *run*, not of the
machine that happened to execute it, which is also what keeps serial,
process-pool and cache-replay paths byte-identical.

Sampling is deterministic: per-type keep-1-in-N counters, never an RNG
draw (an unseeded draw would both break determinism and trip
repro-lint's RL002).  The first event of a sampled type is always kept
so short runs are never silently empty.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

# Severity levels, numeric so filtering is one comparison.
DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

SEVERITY_NAMES = {DEBUG: "debug", INFO: "info",
                  WARNING: "warning", ERROR: "error"}
SEVERITY_BY_NAME = {name: level for level, name in SEVERITY_NAMES.items()}

#: The event vocabulary: type -> required field names.  Emissions may
#: carry extra fields; missing a required one raises at emit time.
EVENT_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    # Flow lifecycle and state transitions (vSwitch flow table, guest CC).
    "flow.state": ("state",),
    # Sender-module window enforcement: one event per non-FACK ingress
    # ACK, in log-only mode too (rewritten=False) — the Fig. 9 overlay.
    "rwnd.rewrite": ("wnd_bytes", "rewritten"),
    # Datapath ECN actions.
    "ecn.mark": ("direction",),
    # Window policing (config policer; guard drops ride guard.* events).
    "policer.drop": ("reason",),
    # Guard ladder transitions and enforcement actions.
    "guard.escalate": (),
    "guard.deescalate": (),
    "guard.police_drop": (),
    "guard.quarantine_drop": (),
    "guard.feedback_fallback": (),
    "guard.shed": (),
    "guard.unshed": (),
    # Catch-all for guard kinds with no dedicated type (forward compat).
    "guard.event": ("kind",),
    # Injected faults (repro.faults) by cause.
    "fault.inject": ("cause",),
    # Switch-port shared-buffer occupancy at enqueue (sampled).
    "buffer.occupancy": ("queue_bytes",),
    # In-band telemetry (repro.obs.int).  ``status`` is "ok" for a
    # consumed report (with bottleneck/q_max_bytes/... fields) and an
    # "invalid_*" reason when a mangled stack or echo was discarded —
    # fault-degraded telemetry is counted and traced, never raised.
    "int.report": ("status",),
    # The sender-side view observed a new path signature for a flow.
    "int.path_change": ("path",),
    # Sanitizer violations and flight-recorder dumps.
    "sanitizer.violation": ("invariant",),
    "flight.dump": ("path",),
    # Control plane (repro.control): command dispositions, canary state
    # transitions, and rollbacks (with the violating SLO deltas).
    "control.command": ("op", "status"),
    "control.canary": ("state",),
    "control.rollback": ("reason",),
    # Experiment runtime: a cache entry that failed to parse (treated as
    # a miss; the cell re-runs and overwrites it).
    "cache.corrupt": ("key",),
    # Durability (repro.recovery).  These fire on the *supervisor's* bus,
    # never the service's own: the service trace feeds the byte-identity
    # signature, and a restored run must not carry extra events an
    # uninterrupted run lacks.
    "recovery.snapshot": ("epoch", "bytes"),
    "recovery.restore": ("epoch",),
    "recovery.wal_replay": ("replayed",),
}

#: Record keys the bus itself owns; event fields may not shadow them.
RESERVED_FIELDS = ("t", "type", "sev", "component", "flow")

#: Default keep-1-in-N sampling for the high-frequency types.  Anything
#: not listed is unsampled (every emission recorded) — in particular
#: ``rwnd.rewrite``, whose full series is the Fig. 9 overlay.
DEFAULT_SAMPLING: Dict[str, int] = {
    "ecn.mark": 16,
    "buffer.occupancy": 16,
}


def format_flow(flow) -> Optional[str]:
    """Render a flow key for records: ``src:sport>dst:dport``."""
    if flow is None:
        return None
    if isinstance(flow, tuple) and len(flow) == 4:
        return f"{flow[0]}:{flow[1]}>{flow[2]}:{flow[3]}"
    return str(flow)


class TraceEvent:
    """One emitted event; a thin record, not behaviour."""

    __slots__ = ("t", "type", "severity", "component", "flow", "fields")

    def __init__(self, t: float, type_: str, severity: int,
                 component: Optional[str], flow, fields: dict):
        self.t = t
        self.type = type_
        self.severity = severity
        self.component = component
        self.flow = flow
        self.fields = fields

    def to_record(self) -> dict:
        """Flat JSON-able dict (the exporters' and CLI's wire format)."""
        record = {
            "t": self.t,
            "type": self.type,
            "sev": SEVERITY_NAMES.get(self.severity, str(self.severity)),
            "component": self.component,
            "flow": format_flow(self.flow),
        }
        record.update(self.fields)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent t={self.t:.6f} {self.type} "
                f"flow={format_flow(self.flow)}>")


@dataclass
class TraceConfig:
    """Bus tunables.

    ``sample`` maps event type -> N (record every Nth emission; the
    first is always recorded).  ``max_events`` bounds memory on runaway
    traces; excess emissions are counted, not stored.
    """

    level: int = INFO
    sample: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_SAMPLING))
    max_events: int = 1_000_000
    validate: bool = True


class TraceBus:
    """Collects :class:`TraceEvent` instances for one run.

    A bus may be created unbound (no simulator yet) so experiment
    callers can wire probes before the runner builds the
    :class:`~repro.sim.engine.Simulator`; :meth:`bind` attaches the
    clock.  Emitting on an unbound bus is an error.
    """

    def __init__(self, sim=None, config: Optional[TraceConfig] = None):
        self.sim = sim
        self.config = config if config is not None else TraceConfig()
        self.events: List[TraceEvent] = []
        self.emitted = 0    # offered to the bus
        self.recorded = 0   # stored
        self.filtered = 0   # below the severity level
        self.sampled_out = 0
        self.dropped = 0    # over max_events
        self._tallies: _TallyCounter = _TallyCounter()
        self._sample_counters: Dict[str, int] = {}

    def bind(self, sim) -> None:
        """Attach the simulator whose clock timestamps every event."""
        self.sim = sim

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def emit(self, type_: str, *, flow=None, component: Optional[str] = None,
             severity: int = INFO, **fields) -> bool:
        """Offer one event; returns True if it was recorded.

        Raises ``KeyError`` for an unknown type and ``ValueError`` for a
        missing required field or a reserved field name (with
        ``config.validate``; validation is on by default — emission only
        happens when tracing is on, never on the tracing-off hot path).
        """
        if self.sim is None:
            raise RuntimeError("TraceBus is not bound to a simulator")
        self.emitted += 1
        config = self.config
        if config.validate:
            required = EVENT_SCHEMAS.get(type_)
            if required is None:
                raise KeyError(
                    f"unknown trace event type {type_!r}; add it to "
                    f"repro.obs.trace.EVENT_SCHEMAS")
            for name in required:
                if name not in fields:
                    raise ValueError(
                        f"trace event {type_!r} requires field {name!r}")
            for name in RESERVED_FIELDS:
                if name in fields:
                    raise ValueError(
                        f"trace event field {name!r} shadows a reserved "
                        f"record key")
        if severity < config.level:
            self.filtered += 1
            return False
        n = config.sample.get(type_, 0)
        if n > 1:
            count = self._sample_counters.get(type_, 0)
            self._sample_counters[type_] = count + 1
            if count % n != 0:
                self.sampled_out += 1
                return False
        if len(self.events) >= config.max_events:
            self.dropped += 1
            return False
        self.events.append(TraceEvent(self.sim.now, type_, severity,
                                      component, flow, fields))
        self.recorded += 1
        self._tallies[type_] += 1
        return True

    # ------------------------------------------------------------------
    def records(self) -> List[dict]:
        """The whole trace as flat JSON-able dicts, in emission order."""
        return [event.to_record() for event in self.events]

    def by_type(self) -> Dict[str, int]:
        """Recorded-event counts per type (sorted for determinism)."""
        return {k: self._tallies[k] for k in sorted(self._tallies)}

    def for_flow(self, flow) -> List[TraceEvent]:
        """Events scoped to one flow (key tuple or formatted string)."""
        wanted = format_flow(flow)
        return [e for e in self.events if format_flow(e.flow) == wanted]

    def summary(self) -> dict:
        """Deterministic counts for ``RunResult.telemetry``."""
        return {
            "emitted": self.emitted,
            "recorded": self.recorded,
            "filtered": self.filtered,
            "sampled_out": self.sampled_out,
            "dropped": self.dropped,
            "by_type": self.by_type(),
        }

    def __len__(self) -> int:
        return len(self.events)
