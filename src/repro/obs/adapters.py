"""Thin adapters migrating the ad-hoc ledgers onto the trace bus.

:class:`EventLogAdapter` and :class:`FaultRecorderAdapter` are drop-in
subclasses of the deprecated :class:`~repro.metrics.collectors.EventLog`
/ :class:`~repro.metrics.collectors.FaultRecorder`: they keep the exact
ledger behaviour existing callers and determinism signatures rely on
(``record``, ``kinds``, ``signature``, ``snapshot``, ``merge``, ...)
and additionally mirror every record onto a
:class:`~repro.obs.trace.TraceBus` when one is bound.  Unbound (the
default), they are pure ledgers — and, being subclasses, they do not
trigger the base classes' deprecation warning.

Guard ``kind`` strings map onto dedicated ``guard.*`` event types;
unmapped kinds ride the ``guard.event`` catch-all so a new guard
notification can never silently vanish from a trace.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics.collectors import EventLog, FaultRecorder
from .trace import EVENT_SCHEMAS, INFO, WARNING, TraceBus

#: Guard notification kind -> trace event type.
GUARD_KIND_TO_TYPE: Dict[str, str] = {
    "guard_escalate": "guard.escalate",
    "guard_deescalate": "guard.deescalate",
    "guard_police_drop": "guard.police_drop",
    "guard_quarantine_drop": "guard.quarantine_drop",
    "guard_feedback_fallback": "guard.feedback_fallback",
    "guard_shed": "guard.shed",
    "guard_unshed": "guard.unshed",
}

#: Enforcement actions and ladder climbs warrant attention; bookkeeping
#: transitions stay informational.
_WARN_TYPES = frozenset({
    "guard.escalate", "guard.police_drop", "guard.quarantine_drop",
    "guard.feedback_fallback", "guard.shed",
})


class EventLogAdapter(EventLog):
    """An :class:`EventLog` that mirrors records onto the trace bus."""

    def __init__(self, bus: Optional[TraceBus] = None):
        super().__init__()
        self.bus = bus

    def bind_bus(self, bus: Optional[TraceBus]) -> None:
        """Late binding: the guard learns its vSwitch (and with it the
        run's bus) only at attach time."""
        self.bus = bus

    def record(self, time: float, kind: str, flow=None, **detail) -> None:
        super().record(time, kind, flow=flow, **detail)
        bus = self.bus
        if bus is None:
            return
        type_ = GUARD_KIND_TO_TYPE.get(kind)
        if type_ is None:
            type_ = "guard.event"
            detail = dict(detail)
            detail["kind"] = kind
        severity = WARNING if type_ in _WARN_TYPES else INFO
        bus.emit(type_, flow=flow, component="guard", severity=severity,
                 **detail)


class FaultRecorderAdapter(FaultRecorder):
    """A :class:`FaultRecorder` that mirrors records onto the trace bus.

    ``FaultRecorder.record`` carries no timestamp, so the mirrored
    ``fault.inject`` event is stamped from the bus's simulator clock —
    injectors record at the instant the fault fires, which is exactly
    the bus's ``sim.now``.
    """

    def __init__(self, bus: Optional[TraceBus] = None):
        super().__init__()
        self.bus = bus

    def bind_bus(self, bus: Optional[TraceBus]) -> None:
        self.bus = bus

    def record(self, cause: str, n: int = 1) -> None:
        super().record(cause, n)
        bus = self.bus
        if bus is not None:
            bus.emit("fault.inject", component="faults", severity=WARNING,
                     cause=cause, n=n)


__all__ = ["EventLogAdapter", "FaultRecorderAdapter", "GUARD_KIND_TO_TYPE",
           "EVENT_SCHEMAS"]
