"""Unified telemetry for the reproduction (DESIGN.md §11).

One simulation-time-aware observability layer that every subsystem emits
into, replacing the ad-hoc logging each PR grew on its own
(``EventLog``, ``FaultRecorder``, guard signatures, sanitizer prints):

* :mod:`repro.obs.trace` — the structured **trace bus**: typed,
  schema'd events (``rwnd.rewrite``, ``ecn.mark``, ``guard.escalate``,
  ``fault.inject``, ...) with per-flow/per-component scoping, severity
  levels and deterministic counter-based sampling;
* :mod:`repro.obs.metrics` — the **metric registry**: named counters,
  gauges and fixed-bucket histograms, snapshotted deterministically
  into ``RunResult.telemetry``;
* :mod:`repro.obs.recorder` — the **flight recorder**: a bounded
  per-vSwitch ring buffer of the last datapath decisions, dumped on
  :class:`~repro.analysis.sanitize.InvariantViolation` or on demand;
* :mod:`repro.obs.export` — JSONL/CSV writers for trace streams;
* :mod:`repro.obs.adapters` — drop-in ``EventLog``/``FaultRecorder``
  subclasses that mirror their records onto the bus;
* :mod:`repro.obs.int` — **in-band network telemetry**: switch ports
  stamp per-hop metadata (queue depth, utilization, residence) onto
  transiting packets, the receiving vSwitch echoes a compact digest
  back on ACKs, and the sender aggregates a per-flow
  :class:`~repro.obs.int.TelemetryView` (bottleneck hop, queue-depth
  series, path latency decomposition) — DESIGN.md §16;
* ``python -m repro.obs`` — ``summary`` / ``grep`` / ``timeline`` /
  ``int`` inspection of an exported trace.

Zero-cost-off contract: instrumented objects hold ``None`` instead of a
bus/recorder when telemetry is off and pay one ``is None`` test per
hook — the same idiom as the runtime sanitizer.  All timestamps come
from ``sim.now``; nothing in this package reads the wall clock.
"""

from .context import ObsContext, PortObs
from .export import read_jsonl, write_csv, write_jsonl
from .int import (
    MAX_INT_HOPS,
    IntEcho,
    IntSink,
    IntStamper,
    IntTelemetry,
    TelemetryView,
)
from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .recorder import FlightRecorder
from .trace import (
    DEBUG,
    ERROR,
    EVENT_SCHEMAS,
    INFO,
    WARNING,
    TraceBus,
    TraceConfig,
    TraceEvent,
    format_flow,
)

__all__ = [
    "Counter",
    "DEBUG",
    "ERROR",
    "EVENT_SCHEMAS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "INFO",
    "IntEcho",
    "IntSink",
    "IntStamper",
    "IntTelemetry",
    "MAX_INT_HOPS",
    "MetricRegistry",
    "ObsContext",
    "PortObs",
    "TelemetryView",
    "TraceBus",
    "TraceConfig",
    "TraceEvent",
    "WARNING",
    "format_flow",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
