"""Trace exporters: JSONL (lossless) and CSV (spreadsheet-friendly).

Records are the flat dicts produced by
:meth:`repro.obs.trace.TraceBus.records` and
:meth:`repro.obs.recorder.FlightRecorder.records`; both exporters
accept any iterable of such dicts.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List

#: Leading columns, in display order; remaining keys follow sorted.
LEAD_COLUMNS = ("t", "type", "sev", "component", "flow")


def write_jsonl(records: Iterable[dict], path) -> str:
    """One JSON object per line; keys sorted so files diff cleanly."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
    return str(path)


def read_jsonl(path) -> List[dict]:
    """Load a JSONL trace (or flight dump) back into records."""
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_csv(records: Iterable[dict], path) -> str:
    """CSV with a union-of-keys header (lead columns first)."""
    records = list(records)
    extra = sorted({key for record in records for key in record}
                   - set(LEAD_COLUMNS))
    columns = [*LEAD_COLUMNS, *extra]
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore",
                                restval="")
        writer.writeheader()
        for record in records:
            writer.writerow(record)
    return str(path)
