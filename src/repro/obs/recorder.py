"""The datapath flight recorder.

A bounded ring buffer of the last N datapath decisions one vSwitch
made — window rewrites, drops, timeouts, resurrections, guard
transitions.  It is armed whenever tracing *or* the runtime sanitizer
is on (both are debugging modes) and costs one ``is None`` test per
decision otherwise.

On an :class:`~repro.analysis.sanitize.InvariantViolation` the
sanitizer dumps the ring to a JSONL file and attaches the path to the
exception, turning "seed 1729 diverged" into a replayable decision log
readable with ``python -m repro.obs timeline <dump>``.

Dump file names carry the vSwitch name, the process id and a
per-recorder serial number — never a wall-clock stamp (repro-lint
RL003: the only clock in ``src/`` is ``sim.now``, and that goes
*inside* the records).  Names alone cannot be trusted to be unique:
two same-named vSwitches (two services in one process) can dump in the
same pid/serial window, a SIGKILLed run can be resumed under a
recycled pid, and a restored snapshot resets the recorder's serial.
Dumps therefore open their file with ``O_EXCL`` and bump the serial
until creation succeeds — a collision skips to a free name, never
overwrites an earlier dump.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from pathlib import Path
from typing import Deque, List, Tuple

from .trace import format_flow

#: Default ring capacity: enough to hold several RTTs of per-ACK
#: decisions for one flow without holding a whole run in memory.
DEFAULT_CAPACITY = 256

#: Directory for dumps; override with ``REPRO_OBS_DIR``.
DEFAULT_DUMP_DIR = ".repro-obs"


class FlightRecorder:
    """Ring buffer of (sim time, kind, flow, fields) decision records."""

    def __init__(self, sim, name: str = "vswitch",
                 capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.noted = 0  # decisions ever offered (ring keeps the tail)
        self._serial = 0  # per-recorder dump counter (instance state, so
        #                   it snapshots and restores with the vSwitch)
        self._ring: Deque[Tuple[float, str, object, dict]] = deque(
            maxlen=capacity)

    # ------------------------------------------------------------------
    def note(self, type_: str, flow=None, **fields) -> None:
        """Record one datapath decision (cheap: one deque append).

        The first argument is the record *type* (named ``type_`` so a
        detail field called ``kind`` — e.g. the guard's transition kind
        — can ride in ``fields`` without colliding)."""
        self.noted += 1
        self._ring.append((self.sim.now, type_, flow, fields))

    def records(self) -> List[dict]:
        """Ring contents as flat dicts, oldest first (trace-record shape,
        so the ``python -m repro.obs`` subcommands read dumps too)."""
        out = []
        for t, kind, flow, fields in self._ring:
            record = {"t": t, "type": kind, "sev": "info",
                      "component": self.name, "flow": format_flow(flow)}
            record.update(fields)
            out.append(record)
        return out

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    def dump(self, dir_path=None, tag: str = "") -> str:
        """Write the ring to a JSONL file; returns the path.

        ``dir_path`` defaults to ``$REPRO_OBS_DIR`` or ``.repro-obs``.
        The file is created with ``O_EXCL``; a name collision (same-named
        vSwitch, recycled pid, serial reset by a snapshot restore) bumps
        the serial and retries rather than overwriting evidence.
        """
        if dir_path is None:
            dir_path = os.environ.get("REPRO_OBS_DIR") or DEFAULT_DUMP_DIR
        directory = Path(dir_path)
        directory.mkdir(parents=True, exist_ok=True)
        parts = ["flight", _safe(self.name)]
        if tag:
            parts.append(_safe(tag))
        while True:
            self._serial += 1
            name = "-".join(parts + [f"{os.getpid()}-{self._serial}"])
            path = directory / (name + ".jsonl")
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                             0o644)
            except FileExistsError:
                continue
            break
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for record in self.records():
                fh.write(json.dumps(record, sort_keys=True, default=str))
                fh.write("\n")
        return str(path)


def _safe(name: str) -> str:
    """File-name-safe rendering of a component name or tag."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "-", str(name)).strip("-")
    return cleaned or "x"
