"""Trace inspection CLI: ``python -m repro.obs <cmd> TRACE.jsonl``.

Subcommands::

    summary   TRACE.jsonl                    # counts, flows, time range
    grep      TRACE.jsonl [--type T,...] [--flow F] [--component C]
              [--min-sev warning] [--since S] [--until U] [--limit N]
    timeline  TRACE.jsonl [--flow F] [--types T,...] [--limit N]
    int       TRACE.jsonl [--flow F] [--limit N]   # INT hop timeline +
                                                   # bottleneck attribution

``TRACE.jsonl`` is a bus export (``--trace`` on an experiment, or
:func:`repro.obs.export.write_jsonl`) or a flight-recorder dump — both
use the same record shape.  Exit status: 0 on success, 1 when a filter
matched nothing, 2 on usage or I/O errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .export import read_jsonl
from .trace import SEVERITY_BY_NAME

#: Keys every record carries; everything else is an event field.
_BASE_KEYS = ("t", "type", "sev", "component", "flow")


def _load(path: str) -> List[dict]:
    try:
        return read_jsonl(path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro-obs: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _matches(record: dict, args) -> bool:
    if args.types and record.get("type") not in args.types:
        return False
    if args.component is not None \
            and args.component not in str(record.get("component") or ""):
        return False
    if args.flow is not None \
            and args.flow not in str(record.get("flow") or ""):
        return False
    if args.min_sev is not None:
        sev = SEVERITY_BY_NAME.get(str(record.get("sev")), 0)
        if sev < args.min_sev:
            return False
    t = record.get("t", 0.0)
    if args.since is not None and t < args.since:
        return False
    if args.until is not None and t > args.until:
        return False
    return True


def _fields_of(record: dict) -> str:
    parts = []
    for key in sorted(record):
        if key not in _BASE_KEYS:
            parts.append(f"{key}={record[key]}")
    return " ".join(parts)


def _pick_default_flow(records: List[dict]) -> Optional[str]:
    """First flow appearing in the trace (CI-friendly default)."""
    for record in records:
        flow = record.get("flow")
        if flow:
            return str(flow)
    return None


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def cmd_summary(args) -> int:
    records = _load(args.trace)
    if not records:
        print("empty trace")
        return 1
    times = [r.get("t", 0.0) for r in records]
    by_type: dict = {}
    flows: dict = {}
    components: set = set()
    for record in records:
        by_type[record.get("type", "?")] = \
            by_type.get(record.get("type", "?"), 0) + 1
        flow = record.get("flow")
        if flow:
            flows[flow] = flows.get(flow, 0) + 1
        if record.get("component"):
            components.add(str(record["component"]))
    print(f"{len(records)} events over "
          f"[{min(times):.6f}s, {max(times):.6f}s] virtual time")
    print(f"{len(flows)} flows, {len(components)} components")
    print("\nevents by type:")
    for type_ in sorted(by_type):
        print(f"  {type_:24s} {by_type[type_]}")
    if flows:
        print("\nbusiest flows:")
        ranked = sorted(flows.items(), key=lambda kv: (-kv[1], kv[0]))
        for flow, count in ranked[:10]:
            print(f"  {flow:40s} {count}")
    return 0


def cmd_grep(args) -> int:
    records = _load(args.trace)
    shown = 0
    for record in records:
        if not _matches(record, args):
            continue
        print(json.dumps(record, sort_keys=True))
        shown += 1
        if args.limit is not None and shown >= args.limit:
            break
    return 0 if shown else 1


def cmd_timeline(args) -> int:
    records = _load(args.trace)
    if args.flow is None:
        args.flow = _pick_default_flow(records)
        if args.flow is None:
            print("repro-obs: trace has no flow-scoped events; "
                  "nothing to render", file=sys.stderr)
            return 1
        print(f"(no --flow given; using first flow {args.flow})")
    shown = 0
    for record in records:
        if not _matches(record, args):
            continue
        component = str(record.get("component") or "-")
        print(f"{record.get('t', 0.0):12.6f}s  {component:20s} "
              f"{record.get('type', '?'):22s} {_fields_of(record)}")
        shown += 1
        if args.limit is not None and shown >= args.limit:
            print(f"... (limited to {args.limit} events)")
            break
    if not shown:
        print(f"repro-obs: no events for flow {args.flow!r}",
              file=sys.stderr)
        return 1
    return 0


def cmd_int(args) -> int:
    """Per-flow INT hop timeline plus the bottleneck attribution table."""
    records = [r for r in _load(args.trace)
               if str(r.get("type", "")).startswith("int.")
               and _matches(r, args)]
    if not records:
        print("repro-obs: no int.* events match", file=sys.stderr)
        return 1
    shown = 0
    print("per-flow hop timeline:")
    for record in records:
        flow = str(record.get("flow") or "-")
        if record.get("type") == "int.path_change":
            print(f"{record.get('t', 0.0):12.6f}s  {flow:40s} "
                  f"path -> {record.get('path')}")
        elif record.get("status") == "ok":
            print(f"{record.get('t', 0.0):12.6f}s  {flow:40s} "
                  f"#{record.get('serial', '?'):>4} "
                  f"bottleneck={record.get('bottleneck')} "
                  f"q_max={record.get('q_max_bytes', 0):.0f}B "
                  f"residence={record.get('residence_s', 0.0) * 1e6:.1f}us")
        else:
            print(f"{record.get('t', 0.0):12.6f}s  {flow:40s} "
                  f"degraded: {record.get('status')}")
        shown += 1
        if args.limit is not None and shown >= args.limit:
            print(f"... (limited to {args.limit} events)")
            break
    # Attribution: which hop was the bottleneck, how often, how deep.
    table: dict = {}
    degraded = 0
    for record in records:
        if record.get("type") != "int.report":
            continue
        if record.get("status") != "ok":
            degraded += 1
            continue
        hop = str(record.get("bottleneck"))
        entry = table.setdefault(hop, {"reports": 0, "q_max": 0.0,
                                       "residence_s": 0.0})
        entry["reports"] += 1
        entry["q_max"] = max(entry["q_max"],
                             float(record.get("q_max_bytes", 0.0)))
        entry["residence_s"] += float(record.get("residence_s", 0.0))
    total = sum(e["reports"] for e in table.values())
    print("\nbottleneck attribution:")
    print(f"  {'hop':24s} {'reports':>8s} {'share':>7s} "
          f"{'q_max':>10s} {'mean_res':>10s}")
    ranked = sorted(table.items(), key=lambda kv: (-kv[1]["reports"], kv[0]))
    for hop, entry in ranked:
        share = entry["reports"] / total if total else 0.0
        mean_res = (entry["residence_s"] / entry["reports"]
                    if entry["reports"] else 0.0)
        print(f"  {hop:24s} {entry['reports']:8d} {share:6.1%} "
              f"{entry['q_max']:9.0f}B {mean_res * 1e6:8.1f}us")
    if degraded:
        print(f"  ({degraded} degraded report(s) not attributed)")
    return 0


# ---------------------------------------------------------------------------
def _add_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--type", dest="types", default="",
                        help="comma-separated event types to keep")
    parser.add_argument("--flow", help="substring match on the flow id")
    parser.add_argument("--component",
                        help="substring match on the component")
    parser.add_argument("--min-sev", choices=sorted(SEVERITY_BY_NAME),
                        help="minimum severity")
    parser.add_argument("--since", type=float,
                        help="keep events at or after this virtual time")
    parser.add_argument("--until", type=float,
                        help="keep events at or before this virtual time")
    parser.add_argument("--limit", type=int,
                        help="stop after this many matching events")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect exported repro.obs traces and flight dumps.")
    sub = parser.add_subparsers(dest="command")
    summary = sub.add_parser("summary", help="counts, flows, time range")
    summary.add_argument("trace", help="JSONL trace or flight dump")
    grep = sub.add_parser("grep", help="filter events, print JSONL")
    grep.add_argument("trace", help="JSONL trace or flight dump")
    _add_filters(grep)
    timeline = sub.add_parser(
        "timeline", help="per-flow interleaved event timeline")
    timeline.add_argument("trace", help="JSONL trace or flight dump")
    _add_filters(timeline)
    int_cmd = sub.add_parser(
        "int", help="INT hop timeline + bottleneck attribution table")
    int_cmd.add_argument("trace", help="JSONL trace or flight dump")
    _add_filters(int_cmd)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if hasattr(args, "types"):
        args.types = {t.strip() for t in args.types.split(",") if t.strip()}
    if getattr(args, "min_sev", None) is not None:
        args.min_sev = SEVERITY_BY_NAME[args.min_sev]
    try:
        if args.command == "summary":
            return cmd_summary(args)
        if args.command == "grep":
            return cmd_grep(args)
        if args.command == "int":
            return cmd_int(args)
        return cmd_timeline(args)
    except SystemExit as exc:
        return int(exc.code or 0)


if __name__ == "__main__":
    sys.exit(main())
