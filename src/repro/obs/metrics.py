"""The metric registry: named counters, gauges, fixed-bucket histograms.

No dependencies and no dynamic resizing: histogram bucket bounds are
fixed at registration (HDR-style), so two runs of the same seed produce
identical snapshots regardless of the values' arrival order — the
property ``RunResult.telemetry`` byte-identity rests on.

Besides owned instruments, the registry accepts **sources**: callables
evaluated at snapshot time that return a number or a flat dict of
numbers.  Subsystems that already keep their own counters (``OpsCounter``,
``PortStats``, the engine) register a source instead of double-counting.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def pow2_bounds(lo: int, count: int) -> Tuple[int, ...]:
    """``count`` power-of-two bucket bounds starting at ``lo``."""
    if lo <= 0 or count <= 0:
        raise ValueError("lo and count must be positive")
    return tuple(lo * (1 << i) for i in range(count))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram (bounds are upper-inclusive edges).

    A value lands in the first bucket whose bound it does not exceed;
    values above the last bound land in the overflow bucket, so
    ``len(counts) == len(bounds) + 1`` and no sample is ever lost.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, bounds: Sequence[Number]):
        bounds = tuple(bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: Number = 0
        self.min_value: Optional[Number] = None
        self.max_value: Optional[Number] = None

    def record(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
        }


class MetricRegistry:
    """Name -> instrument map with deterministic snapshots.

    Re-registering an existing name returns the existing instrument if
    the kind matches (so independent subsystems can share a counter) and
    raises if it does not.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._sources: Dict[str, Callable[[], object]] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}")
            return existing
        if name in self._sources:
            raise ValueError(f"metric {name!r} is already a source")
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[Number]) -> Histogram:
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(name, bounds))

    def source(self, name: str, fn: Callable[[], object]) -> None:
        """Register a snapshot-time callable returning a number or a
        flat ``{key: number}`` dict (flattened as ``name.key``)."""
        if name in self._metrics or name in self._sources:
            raise ValueError(f"metric {name!r} is already registered")
        self._sources[name] = fn

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """All instruments and sources, sorted by name, JSON-able."""
        out: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            out[name] = metric.snapshot()
        for name, fn in self._sources.items():
            value = fn()
            if isinstance(value, dict):
                for key in sorted(value):
                    out[f"{name}.{key}"] = value[key]
            else:
                out[name] = value
        return {name: out[name] for name in sorted(out)}

    def __len__(self) -> int:
        return len(self._metrics) + len(self._sources)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._sources
