"""The per-run observability context: one bus + one registry.

An :class:`ObsContext` bundles the trace bus and the metric registry
for one run and knows how to instrument the repo's building blocks:
vSwitches (:meth:`register_vswitch`), switches and their ports
(:meth:`register_switch` / :meth:`attach_topology`) and the engine
itself (:meth:`bind`).

It may be created *unbound* — before the runner has built the
:class:`~repro.sim.engine.Simulator` — so experiment code can wire
probes first and hand the context to a runner, which binds it; see
``repro.experiments.runners``.

:meth:`snapshot` produces the deterministic JSON-able dict stored in
``RunResult.telemetry``: metric values are read once, sorted by name,
and contain nothing host-dependent, so serial, pool and cache-replay
paths of the experiment runtime stay byte-identical.
"""

from __future__ import annotations

from typing import List, Optional

from .metrics import MetricRegistry, pow2_bounds
from .trace import INFO, TraceBus, TraceConfig

#: Queue-occupancy histogram buckets: 1.5 KB frames, power-of-two up to
#: beyond the modelled 9 MB shared buffer.
QUEUE_BYTES_BOUNDS = pow2_bounds(1500, 14)


class PortObs:
    """Per-switch-port hook object (held by ``SwitchTxPort._obs``).

    One object bundles everything a port touches at enqueue so the
    datapath pays a single ``is None`` test when observability is off.
    """

    __slots__ = ("bus", "hist", "component")

    def __init__(self, bus: TraceBus, hist, component: str):
        self.bus = bus
        self.hist = hist
        self.component = component

    def on_enqueue(self, queue_bytes: int, admitted: bool,
                   marked: bool) -> None:
        self.hist.record(queue_bytes)
        self.bus.emit("buffer.occupancy", component=self.component,
                      severity=INFO, queue_bytes=queue_bytes,
                      admitted=admitted, marked=marked)


class _EngineSource:
    """Metric source reading one simulator's counters.

    Sources are plain objects (not lambdas) so a registry that is part
    of a live service survives checkpoint/restore pickling.
    """

    __slots__ = ("sim",)

    def __init__(self, sim):
        self.sim = sim

    def __call__(self) -> dict:
        s = self.sim
        return {
            "events_processed": s.events_processed,
            "events_scheduled": s.events_scheduled,
            "heap_compactions": s.heap_compactions,
        }


class _VswitchOpsSource:
    __slots__ = ("vswitch",)

    def __init__(self, vswitch):
        self.vswitch = vswitch

    def __call__(self) -> dict:
        v = self.vswitch
        return {
            "packets_egress": v.ops.packets_egress,
            "packets_ingress": v.ops.packets_ingress,
            **v.ops.snapshot(),
        }


class _VswitchFlowTableSource:
    __slots__ = ("vswitch",)

    def __init__(self, vswitch):
        self.vswitch = vswitch

    def __call__(self) -> dict:
        v = self.vswitch
        return {
            "entries": len(v.table.entries),
            "restarts": v.restarts,
            "resurrections": v.resurrections,
        }


class _VswitchPolicerSource:
    __slots__ = ("vswitch",)

    def __init__(self, vswitch):
        self.vswitch = vswitch

    def __call__(self) -> dict:
        return {"drops": self.vswitch.policer.drops}


class _VswitchConntrackSource:
    __slots__ = ("vswitch",)

    def __init__(self, vswitch):
        self.vswitch = vswitch

    def __call__(self) -> dict:
        entries = self.vswitch.table.entries.values()
        return {
            "dupacks": sum(e.conntrack.dupacks for e in entries),
            "timeouts_inferred": sum(e.conntrack.timeouts_inferred
                                     for e in entries),
        }


class _SwitchSource:
    __slots__ = ("switch",)

    def __init__(self, switch):
        self.switch = switch

    def __call__(self) -> dict:
        s = self.switch
        return {
            "rx_packets": s.rx_packets,
            "no_route_drops": s.no_route_drops,
            "tx_packets": s.total_tx_packets(),
            "drops": s.total_drops(),
            "marked_packets": s.marker.marked_packets,
            "wred_drops": s.marker.dropped_packets,
            "buffer_peak_used": s.shared.peak_used,
        }


class _PortSource:
    __slots__ = ("port",)

    def __init__(self, port):
        self.port = port

    def __call__(self) -> dict:
        stats = self.port.stats
        return {
            "tx_packets": stats.tx_packets,
            "tx_bytes": stats.tx_bytes,
            "dropped_packets": stats.dropped_packets,
            "dropped_bytes": stats.dropped_bytes,
            "marked_packets": stats.marked_packets,
        }


class _IntTelemetrySource:
    """Run-global INT pipeline counters (repro.obs.int)."""

    __slots__ = ("telemetry",)

    def __init__(self, telemetry):
        self.telemetry = telemetry

    def __call__(self) -> dict:
        return self.telemetry.snapshot()


class _IntStamperSource:
    """One switch port's hop-stamping counters."""

    __slots__ = ("stamper",)

    def __init__(self, stamper):
        self.stamper = stamper

    def __call__(self) -> dict:
        return self.stamper.snapshot()


class _FluidPortSource:
    """Flattened coupling stats of one fluid port (repro.fluid).

    The per-port dict is the scalar subset of ``FluidPort.snapshot()``
    (no nested per-class lists), so hybrid runs surface their coupling
    behaviour — overlay occupancy peak, serialization inflation, mark
    fraction — through the same ``RunResult.telemetry`` snapshot path
    as packet-tier metrics.
    """

    __slots__ = ("fluid_port",)

    def __init__(self, fluid_port):
        self.fluid_port = fluid_port

    def __call__(self) -> dict:
        fp = self.fluid_port
        return {
            "steps": fp.steps,
            "offered_bytes": fp.offered_bytes,
            "delivered_bytes": fp.delivered_bytes,
            "marked_bytes": fp.marked_bytes,
            "wred_dropped_bytes": fp.wred_dropped_bytes,
            "tail_lost_bytes": fp.tail_lost_bytes,
            "overlay_bytes": fp.shared.overlay_bytes(fp.queue_id),
            "overlay_peak_bytes": fp.overlay_peak_bytes,
            "inflation": fp.service_inflation(),
            "inflation_peak": fp.inflation_peak,
            "mark_fraction": fp.mark_fraction,
        }


class ObsContext:
    """Trace bus + metric registry for one run."""

    def __init__(self, sim=None, config: Optional[TraceConfig] = None):
        self.sim = sim
        self.bus = TraceBus(sim, config)
        self.registry = MetricRegistry()
        self.vswitches: List[object] = []
        self.switches: List[object] = []
        if sim is not None:
            self._register_engine(sim)

    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Attach the run's simulator (idempotent for the same one)."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise RuntimeError("ObsContext is already bound to a simulator")
        self.sim = sim
        self.bus.bind(sim)
        self._register_engine(sim)

    def _register_engine(self, sim) -> None:
        self.registry.source("engine", _EngineSource(sim))

    # ------------------------------------------------------------------
    def register_vswitch(self, vswitch) -> None:
        """Expose one AC/DC vSwitch's counters as metric sources."""
        if vswitch in self.vswitches:
            return
        self.vswitches.append(vswitch)
        addr = getattr(vswitch.host, "addr", f"vswitch{len(self.vswitches)}")
        prefix = f"vswitch.{addr}"
        self.registry.source(f"{prefix}.ops", _VswitchOpsSource(vswitch))
        self.registry.source(f"{prefix}.flow_table",
                             _VswitchFlowTableSource(vswitch))
        self.registry.source(f"{prefix}.policer",
                             _VswitchPolicerSource(vswitch))
        self.registry.source(f"{prefix}.conntrack",
                             _VswitchConntrackSource(vswitch))

    def register_switch(self, switch) -> None:
        """Instrument one switch: aggregate source + per-port occupancy
        histograms + the sampled ``buffer.occupancy`` trace hook."""
        if switch in self.switches:
            return
        self.switches.append(switch)
        prefix = f"switch.{switch.name}"
        self.registry.source(prefix, _SwitchSource(switch))
        for port_id, port in switch.ports.items():
            name = f"{prefix}.p{port_id}"
            hist = self.registry.histogram(f"{name}.queue_bytes",
                                           QUEUE_BYTES_BOUNDS)
            self.registry.source(name, _PortSource(port))
            port.attach_obs(PortObs(self.bus, hist, name))

    def attach_topology(self, topology) -> None:
        """Instrument every switch of a built topology."""
        for switch in topology.switches.values():
            self.register_switch(switch)

    def register_int(self, telemetry) -> None:
        """Expose an :class:`~repro.obs.int.IntTelemetry` context: the
        run-global pipeline counters plus one source per hop stamper."""
        self.registry.source("int", _IntTelemetrySource(telemetry))
        for stamper in telemetry.stampers:
            self.registry.source(f"int.hop.{stamper.hop_id}",
                                 _IntStamperSource(stamper))

    def register_fluid(self, tier) -> None:
        """Flatten a :class:`~repro.fluid.FluidTier`'s coupling stats
        into the snapshot, one source per coupled port.

        Ports without flow classes register nothing: an inert coupling
        (hooks installed, zero background) must keep the §15
        byte-identity contract with an uncoupled run, snapshot
        included.
        """
        for fluid_port in tier.ports:
            if not fluid_port.classes:
                continue
            name = f"fluid.{fluid_port.port.name}"
            self.registry.source(name, _FluidPortSource(fluid_port))

    def register_runtime(self, runtime) -> None:
        """Expose an experiment runtime's pool/cache stats, and give the
        runtime a bus to surface cache corruption on (``cache.corrupt``
        events carry the offending entry key)."""
        self.registry.source("runtime", runtime.telemetry)
        runtime.obs = self

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The deterministic ``RunResult.telemetry`` payload."""
        return {
            "metrics": self.registry.snapshot(),
            "trace": self.bus.summary(),
        }
