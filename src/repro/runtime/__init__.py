"""Parallel experiment runtime: process-pool fan-out + on-disk result cache.

Public surface::

    from repro.runtime import Runtime, RunSpec

    rt = Runtime(jobs=8, cache=".repro-cache")
    results = rt.map([RunSpec("repro.experiments.chaos:_cell",
                              {"scheme": "acdc", "intensity": 0.01,
                               "seed": s, "size_bytes": 4_000_000,
                               "duration": 0.5})
                      for s in range(10)])

See DESIGN.md §10 for the architecture and the cache-key scheme.
"""

from .cache import ResultCache, cache_from_env
from .pool import Runtime, RuntimeStats, cell_error, is_cell_error, seed_sweep
from .spec import SPEC_VERSION, RunSpec, canonical_json, canonicalize, resolve

__all__ = [
    "ResultCache",
    "RunSpec",
    "Runtime",
    "RuntimeStats",
    "SPEC_VERSION",
    "cache_from_env",
    "canonical_json",
    "canonicalize",
    "cell_error",
    "is_cell_error",
    "resolve",
    "seed_sweep",
]
