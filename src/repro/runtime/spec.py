"""Run specifications: the unit of work the experiment runtime executes.

A :class:`RunSpec` names a module-level callable by import path
(``"package.module:function"``) plus plain-JSON keyword arguments.  That
restriction is deliberate:

* the callable reference (not a closure) is what lets a process-pool
  worker re-resolve and execute the run in a fresh interpreter;
* JSON-only kwargs give every spec a *canonical* byte representation, so
  the same run always hashes to the same cache key, independent of dict
  insertion order, the machine, or the process that computes it.

Results are pushed through the same canonical JSON round-trip before they
leave the runtime (:func:`canonicalize`), so a result is byte-identical
whether it was computed serially in-process, computed in a pool worker
(pickled back), or loaded from the on-disk cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Mapping

#: Bump when the spec encoding changes incompatibly; part of every key so
#: stale cache entries from an older scheme can never be returned.
SPEC_VERSION = 1


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to canonical JSON (sorted keys, no whitespace).

    Raises ``TypeError`` for anything that is not plain JSON data — specs
    must not smuggle in live objects, and results that cannot round-trip
    would silently change shape on a cache hit.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def canonicalize(value: Any) -> Any:
    """Normalise a result through a JSON round-trip.

    Tuples become lists, dict keys become strings, NaN/Infinity survive
    (Python's JSON dialect) — exactly what a cache hit would return.
    """
    return json.loads(canonical_json(value))


def resolve(ref: str) -> Callable[..., Any]:
    """Import the callable named by ``"package.module:qualname"``."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed callable reference {ref!r}; "
                         f"expected 'package.module:function'")
    obj: Any = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{ref!r} resolved to non-callable {obj!r}")
    return obj


@dataclass(frozen=True)
class RunSpec:
    """One independent (callable, kwargs) run, e.g. a (scheme, seed) cell."""

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> Dict[str, Any]:
        """The hashed identity of this spec (also stored beside results)."""
        return {"v": SPEC_VERSION, "fn": self.fn, "kwargs": dict(self.kwargs)}

    def key(self) -> str:
        """Content hash of the run spec — the result-cache key.

        Only the spec is hashed (not the code), so re-running a figure
        after an unrelated code change is free; invalidate by bumping the
        seed, the kwargs, or wiping the cache directory.
        """
        blob = canonical_json(self.describe()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def execute(self) -> Any:
        """Resolve and run the callable; returns the canonicalized result."""
        return canonicalize(resolve(self.fn)(**dict(self.kwargs)))
