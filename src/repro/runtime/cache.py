"""On-disk result cache keyed by run-spec content hashes.

One JSON file per completed run, named ``<sha256>.json`` and holding both
the spec description and its canonicalized result, so entries are
self-describing (a human can ``cat`` one to see what produced it).  Writes
go through a temp file + ``os.replace`` so a crashed or parallel writer
can never leave a half-written entry behind; unreadable entries are
treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .spec import canonical_json


class ResultCache:
    """Directory of completed run results, addressed by content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Corrupt entries encountered (count + keys, in discovery order):
        #: the runtime surfaces these as ``cache.corrupt`` obs events so a
        #: torn cache is visible, not silently absorbed as rerun time.
        self.corrupt = 0
        self.corrupt_keys: list = []
        #: Write races lost to a concurrent writer of the same key (two
        #: runtimes computing the same cell).  Benign by construction:
        #: entries are content-addressed, so the winner wrote the same
        #: spec and an equivalent result.
        self.races = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, result)``."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            return True, entry["result"]
        except FileNotFoundError:
            return False, None
        except (OSError, ValueError, KeyError):
            # Torn/corrupt entry: behave as a miss, the rerun overwrites
            # it — but remember the key so the miss is observable.
            self.corrupt += 1
            self.corrupt_keys.append(key)
            return False, None

    def put(self, key: str, spec: Dict[str, Any], result: Any) -> None:
        """Persist one completed run atomically.

        The temp file is created with ``O_EXCL``, so two writers can
        never interleave bytes; losing the creation race to a concurrent
        runtime computing the same key is *benign* (content-addressed
        entries are equivalent) and is counted in :attr:`races`, not
        raised.
        """
        path = self._path(key)
        # Serialize first: a TypeError (non-JSON result — something a
        # cache hit couldn't return) must not leave a temp file behind.
        payload = canonical_json({"spec": spec, "result": result})
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            # A concurrent writer (same pid namespace, e.g. another
            # thread, or a stale temp from a crashed twin) owns the temp:
            # yield — the winner's entry answers future gets.
            self.races += 1
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path tidy-up
                tmp.unlink(missing_ok=True)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def cache_from_env(env: Optional[dict] = None) -> Optional[ResultCache]:
    """Cache configured by ``REPRO_CACHE_DIR``, or None when unset."""
    env = os.environ if env is None else env
    root = env.get("REPRO_CACHE_DIR")
    return ResultCache(root) if root else None
