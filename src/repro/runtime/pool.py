"""Process-pool experiment runtime with deterministic merging.

The paper's §5 figures are sweeps of *independent* (scheme, seed, config)
runs — each builds its own :class:`~repro.sim.Simulator` and shares no
state with its neighbours — so they parallelise perfectly across cores.
:class:`Runtime` fans a list of :class:`~repro.runtime.spec.RunSpec` out
over a ``concurrent.futures.ProcessPoolExecutor`` and merges results back
**in submission order**, never completion order; callers submit cells
seed-major, so merged output is seed-ordered and byte-identical to what a
serial loop produces (every result, from any path, passes through the
same canonical-JSON normalisation — see :mod:`repro.runtime.spec`).

An optional :class:`~repro.runtime.cache.ResultCache` short-circuits
specs whose content hash already has a stored result, making a re-run of
a figure after an unrelated code change free.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

from .cache import ResultCache, cache_from_env
from .spec import RunSpec


def _execute(fn: str, kwargs: dict) -> Any:
    """Pool-worker entry point (module-level: must be picklable)."""
    return RunSpec(fn, kwargs).execute()


@dataclass
class RuntimeStats:
    """Bookkeeping of one runtime's lifetime (inspectable in tests/CLI)."""

    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    batches: List[int] = field(default_factory=list)


class Runtime:
    """Executes run specs serially (``jobs=1``) or across a process pool.

    ``jobs=None`` means one worker per CPU.  ``cache`` may be a
    :class:`ResultCache`, a directory path, or None (no caching).
    The serial path executes specs through exactly the same
    resolve-call-canonicalize pipeline as a pool worker, so switching
    ``jobs`` can never change results — only wall-clock time.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[object] = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = jobs
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.stats = RuntimeStats()

    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> "Runtime":
        """``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` configured runtime."""
        env = os.environ if env is None else env
        jobs_raw = env.get("REPRO_JOBS")
        jobs = int(jobs_raw) if jobs_raw else 1
        return cls(jobs=jobs or None, cache=cache_from_env(env))

    # ------------------------------------------------------------------
    def map(self, specs: Iterable[RunSpec]) -> List[Any]:
        """Run every spec; results come back in spec order.

        Cache hits are filled in without executing; the remainder runs
        serially or on the pool.  Submission order is preserved end to
        end, so for seed-major spec lists the merge is seed-ordered and
        deterministic regardless of worker scheduling.
        """
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        todo: List[int] = []
        keys: List[Optional[str]] = [None] * len(specs)
        for i, spec in enumerate(specs):
            if self.cache is not None:
                keys[i] = spec.key()
                hit, value = self.cache.get(keys[i])
                if hit:
                    self.stats.cache_hits += 1
                    results[i] = value
                    continue
            todo.append(i)
        self.stats.batches.append(len(todo))
        if not todo:
            return results
        if self.jobs == 1 or len(todo) == 1:
            for i in todo:
                results[i] = specs[i].execute()
                self.stats.executed += 1
        else:
            workers = min(self.jobs, len(todo))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_execute, specs[i].fn, dict(specs[i].kwargs))
                    for i in todo
                ]
                for i, future in zip(todo, futures):
                    results[i] = future.result()
                    self.stats.executed += 1
        if self.cache is not None:
            for i in todo:
                self.cache.put(keys[i], specs[i].describe(), results[i])
                self.stats.cache_stores += 1
        return results

    def run(self, spec: RunSpec) -> Any:
        """Convenience: execute a single spec (cache-aware)."""
        return self.map([spec])[0]

    def telemetry(self) -> dict:
        """Pool/cache stats in metric-source shape (see repro.obs)."""
        stats = self.stats
        seen = stats.executed + stats.cache_hits
        return {
            "jobs": self.jobs,
            "executed": stats.executed,
            "cache_hits": stats.cache_hits,
            "cache_stores": stats.cache_stores,
            "batches": len(stats.batches),
            "hit_ratio": (stats.cache_hits / seen) if seen else 0.0,
        }


def seed_sweep(fn: str, seeds: Sequence[int], base_kwargs: dict,
               seed_param: str = "seed") -> List[RunSpec]:
    """Seed-major spec list for a multi-seed sweep of one callable."""
    return [RunSpec(fn, {**base_kwargs, seed_param: seed}) for seed in seeds]
