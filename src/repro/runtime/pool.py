"""Process-pool experiment runtime with deterministic merging.

The paper's §5 figures are sweeps of *independent* (scheme, seed, config)
runs — each builds its own :class:`~repro.sim.Simulator` and shares no
state with its neighbours — so they parallelise perfectly across cores.
:class:`Runtime` fans a list of :class:`~repro.runtime.spec.RunSpec` out
over a ``concurrent.futures.ProcessPoolExecutor`` and merges results back
**in submission order**, never completion order; callers submit cells
seed-major, so merged output is seed-ordered and byte-identical to what a
serial loop produces (every result, from any path, passes through the
same canonical-JSON normalisation — see :mod:`repro.runtime.spec`).

An optional :class:`~repro.runtime.cache.ResultCache` short-circuits
specs whose content hash already has a stored result, making a re-run of
a figure after an unrelated code change free.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .cache import ResultCache, cache_from_env
from .spec import RunSpec


def _execute(fn: str, kwargs: dict) -> Any:
    """Pool-worker entry point (module-level: must be picklable)."""
    return RunSpec(fn, kwargs).execute()


def cell_error(fn: str, kind: str, message: str, attempts: int) -> dict:
    """The structured result of a quarantined (poisoned) cell.

    Shaped like any other canonical-JSON result so it merges, orders and
    serialises normally — callers test ``is_cell_error`` instead of
    catching exceptions mid-merge.  Never cached: the next run retries.
    """
    return {"cell_error": {"fn": fn, "kind": kind,
                           "message": message, "attempts": attempts}}


def is_cell_error(result: Any) -> bool:
    """True for a :func:`cell_error` placeholder result."""
    return isinstance(result, dict) and "cell_error" in result


@dataclass
class RuntimeStats:
    """Bookkeeping of one runtime's lifetime (inspectable in tests/CLI)."""

    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    batches: List[int] = field(default_factory=list)
    #: Guarded-mode accounting (``cell_timeout_s`` / ``quarantine``).
    retries_used: int = 0
    quarantined: int = 0
    #: Pool workers that died hard (SIGKILL, OOM, ``os._exit``) — each is
    #: one ``BrokenProcessPool`` observed and one pool rebuild.
    worker_crashes: int = 0
    #: Corrupt cache entries encountered (mirrors ``ResultCache.corrupt``).
    cache_corrupt: int = 0


class Runtime:
    """Executes run specs serially (``jobs=1``) or across a process pool.

    ``jobs=None`` means one worker per CPU.  ``cache`` may be a
    :class:`ResultCache`, a directory path, or None (no caching).
    The serial path executes specs through exactly the same
    resolve-call-canonicalize pipeline as a pool worker, so switching
    ``jobs`` can never change results — only wall-clock time.

    **Guarded mode** (``cell_timeout_s`` set and/or ``quarantine=True``)
    adds poisoned-cell containment: a cell that times out, raises, or
    kills its worker is retried once (``retries``), and on repeated
    failure resolves to a structured :func:`cell_error` result instead of
    wedging the pool or aborting the merge.  A timeout tears the stuck
    worker processes down and rebuilds the pool; innocent cells that were
    in flight are re-run without consuming their retry budget.  Timeouts
    need process isolation, so the serial path enforces only the
    exception/quarantine half of the contract.  Error results are never
    cached.  Default (unguarded) behaviour is unchanged: any failure
    propagates immediately, as before.

    Worker crashes (the worker process *dies* rather than raising —
    SIGKILL, the OOM killer, ``os._exit``) have their own retry budget,
    ``crash_retries`` (defaults to ``retries``): the pool is rebuilt,
    the victim cell re-submitted, and ``stats.worker_crashes``
    incremented.  A crash is charged separately from an exception
    because re-running it is usually cheap: a *durable* cell
    (:func:`repro.recovery.cell.durable_service_cell`) resumes from its
    own latest checkpoint on the retry, so a killed worker costs one
    epoch of progress, not the whole cell.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[object] = None,
                 cell_timeout_s: Optional[float] = None,
                 retries: int = 1,
                 quarantine: bool = False,
                 crash_retries: Optional[int] = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if crash_retries is None:
            crash_retries = retries
        if crash_retries < 0:
            raise ValueError("crash_retries must be >= 0")
        self.crash_retries = crash_retries
        self.jobs = jobs
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.cell_timeout_s = cell_timeout_s
        self.retries = retries
        self.quarantine = quarantine or cell_timeout_s is not None
        self.stats = RuntimeStats()
        #: Bound by ``ObsContext.register_runtime``; when present (and its
        #: bus has a clock), corrupt cache entries emit ``cache.corrupt``.
        self.obs = None

    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> "Runtime":
        """``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` configured runtime."""
        env = os.environ if env is None else env
        jobs_raw = env.get("REPRO_JOBS")
        jobs = int(jobs_raw) if jobs_raw else 1
        return cls(jobs=jobs or None, cache=cache_from_env(env))

    # ------------------------------------------------------------------
    def map(self, specs: Iterable[RunSpec]) -> List[Any]:
        """Run every spec; results come back in spec order.

        Cache hits are filled in without executing; the remainder runs
        serially or on the pool.  Submission order is preserved end to
        end, so for seed-major spec lists the merge is seed-ordered and
        deterministic regardless of worker scheduling.
        """
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        todo: List[int] = []
        keys: List[Optional[str]] = [None] * len(specs)
        corrupt_before = self.cache.corrupt if self.cache is not None else 0
        for i, spec in enumerate(specs):
            if self.cache is not None:
                keys[i] = spec.key()
                hit, value = self.cache.get(keys[i])
                if hit:
                    self.stats.cache_hits += 1
                    results[i] = value
                    continue
            todo.append(i)
        if self.cache is not None and self.cache.corrupt > corrupt_before:
            self._note_cache_corruption(corrupt_before)
        self.stats.batches.append(len(todo))
        if not todo:
            return results
        if self.jobs == 1 or len(todo) == 1:
            if self.quarantine:
                self._run_serial_guarded(specs, todo, results)
            else:
                for i in todo:
                    results[i] = specs[i].execute()
                    self.stats.executed += 1
        else:
            workers = min(self.jobs, len(todo))
            if self.quarantine:
                self._run_pool_guarded(specs, todo, results, workers)
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(_execute, specs[i].fn,
                                    dict(specs[i].kwargs))
                        for i in todo
                    ]
                    for i, future in zip(todo, futures):
                        results[i] = future.result()
                        self.stats.executed += 1
        if self.cache is not None:
            for i in todo:
                if is_cell_error(results[i]):
                    continue  # a hit must never replay a failure
                self.cache.put(keys[i], specs[i].describe(), results[i])
                self.stats.cache_stores += 1
        return results

    # ------------------------------------------------------------------
    # Guarded execution (timeout / retry / quarantine)
    # ------------------------------------------------------------------
    def _note_cache_corruption(self, seen_before: int) -> None:
        """Surface newly-discovered corrupt cache entries as obs events."""
        new_keys = self.cache.corrupt_keys[seen_before:]
        self.stats.cache_corrupt += len(new_keys)
        obs = self.obs
        if obs is None or getattr(obs, "sim", None) is None:
            return
        from ..obs.trace import WARNING
        for key in new_keys:
            obs.bus.emit("cache.corrupt", component="runtime",
                         severity=WARNING, key=key)

    def _charge(self, attempts: Dict[int, int], i: int, spec: RunSpec,
                kind: str, message: str, results: List[Any],
                pending: List[int]) -> None:
        """Consume one attempt of cell ``i``; requeue or quarantine."""
        attempts[i] += 1
        if attempts[i] <= self.retries:
            self.stats.retries_used += 1
            pending.append(i)
        else:
            results[i] = cell_error(spec.fn, kind, message, attempts[i])
            self.stats.quarantined += 1

    def _charge_crash(self, crashes: Dict[int, int], i: int, spec: RunSpec,
                      results: List[Any], pending: List[int]) -> None:
        """Consume one *crash* attempt of cell ``i`` (its own budget).

        Crashes are charged separately from exceptions/timeouts: a cell
        whose worker was SIGKILLed is not poisoned, and if it is durable
        the retry resumes from its checkpoint rather than re-running.
        """
        self.stats.worker_crashes += 1
        crashes[i] += 1
        if crashes[i] <= self.crash_retries:
            self.stats.retries_used += 1
            pending.append(i)
        else:
            results[i] = cell_error(spec.fn, "worker_crash",
                                    "worker process died", crashes[i])
            self.stats.quarantined += 1

    def _run_serial_guarded(self, specs: Sequence[RunSpec],
                            todo: Sequence[int],
                            results: List[Any]) -> None:
        """In-process guarded path: exceptions contained, no timeouts
        (a hung cell cannot be interrupted without a worker process)."""
        attempts: Dict[int, int] = {i: 0 for i in todo}
        pending: List[int] = list(todo)
        while pending:
            i = pending.pop(0)
            try:
                results[i] = specs[i].execute()
                self.stats.executed += 1
            except Exception as exc:
                self._charge(attempts, i, specs[i], "exception",
                             f"{type(exc).__name__}: {exc}", results, pending)

    def _run_pool_guarded(self, specs: Sequence[RunSpec],
                          todo: Sequence[int], results: List[Any],
                          workers: int) -> None:
        """Pool path with containment.

        Cells are submitted in waves; completions are harvested in
        submission order with a per-cell ``result(timeout=...)``.  A
        timeout means the cell's worker is stuck, so the pool (the only
        interruption boundary ``concurrent.futures`` offers) is torn
        down: already-finished futures are harvested first, the stuck
        cell is charged an attempt, and unfinished innocents return to
        pending uncharged.  A worker that dies hard (``os._exit``,
        signal) breaks the whole pool; the cell being awaited is charged
        — attribution is imprecise for hard crashes, but every wave
        charges at least one attempt, so the loop always terminates.
        """
        attempts: Dict[int, int] = {i: 0 for i in todo}
        crashes: Dict[int, int] = {i: 0 for i in todo}
        pending: List[int] = list(todo)
        while pending:
            wave = list(pending)
            pending = []
            pool = ProcessPoolExecutor(max_workers=min(workers, len(wave)))
            futures = [
                pool.submit(_execute, specs[i].fn, dict(specs[i].kwargs))
                for i in wave
            ]
            broken = False
            for pos, (i, future) in enumerate(zip(wave, futures)):
                try:
                    results[i] = future.result(timeout=self.cell_timeout_s)
                    self.stats.executed += 1
                except _FutureTimeout:
                    # Drain finished neighbours, then kill the pool: the
                    # stuck cell is charged, unfinished innocents requeue
                    # without consuming their retry budget.
                    for j, other in zip(wave[pos + 1:], futures[pos + 1:]):
                        self._harvest_or_requeue(specs, attempts, j, other,
                                                 results, pending,
                                                 charge_failures=True)
                    self._kill_pool(pool)
                    self._charge(attempts, i, specs[i], "timeout",
                                 f"cell exceeded {self.cell_timeout_s}s",
                                 results, pending)
                    broken = True
                    break
                except BrokenProcessPool:
                    self._charge_crash(crashes, i, specs[i], results, pending)
                    for j, other in zip(wave[pos + 1:], futures[pos + 1:]):
                        self._harvest_or_requeue(specs, attempts, j, other,
                                                 results, pending,
                                                 charge_failures=True)
                    self._kill_pool(pool)
                    broken = True
                    break
                except Exception as exc:
                    self._charge(attempts, i, specs[i], "exception",
                                 f"{type(exc).__name__}: {exc}",
                                 results, pending)
            if not broken:
                pool.shutdown(wait=True)

    def _harvest_or_requeue(self, specs: Sequence[RunSpec],
                            attempts: Dict[int, int], i: int, future,
                            results: List[Any], pending: List[int],
                            charge_failures: bool = False) -> None:
        """Collect a finished future; requeue an unfinished one uncharged."""
        if future.done():
            try:
                results[i] = future.result(timeout=0)
                self.stats.executed += 1
                return
            except BrokenProcessPool:
                pass  # never started/finished: innocent, requeue below
            except Exception as exc:
                if charge_failures:
                    self._charge(attempts, i, specs[i], "exception",
                                 f"{type(exc).__name__}: {exc}",
                                 results, pending)
                    return
        pending.append(i)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Terminate worker processes and discard the executor.

        ``shutdown(wait=True)`` would block behind a stuck worker — the
        exact wedge guarded mode exists to prevent — so the workers are
        terminated first and the shutdown is non-blocking.
        """
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def run(self, spec: RunSpec) -> Any:
        """Convenience: execute a single spec (cache-aware)."""
        return self.map([spec])[0]

    def telemetry(self) -> dict:
        """Pool/cache stats in metric-source shape (see repro.obs)."""
        stats = self.stats
        seen = stats.executed + stats.cache_hits
        return {
            "jobs": self.jobs,
            "executed": stats.executed,
            "cache_hits": stats.cache_hits,
            "cache_stores": stats.cache_stores,
            "batches": len(stats.batches),
            "hit_ratio": (stats.cache_hits / seen) if seen else 0.0,
            "retries_used": stats.retries_used,
            "quarantined": stats.quarantined,
            "worker_crashes": stats.worker_crashes,
            "cache_corrupt": stats.cache_corrupt,
        }


def seed_sweep(fn: str, seeds: Sequence[int], base_kwargs: dict,
               seed_param: str = "seed") -> List[RunSpec]:
    """Seed-major spec list for a multi-seed sweep of one callable."""
    return [RunSpec(fn, {**base_kwargs, seed_param: seed}) for seed in seeds]
