"""Adversarial-tenant robustness: conformance monitoring, escalating
enforcement, and graceful vSwitch degradation (DESIGN.md §8).

AC/DC assumes guests obey the RWND the vSwitch advertises and that the
PACK/FACK feedback channel survives the path.  This package closes the
gap for tenants (or middleboxes) that don't:

* :class:`~repro.guard.monitor.ConformanceMonitor` — classifies flows
  CONFORMING → SUSPECT → VIOLATOR from windowed RWND-violation rates,
  ECN-bleaching and ACK-division anomalies, and detects feedback loss;
* :class:`~repro.guard.escalation.EscalationEngine` — graduated
  responses (slack-free policing → penalty RWND clamp → token-bucket
  quarantine) with hysteretic, seeded-deterministic decay;
* :class:`~repro.guard.watchdog.DatapathWatchdog` — sheds the
  lowest-priority flows to pass-through under ops/flow-table pressure;
* :class:`~repro.guard.guard.Guard` — the facade an
  :class:`~repro.core.acdc.AcdcVswitch` drives.
"""

from .config import GuardConfig
from .escalation import EscalationEngine, TokenBucket
from .guard import Guard
from .monitor import (
    CONFORMING,
    SUSPECT,
    VIOLATOR,
    ConformanceMonitor,
    FlowConformance,
)
from .watchdog import DatapathWatchdog

__all__ = [
    "CONFORMING",
    "ConformanceMonitor",
    "DatapathWatchdog",
    "EscalationEngine",
    "FlowConformance",
    "Guard",
    "GuardConfig",
    "SUSPECT",
    "TokenBucket",
    "VIOLATOR",
]
