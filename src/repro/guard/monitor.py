"""Per-flow conformance monitoring (tentpole part 1).

AC/DC's premise is that the vSwitch, not the guest, runs congestion
control — which only holds if the guest actually obeys the RWND the
vSwitch advertises and the feedback channel stays intact.  The monitor
watches each enforced flow for the four tenant misbehaviors the paper's
threat model leaves open:

* **RWND overruns** — data sent beyond the enforced window (the
  ``ignore_rwnd`` cheater of §5.4), measured per conformance window of
  egress data packets as a violation *rate*;
* **ECN bleaching** — the feedback channel reports bytes but never a
  single mark while the flow keeps suffering inferred losses (a receiver
  or middlebox clearing CE before the counters see it);
* **ACK division** — many ACKs each covering a small fraction of an MSS,
  inflating byte-counted window growth;
* **feedback loss** — acked bytes accumulate with no PACK/FACK report at
  all (option-stripping middlebox), which is handled by *degrading* the
  flow to local-signal-only CC rather than punishing it.

States classify as ``CONFORMING`` → ``SUSPECT`` → ``VIOLATOR``; the
:class:`~repro.guard.escalation.EscalationEngine` maps state changes to
enforcement levels.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..net.packet import SEQ_HALF, SEQ_MASK, seq_lt
from .config import GuardConfig

#: Conformance states, in escalation order.
CONFORMING = "conforming"
SUSPECT = "suspect"
VIOLATOR = "violator"

#: Window grades emitted when a conformance window closes.
CLEAN = "clean"

#: Anomaly kinds raised by the ACK-side monitor.
ANOMALY_BLEACH = "ecn_bleach"
ANOMALY_ACK_DIVISION = "ack_division"
ANOMALY_FEEDBACK_LOSS = "feedback_loss"


def state_for_level(level: int) -> str:
    if level <= 0:
        return CONFORMING
    if level == 1:
        return SUSPECT
    return VIOLATOR


class FlowConformance:
    """Guard-side per-flow state, stored at ``FlowEntry.guard_state``."""

    __slots__ = (
        "rng", "level", "state",
        # egress conformance window
        "window_packets", "window_violations", "clean_streak",
        "total_violations", "decay_deadline", "advertised_edge",
        # ACK-side signals
        "acked_since_feedback", "feedback_total", "marked_total",
        "loss_zero_mark",
        "ack_count", "ack_fragments", "fallback_active",
        # escalation artifacts
        "bucket", "saved_max_wnd", "penalty_rule",
    )

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.level = 0
        self.state = CONFORMING
        self.window_packets = 0
        self.window_violations = 0
        self.clean_streak = 0
        self.total_violations = 0
        self.decay_deadline = 0.0
        #: Serial-arithmetic max of (ack_seq + guest-visible window) over
        #: every advertisement the VM actually received; None until the
        #: first post-handshake advertisement.
        self.advertised_edge: Optional[int] = None
        self.acked_since_feedback = 0
        self.feedback_total = 0
        self.marked_total = 0
        self.loss_zero_mark = 0
        self.ack_count = 0
        self.ack_fragments = 0
        self.fallback_active = False
        self.bucket = None
        self.saved_max_wnd: Optional[int] = None
        self.penalty_rule = None


class ConformanceMonitor:
    """Classifies flows from datapath observations; no enforcement here."""

    def __init__(self, config: GuardConfig, mss: int):
        self.config = config
        self.mss = mss

    # ------------------------------------------------------------------
    # Egress data
    # ------------------------------------------------------------------
    def observe_egress(self, fc: FlowConformance, entry,
                       pkt) -> Tuple[bool, int]:
        """Account one egress data packet.

        The conformance invariant is exact, not heuristic: a conforming
        stack never sends past the highest window edge (``ack_seq`` +
        guest-visible window) the vSwitch has ever let it see — tracked
        in ``fc.advertised_edge`` by :meth:`note_advertisement`.  The
        current ``enforced_wnd`` would be wrong here: data legitimately
        in flight when the window shrinks exceeds it by up to the
        previous advertisement for an RTT or more.

        Returns ``(monitored_violation, overrun_bytes)``:
        *monitored_violation* is the slack-tolerant signal that feeds the
        violation rate; *overrun_bytes* is the zero-grace distance past
        the advertised edge (what level-1 slack-free policing drops).
        """
        edge = fc.advertised_edge
        if edge is None:
            # No post-handshake advertisement yet (first RTT of the flow,
            # or a freshly resurrected entry): nothing to hold the guest
            # against.  One RTT of blindness, by design.
            return False, 0
        over = (pkt.end_seq - edge) & SEQ_MASK
        if over == 0 or over >= SEQ_HALF:
            # At or behind the advertised edge (retransmissions included).
            fc.window_packets += 1
            return False, 0
        monitored = over > self.config.monitor_slack_segments * self.mss
        fc.window_packets += 1
        if monitored:
            fc.window_violations += 1
            fc.total_violations += 1
        return monitored, over

    @staticmethod
    def note_advertisement(fc: FlowConformance, ack_seq: int,
                           window_bytes: int) -> None:
        """Advance the advertised-edge high-water mark (serial max)."""
        edge = (ack_seq + window_bytes) & SEQ_MASK
        if fc.advertised_edge is None or seq_lt(fc.advertised_edge, edge):
            fc.advertised_edge = edge

    def close_window(self, fc: FlowConformance) -> Optional[str]:
        """Grade and reset the conformance window once it is full.

        Returns ``None`` (window not full yet), :data:`CLEAN`,
        :data:`SUSPECT` or :data:`VIOLATOR`.
        """
        if fc.window_packets < self.config.window_packets:
            return None
        rate = fc.window_violations / fc.window_packets
        fc.window_packets = 0
        fc.window_violations = 0
        if rate >= self.config.violator_violation_rate:
            return VIOLATOR
        if rate >= self.config.suspect_violation_rate:
            return SUSPECT
        return CLEAN

    # ------------------------------------------------------------------
    # Ingress ACKs
    # ------------------------------------------------------------------
    def observe_ack(self, fc: FlowConformance, verdict, total_delta: int,
                    marked_delta: int) -> List[str]:
        """Account one ACK's worth of feedback; returns raised anomalies."""
        cfg = self.config
        anomalies: List[str] = []
        fc.feedback_total += total_delta
        fc.marked_total += marked_delta
        if total_delta > 0:
            fc.acked_since_feedback = 0
        elif verdict.newly_acked > 0:
            fc.acked_since_feedback += verdict.newly_acked
            if (not fc.fallback_active
                    and fc.acked_since_feedback > cfg.feedback_loss_bytes):
                anomalies.append(ANOMALY_FEEDBACK_LOSS)
        if verdict.loss_detected and self._note_zero_mark_loss(fc):
            anomalies.append(ANOMALY_BLEACH)
        # ACK division: a run of ACKs each covering a sliver of an MSS.
        if verdict.newly_acked > 0:
            fc.ack_count += 1
            if verdict.newly_acked < self.mss * cfg.ack_division_fraction:
                fc.ack_fragments += 1
            if fc.ack_count >= cfg.window_packets:
                if fc.ack_fragments / fc.ack_count >= cfg.ack_division_rate:
                    anomalies.append(ANOMALY_ACK_DIVISION)
                fc.ack_count = 0
                fc.ack_fragments = 0
        return anomalies

    def observe_timeout(self, fc: FlowConformance) -> List[str]:
        """Account an inferred RTO (§3.1 timeout inference).

        An RTO is the strongest congestion-loss signal the vSwitch has,
        and it never rides an ACK — a flow whose marks are bleached
        builds a standing queue, inflates its RTT, and loses in bursts
        that surface here rather than through dupack inference.
        """
        return [ANOMALY_BLEACH] if self._note_zero_mark_loss(fc) else []

    def _note_zero_mark_loss(self, fc: FlowConformance) -> bool:
        """ECN bleaching: repeated congestion losses while a feedback
        channel that demonstrably works (bytes reported) has never
        reported a single marked byte.  A channel reporting nothing at
        all is the feedback-*loss* case, not bleaching."""
        if fc.feedback_total == 0 or fc.marked_total > 0:
            return False
        fc.loss_zero_mark += 1
        if fc.loss_zero_mark >= self.config.bleach_loss_events:
            fc.loss_zero_mark = 0  # re-arm: persistence keeps escalating
            return True
        return False
