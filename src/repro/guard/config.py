"""Tunables of the misbehavior-detection and degradation subsystem.

Defaults are chosen for datacenter-scale flows (jumbo-frame MSS, sub-ms
RTTs): a conformance window of a few dozen data packets reacts within a
handful of RTTs, and the decay ladder takes a multiple of that to step
back down, so a flapping cheater cannot oscillate its way past the
enforcement (hysteresis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class GuardConfig:
    """Knobs of :class:`repro.guard.Guard` (see DESIGN.md §8)."""

    # --- conformance monitor ------------------------------------------------
    #: Egress data packets per conformance window (rate denominators).
    window_packets: int = 32
    #: Violation rate that moves CONFORMING -> SUSPECT.
    suspect_violation_rate: float = 0.25
    #: Violation rate that moves straight to VIOLATOR.
    violator_violation_rate: float = 0.5
    #: Grace segments before an egress overrun counts as a violation
    #: (mirrors the policer's legitimate-excess cases).
    monitor_slack_segments: int = 2
    #: Newly-acked bytes without a single PACK/FACK report before the
    #: flow is declared feedback-dead (option stripping, §3.2 fallback).
    feedback_loss_bytes: int = 256 * 1024
    #: Inferred loss events with zero marked feedback bytes before the
    #: receiver is suspected of bleaching ECN.
    bleach_loss_events: int = 3
    #: An ACK acknowledging fewer than this fraction of an MSS counts as
    #: a division fragment (ACK-division stacks).
    ack_division_fraction: float = 0.25
    #: Fragment rate over an ACK window that raises the anomaly.
    ack_division_rate: float = 0.5

    # --- escalation ladder --------------------------------------------------
    #: Consecutive clean conformance windows required before stepping a
    #: flow's escalation level back down (hysteresis).
    clean_windows: int = 3
    #: Base of the decay timer armed at each escalation step.
    decay_base_s: float = 0.05
    #: +/- fractional jitter on decay timers, drawn from the flow's
    #: seeded stream (deterministic per seed, uncorrelated across flows).
    decay_jitter: float = 0.25
    #: Hard RWND clamp applied at the VIOLATOR level, in segments.
    penalty_wnd_segments: int = 2
    #: Token-bucket rate for quarantined flows.
    quarantine_rate_bps: float = 50e6
    #: Token-bucket burst for quarantined flows.
    quarantine_burst_bytes: int = 8 * 1460

    # --- datapath watchdog --------------------------------------------------
    #: Watchdog sampling interval (None disables the watchdog even if
    #: budgets are set).
    watchdog_interval_s: float = 0.010
    #: Flow-table pressure threshold; None = unlimited.
    max_flow_entries: Optional[int] = None
    #: Per-packet datapath operation budget (ops counter delta divided by
    #: packets processed, per watchdog interval); None = unlimited.
    max_ops_per_packet: Optional[float] = None
    #: Fraction of the budget below which shed flows are re-admitted
    #: (hysteresis between shed and unshed).
    resume_fraction: float = 0.7
    #: Fraction of enforced flows shed per over-budget watchdog tick.
    shed_step_fraction: float = 0.25

    #: Master seed for the guard's deterministic decay jitter streams.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_packets <= 0:
            raise ValueError("window_packets must be positive")
        if not 0.0 < self.suspect_violation_rate <= self.violator_violation_rate <= 1.0:
            raise ValueError("violation-rate thresholds must satisfy "
                             "0 < suspect <= violator <= 1")
        if self.clean_windows <= 0:
            raise ValueError("clean_windows must be positive")
        if self.penalty_wnd_segments <= 0:
            raise ValueError("penalty_wnd_segments must be positive")
        if self.quarantine_rate_bps <= 0:
            raise ValueError("quarantine_rate_bps must be positive")
        if not 0.0 <= self.decay_jitter < 1.0:
            raise ValueError("decay_jitter must be in [0, 1)")
        if not 0.0 < self.resume_fraction <= 1.0:
            raise ValueError("resume_fraction must be in (0, 1]")
