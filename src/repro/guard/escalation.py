"""Graduated enforcement responses (tentpole part 2).

The escalation ladder maps conformance evidence to increasingly blunt
instruments, so a conforming flow pays nothing, a briefly-misbehaving
flow is corrected, and a persistent cheater is contained:

========  ============  ==================================================
 level     state         response
========  ============  ==================================================
 0         CONFORMING    monitor only
 1         SUSPECT       slack-free policing (drop bytes beyond the
                         *encoded* enforced window, zero grace)
 2         VIOLATOR      hard RWND clamp to a penalty window, installed
                         both on the live entry and as a PolicyEngine
                         rule so mid-flow resurrections inherit it
 3         VIOLATOR      token-bucket rate quarantine on top of level 2
========  ============  ==================================================

De-escalation is hysteretic: a flow steps down one level only after
``clean_windows`` consecutive clean conformance windows *and* a decay
deadline that backs off exponentially with the level, jittered from the
flow's seeded RNG stream — deterministic for a fixed seed, uncorrelated
across flows, and immune to a cheater timing its bursts to the decay.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.policy import PolicyEngine
from .config import GuardConfig
from .monitor import FlowConformance, state_for_level

#: Highest escalation level (token-bucket quarantine).
MAX_LEVEL = 3


class TokenBucket:
    """Byte-granular token bucket for level-3 quarantine."""

    def __init__(self, rate_bps: float, burst_bytes: int, now: float):
        self.rate_bytes = rate_bps / 8.0
        self.capacity = float(burst_bytes)
        self.tokens = float(burst_bytes)
        self.last = now

    def consume(self, nbytes: int, now: float) -> bool:
        self.tokens = min(self.capacity,
                          self.tokens + (now - self.last) * self.rate_bytes)
        self.last = now
        if nbytes <= self.tokens:
            self.tokens -= nbytes
            return True
        return False


class EscalationEngine:
    """Applies and reverses enforcement levels on flow entries."""

    def __init__(self, config: GuardConfig, mss: int,
                 policy_engine: PolicyEngine, notify):
        self.config = config
        self.mss = mss
        self.policy_engine = policy_engine
        #: callback(kind, entry, **detail) into the Guard's event plumbing.
        self.notify = notify

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def escalate(self, entry, fc: FlowConformance, floor: int, now: float,
                 reason: str) -> None:
        """One step up, at least to ``floor`` (1 = suspect evidence,
        2 = violator evidence)."""
        new_level = min(MAX_LEVEL, max(floor, fc.level + 1))
        fc.clean_streak = 0
        self._arm_decay(fc, new_level, now)
        if new_level == fc.level:
            return
        old = fc.level
        self._apply(entry, fc, new_level, now)
        self.notify("guard_escalate", entry, level_from=old,
                    level_to=new_level, reason=reason, state=fc.state)

    def note_clean_window(self, entry, fc: FlowConformance,
                          now: float) -> None:
        """Hysteretic decay: one level down per sustained clean stretch."""
        fc.clean_streak += 1
        if (fc.level > 0 and fc.clean_streak >= self.config.clean_windows
                and now >= fc.decay_deadline):
            old = fc.level
            self._apply(entry, fc, fc.level - 1, now)
            fc.clean_streak = 0
            self._arm_decay(fc, fc.level, now)
            self.notify("guard_deescalate", entry, level_from=old,
                        level_to=fc.level, state=fc.state)

    def _arm_decay(self, fc: FlowConformance, level: int, now: float) -> None:
        if level <= 0:
            fc.decay_deadline = now
            return
        jitter = fc.rng.uniform(1.0 - self.config.decay_jitter,
                                1.0 + self.config.decay_jitter)
        fc.decay_deadline = (
            now + self.config.decay_base_s * (2.0 ** (level - 1)) * jitter)

    # ------------------------------------------------------------------
    # Level side effects
    # ------------------------------------------------------------------
    def _apply(self, entry, fc: FlowConformance, new_level: int,
               now: float) -> None:
        old = fc.level
        if new_level > old:
            if old < 2 <= new_level:
                self._impose_penalty(entry, fc)
            if old < 3 <= new_level:
                fc.bucket = TokenBucket(self.config.quarantine_rate_bps,
                                        self.config.quarantine_burst_bytes,
                                        now)
        else:
            if new_level < 3 <= old:
                fc.bucket = None
            if new_level < 2 <= old:
                self._lift_penalty(entry, fc)
        fc.level = new_level
        fc.state = state_for_level(new_level)

    @property
    def penalty_wnd(self) -> int:
        return self.config.penalty_wnd_segments * self.mss

    def _impose_penalty(self, entry, fc: FlowConformance) -> None:
        """Hard RWND clamp via the vSwitch CC's own cap, plus a policy rule
        so a resurrected entry (vSwitch restart) starts clamped too."""
        penalty = self.penalty_wnd
        fc.saved_max_wnd = entry.vswitch_cc.max_wnd
        entry.vswitch_cc.max_wnd = penalty
        entry.vswitch_cc.wnd = min(entry.vswitch_cc.wnd, float(penalty))
        entry.enforced_wnd = min(entry.enforced_wnd,
                                 entry.vswitch_cc.window_bytes)
        clamp = (penalty if entry.policy.max_rwnd is None
                 else min(penalty, entry.policy.max_rwnd))
        matcher = PolicyEngine.match_flow(entry.key)
        self.policy_engine.insert_rule(
            matcher, replace(entry.policy, max_rwnd=clamp))
        fc.penalty_rule = matcher

    def _lift_penalty(self, entry, fc: FlowConformance) -> None:
        if fc.saved_max_wnd is not None:
            entry.vswitch_cc.max_wnd = fc.saved_max_wnd
            fc.saved_max_wnd = None
        if fc.penalty_rule is not None:
            self.policy_engine.remove_rule(fc.penalty_rule)
            fc.penalty_rule = None
