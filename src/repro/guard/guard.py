"""The Guard facade: wires monitoring, escalation, fallback and the
watchdog into one object the :class:`~repro.core.acdc.AcdcVswitch`
drives from its datapath hooks.

Datapath contract (see ``AcdcVswitch._egress_data`` / ``_ingress_ack``):

* :meth:`on_egress_data` is called for every enforced, non-shed egress
  data packet after conntrack/marking and *before* the config policer;
  returning ``False`` drops the packet (slack-free policing at level ≥ 1,
  token-bucket quarantine at level 3).
* :meth:`on_ingress_ack` is called after the vSwitch CC update with the
  conntrack verdict and the feedback deltas; it never consumes the ACK,
  only updates conformance state and may swap the flow to the
  feedback-loss fallback CC.

All transitions are recorded twice: per-cause counts in a
:class:`~repro.metrics.collectors.FaultRecorder` (cheap assertions) and
the full ordered sequence in an
:class:`~repro.metrics.collectors.EventLog` (determinism signatures,
audit trail).  The default ledgers are the ``repro.obs`` adapters: when
the attached vSwitch carries a trace bus, every guard transition is
mirrored onto it as a ``guard.*`` event, and — when the vSwitch has a
flight recorder armed — noted into its decision ring too.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core.enforcement import encoded_window_bytes
from ..core.vswitch_cc import make_vswitch_cc
from ..metrics.collectors import EventLog, FaultRecorder
from ..obs.adapters import EventLogAdapter, FaultRecorderAdapter
from ..sim.rng import RngFactory
from .config import GuardConfig
from .escalation import EscalationEngine
from .monitor import (
    ANOMALY_ACK_DIVISION,
    ANOMALY_BLEACH,
    ANOMALY_FEEDBACK_LOSS,
    CLEAN,
    SUSPECT,
    VIOLATOR,
    ConformanceMonitor,
    FlowConformance,
)
from .watchdog import DatapathWatchdog


class Guard:
    """Adversarial-tenant protection for one AC/DC vSwitch."""

    def __init__(self, config: Optional[GuardConfig] = None,
                 recorder: Optional[FaultRecorder] = None,
                 events: Optional[EventLog] = None):
        self.config = config if config is not None else GuardConfig()
        # The recorder adapter stays bus-unbound inside the guard: its
        # counts are keyed by guard kind, and mirroring them would emit
        # them as (wrong) ``fault.inject`` events.  The *event log* is
        # what binds to the vSwitch's bus at attach().
        self.recorder = (recorder if recorder is not None
                         else FaultRecorderAdapter())
        self.events = events if events is not None else EventLogAdapter()
        self._rngs = RngFactory(self.config.seed)
        # Bound at attach() time.
        self.vswitch = None
        self.sim = None
        self.mss = 0
        self.monitor: Optional[ConformanceMonitor] = None
        self.escalation: Optional[EscalationEngine] = None
        self.watchdog: Optional[DatapathWatchdog] = None
        self.police_drops = 0
        self.quarantine_drops = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, vswitch) -> None:
        if self.vswitch is not None:
            raise RuntimeError("guard is already attached to a vSwitch")
        self.vswitch = vswitch
        self.sim = vswitch.sim
        self.mss = vswitch.mss
        bus = getattr(vswitch, "trace", None)
        if bus is not None:
            bind = getattr(self.events, "bind_bus", None)
            if bind is not None:
                bind(bus)
        self.monitor = ConformanceMonitor(self.config, self.mss)
        self.escalation = EscalationEngine(
            self.config, self.mss, vswitch.policy, self._notify)
        if (self.config.watchdog_interval_s is not None
                and (self.config.max_flow_entries is not None
                     or self.config.max_ops_per_packet is not None)):
            self.watchdog = DatapathWatchdog(self.config, vswitch,
                                             self._notify)
            self.watchdog.start()

    #: Fields :meth:`reconfigure` refuses to change live: the seed fixes
    #: the identity of the per-flow jitter streams (changing it mid-run
    #: would silently re-randomise decay timers), and the watchdog's
    #: sampling interval is captured by its periodic timer at attach.
    IMMUTABLE_FIELDS = ("seed", "watchdog_interval_s")

    def check(self, **changes) -> None:
        """Validate a hot-reload without applying it.

        The candidate config is validated as a whole via
        ``dataclasses.replace``, which re-runs ``GuardConfig.__post_init__``
        against this guard's *current* values for the untouched fields —
        so cross-field constraints are checked per guard, not in the
        abstract.  Raises ``ValueError`` on any problem; applies nothing.
        The control plane calls this on every target guard before
        applying to any (multi-host all-or-nothing).
        """
        names = {f.name for f in dataclasses.fields(self.config)}
        for name in changes:
            if name not in names:
                raise ValueError(f"unknown guard config field {name!r}")
            if name in self.IMMUTABLE_FIELDS:
                raise ValueError(
                    f"guard config field {name!r} cannot be changed live")
        dataclasses.replace(self.config, **changes)

    def reconfigure(self, **changes) -> None:
        """Hot-reload guard thresholds on the live, attached guard.

        :meth:`check` validates the whole candidate first; only then are
        the fields mutated **in place** on the shared config object, so
        the monitor / escalation / watchdog components — which hold a
        reference and read ``self.config.X`` at use time — all see the
        update atomically.  An invalid or unknown field rejects the
        entire change (never partially applied).
        """
        self.check(**changes)
        for name, value in changes.items():
            setattr(self.config, name, value)

    def _notify(self, kind: str, entry, **detail) -> None:
        self.recorder.record(kind)
        self.events.record(self.sim.now, kind, flow=entry.key, **detail)
        flight = getattr(self.vswitch, "flight", None)
        if flight is not None:
            flight.note("guard.event", entry.key, kind=kind, **detail)

    def conformance(self, entry) -> FlowConformance:
        if entry.guard_state is None:
            entry.guard_state = FlowConformance(
                self._rngs.stream(f"guard:{entry.key}"))
        return entry.guard_state

    def state_of(self, key) -> Optional[FlowConformance]:
        """Introspection: the conformance state for a flow key, if any."""
        entry = self.vswitch.table.entries.get(key)
        return entry.guard_state if entry is not None else None

    # ------------------------------------------------------------------
    # Datapath hooks
    # ------------------------------------------------------------------
    def on_egress_data(self, entry, pkt) -> bool:
        """Monitor + enforce one egress data packet; False = drop."""
        fc = self.conformance(entry)
        now = self.sim.now
        violation, strict_overrun = self.monitor.observe_egress(
            fc, entry, pkt)
        grade = self.monitor.close_window(fc)
        if grade == VIOLATOR:
            self.escalation.escalate(entry, fc, floor=2, now=now,
                                     reason="rwnd_violation_rate")
        elif grade == SUSPECT:
            self.escalation.escalate(entry, fc, floor=1, now=now,
                                     reason="rwnd_violation_rate")
        elif grade == CLEAN:
            self.escalation.note_clean_window(entry, fc, now)
        if fc.level >= 1 and strict_overrun > 0:
            # Slack-free policing: the grace the config policer extends to
            # conforming stacks is withdrawn from suspects.
            self.vswitch.ops.record("policing_check")
            self.police_drops += 1
            self._notify("guard_police_drop", entry,
                         overrun_bytes=strict_overrun, level=fc.level)
            return False
        if fc.level >= 3 and fc.bucket is not None:
            if not fc.bucket.consume(pkt.payload_len, now):
                self.quarantine_drops += 1
                self._notify("guard_quarantine_drop", entry, level=fc.level)
                return False
        return True

    def on_ingress_ack(self, entry, pkt, verdict, total_delta: int,
                       marked_delta: int) -> None:
        """Feed ACK-side signals into the monitor; may trigger fallback."""
        fc = self.conformance(entry)
        now = self.sim.now
        if not pkt.is_fack:
            # Track the window edge the VM is about to see.  This hook
            # runs before the enforcer rewrites the ACK, but the rewrite
            # only ever shrinks, so the guest-visible window is the min
            # of the original advertisement and the encoded enforced one.
            visible = pkt.advertised_window(entry.peer_wscale)
            cfg = self.vswitch.config
            if cfg.enforce and not cfg.log_only:
                visible = min(visible, encoded_window_bytes(
                    entry.enforced_wnd, entry.peer_wscale))
            self.monitor.note_advertisement(fc, pkt.ack_seq, visible)
        for anomaly in self.monitor.observe_ack(fc, verdict, total_delta,
                                                marked_delta):
            if anomaly == ANOMALY_FEEDBACK_LOSS:
                self._feedback_fallback(entry, fc)
            elif anomaly == ANOMALY_BLEACH:
                # Bleaching defeats marking itself, so policing the RWND
                # is toothless — only the penalty clamp (level 2) caps
                # what the mark-blind vSwitch CC can grow.
                self.escalation.escalate(entry, fc, floor=2, now=now,
                                         reason=anomaly)
            elif anomaly == ANOMALY_ACK_DIVISION:
                self.escalation.escalate(entry, fc, floor=1, now=now,
                                         reason=anomaly)

    def on_timeout(self, entry) -> None:
        """Inferred-RTO hook: a congestion-loss signal that never rides
        an ACK, fed to the bleach detector."""
        fc = self.conformance(entry)
        for anomaly in self.monitor.observe_timeout(fc):
            self.escalation.escalate(entry, fc, floor=2, now=self.sim.now,
                                     reason=anomaly)

    def note_advertisement(self, entry, ack_seq: int,
                           window_bytes: int) -> None:
        """Record a window edge delivered to the VM outside the ACK path
        (fabricated window updates / dupacks, §3.3)."""
        fc = self.conformance(entry)
        self.monitor.note_advertisement(
            fc, ack_seq,
            encoded_window_bytes(window_bytes, entry.peer_wscale))

    # ------------------------------------------------------------------
    # Feedback-loss fallback (graceful degradation, not punishment)
    # ------------------------------------------------------------------
    def _feedback_fallback(self, entry, fc: FlowConformance) -> None:
        """Degrade a feedback-dead flow to local-signal-only CC.

        With PACK/FACK options stripped in transit, DCTCP never sees a
        marked byte and would grow its window into standing congestion
        forever.  NewReno driven purely by conntrack's local signals
        (dupack-inferred loss, inactivity timeouts) needs no feedback
        channel, so the flow keeps being enforced — just less precisely.
        The swap is one-way: a channel that drops options once is not
        trusted again for this flow's lifetime.
        """
        old = entry.vswitch_cc
        cc = make_vswitch_cc("reno", mss=self.mss, beta=old.beta,
                             min_wnd_bytes=old.min_wnd,
                             max_wnd_bytes=old.max_wnd)
        # Start from the current operating point, not a fresh slow start.
        cc.wnd = max(float(cc.min_wnd), min(old.wnd, float(cc.max_wnd)))
        cc.ssthresh = cc.wnd
        entry.vswitch_cc = cc
        entry.enforced_wnd = min(entry.enforced_wnd, cc.window_bytes)
        fc.fallback_active = True
        fc.acked_since_feedback = 0
        self.fallbacks += 1
        self._notify("guard_feedback_fallback", entry,
                     from_algorithm=old.name, to_algorithm=cc.name)
