"""Datapath watchdog: graceful degradation under overload (tentpole part 4).

A real vSwitch under flow-table pressure or CPU overload fails in the
worst possible way: it drops packets indiscriminately, which looks like
congestion to every flow at once.  The watchdog instead *sheds load
deliberately*: when a per-packet operation budget or a flow-table size
budget is exceeded, the lowest-priority enforced flows (smallest
Equation-1 ``beta`` first) are switched to pass-through — the datapath
stops running CC/enforcement for them but keeps collecting conntrack
statistics — until the pressure falls below a hysteresis fraction of the
budget, at which point flows are re-admitted highest-priority first.

Every shed/unshed decision is emitted as a structured event so operators
(and the determinism tests) can audit exactly which flows degraded when.
"""

from __future__ import annotations

from typing import List

from ..sim.timers import PeriodicTimer
from .config import GuardConfig


class DatapathWatchdog:
    """Periodic budget check + deliberate load shedding for one vSwitch."""

    def __init__(self, config: GuardConfig, vswitch, notify):
        self.config = config
        self.vswitch = vswitch
        #: callback(kind, entry, **detail) into the Guard's event plumbing.
        self.notify = notify
        self._last_ops = 0
        self._last_packets = 0
        self.ticks = 0
        self.sheds = 0
        self.unsheds = 0
        self._timer = PeriodicTimer(vswitch.sim, config.watchdog_interval_s,
                                    self.tick)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def _ops_per_packet(self) -> float:
        ops = self.vswitch.ops
        total = ops.total()
        packets = ops.packets_egress + ops.packets_ingress
        d_ops = total - self._last_ops
        d_pkts = packets - self._last_packets
        self._last_ops = total
        self._last_packets = packets
        return d_ops / d_pkts if d_pkts > 0 else 0.0

    def tick(self) -> None:
        self.ticks += 1
        cfg = self.config
        opp = self._ops_per_packet()
        entries = len(self.vswitch.table)
        table_over = (cfg.max_flow_entries is not None
                      and entries > cfg.max_flow_entries)
        ops_over = (cfg.max_ops_per_packet is not None
                    and opp > cfg.max_ops_per_packet)
        if table_over or ops_over:
            reason = "flow_table" if table_over else "ops_budget"
            self._shed(reason, opp, entries)
            return
        table_calm = (cfg.max_flow_entries is None
                      or entries <= cfg.max_flow_entries * cfg.resume_fraction)
        ops_calm = (cfg.max_ops_per_packet is None
                    or opp <= cfg.max_ops_per_packet * cfg.resume_fraction)
        if table_calm and ops_calm:
            self._unshed(opp, entries)

    # ------------------------------------------------------------------
    def _candidates(self, shed: bool) -> List[object]:
        """Enforced entries with the given shed status, sorted so the
        lowest priority (smallest beta, then key) comes first."""
        return sorted(
            (e for e in self.vswitch.table
             if e.policy.enforced and e.shed == shed),
            key=lambda e: (e.policy.beta, e.key))

    def _step(self, n_candidates: int) -> int:
        return max(1, int(n_candidates * self.config.shed_step_fraction))

    def _shed(self, reason: str, opp: float, entries: int) -> None:
        candidates = self._candidates(shed=False)
        if not candidates:
            return
        for entry in candidates[:self._step(len(candidates))]:
            entry.shed = True
            self.sheds += 1
            self.notify("guard_shed", entry, reason=reason,
                        ops_per_packet=round(opp, 2), flow_entries=entries)

    def _unshed(self, opp: float, entries: int) -> None:
        shed = self._candidates(shed=True)
        if not shed:
            return
        # Re-admit highest priority first.
        for entry in reversed(shed[-self._step(len(shed)):]):
            entry.shed = False
            self.unsheds += 1
            self.notify("guard_unshed", entry,
                        ops_per_packet=round(opp, 2), flow_entries=entries)
