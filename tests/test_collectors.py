"""Unit tests for measurement collectors."""

import pytest

from repro.metrics import FctRecorder, RttRecorder, ThroughputMeter, WindowLogger
from repro.metrics.collectors import FlowRecord


def test_throughput_meter_series(sim):
    state = {"bytes": 0}

    def feed():
        state["bytes"] += 12_500  # 1 Mb per 10 ms = 100 Mb/s
        sim.schedule(0.01, feed)

    meter = ThroughputMeter(sim, lambda: state["bytes"], interval_s=0.1)
    meter.start()
    sim.schedule(0.0, feed)
    sim.run(until=1.0)
    assert len(meter.series) == 10
    # Steady 10 Mb/s (12.5 KB per 10 ms); per-window counts can be off by
    # one feed due to tick/feed event alignment.
    for _t, bps in meter.series[1:]:
        assert bps == pytest.approx(10e6, rel=0.15)
    assert meter.average_bps() == pytest.approx(10e6, rel=0.1)


def test_throughput_meter_start_offset(sim):
    state = {"bytes": 999}
    meter = ThroughputMeter(sim, lambda: state["bytes"], interval_s=0.1)
    meter.start()  # existing bytes must not count as throughput
    sim.run(until=0.2)
    assert all(bps == 0 for _t, bps in meter.series)


def test_throughput_meter_sample_uses_actual_elapsed(sim):
    """Regression: the rate divides by actual elapsed virtual time, not
    the configured interval — a sample delivered mid-window must not
    halve the reported rate."""
    state = {"bytes": 0}
    meter = ThroughputMeter(sim, lambda: state["bytes"], interval_s=0.1)
    meter.start()

    def early():
        state["bytes"] = 12_500
        meter._sample()  # 12.5 KB over 50 ms = 2 Mb/s

    sim.schedule(0.05, early)
    sim.run(until=0.06)
    ((t, bps),) = meter.series
    assert t == pytest.approx(0.05)
    assert bps == pytest.approx(12_500 * 8 / 0.05)


def test_throughput_meter_zero_elapsed_sample_is_skipped(sim):
    state = {"bytes": 0}
    meter = ThroughputMeter(sim, lambda: state["bytes"], interval_s=0.1)
    meter.start()

    def twice():
        state["bytes"] = 1000
        meter._sample()
        meter._sample()  # same instant: no rate, no division by zero

    sim.schedule(0.05, twice)
    sim.run(until=0.06)
    assert len(meter.series) == 1


def test_throughput_meter_stop_restart_excludes_the_gap(sim):
    """Bytes accrued while the meter is stopped never count, and the
    first post-restart window reports the true rate."""
    state = {"bytes": 0}

    def feed():
        state["bytes"] += 12_500  # 10 Mb/s at one feed per 10 ms
        sim.schedule(0.01, feed)

    meter = ThroughputMeter(sim, lambda: state["bytes"], interval_s=0.1)
    meter.start()
    sim.schedule(0.0, feed)
    sim.schedule(0.05, meter.stop)     # before the first tick
    sim.schedule(0.25, meter.start)    # 200 ms of unmetered feeding
    sim.run(until=0.56)
    assert len(meter.series) == 3      # ticks at 0.35, 0.45, 0.55
    for _t, bps in meter.series:
        assert bps == pytest.approx(10e6, rel=0.15)


def test_window_logger_acdc_and_probe(sim):
    logger = WindowLogger()
    logger.acdc_callback(("a", 1, "b", 2), 0.5, 1000)
    logger.acdc_callback(("a", 1, "b", 2), 0.6, 2000)
    assert logger.series() == [(0.5, 1000.0), (0.6, 2000.0)]


def test_window_logger_requires_key_when_ambiguous(sim):
    logger = WindowLogger()
    logger.acdc_callback(("a", 1, "b", 2), 0.5, 1000)
    logger.acdc_callback(("c", 1, "d", 2), 0.5, 1000)
    with pytest.raises(ValueError):
        logger.series()
    assert logger.series(("c", 1, "d", 2)) == [(0.5, 1000.0)]


def test_fct_recorder_lifecycle():
    rec = FctRecorder()
    record = rec.open("mice", 16_384, start=1.0)
    assert rec.completion_fraction("mice") == 0.0
    record.end = 1.5
    assert rec.fcts("mice") == [0.5]
    assert rec.completion_fraction("mice") == 1.0


def test_fct_recorder_label_prefix_filter():
    rec = FctRecorder()
    a = rec.open("mice", 1, 0.0)
    b = rec.open("background", 1, 0.0)
    a.end, b.end = 1.0, 2.0
    assert rec.fcts("mice") == [1.0]
    assert rec.fcts("background") == [2.0]
    assert len(rec.fcts("")) == 2


def test_flow_record_fct_requires_completion():
    record = FlowRecord("x", 1, 0.0)
    with pytest.raises(ValueError):
        _ = record.fct


def test_rtt_recorder_rejects_negative():
    rec = RttRecorder()
    rec.record(0.001)
    with pytest.raises(ValueError):
        rec.record(-0.001)
    assert rec.samples == [0.001]
