"""Unit tests for the Host datapath glue."""

import pytest

from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.topology import star
from repro.sim import Simulator


def test_host_requires_nic_for_output(sim):
    host = Host(sim, "lonely")
    with pytest.raises(RuntimeError):
        host.wire_out(Packet(src="lonely", dst="x", sport=1, dport=2))


def test_host_counts_packets_and_bytes(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    from repro.workloads.apps import Sink
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(10_000)
    sim.run(until=0.05)
    assert a.tx_packets > 0 and a.rx_packets > 0
    assert a.tx_bytes > 10_000         # data + headers
    assert b.rx_bytes > 10_000
    assert b.tx_packets > 0            # ACKs


def test_jitter_preserves_host_fifo_order(sim):
    """Per-packet jitter must never reorder one host's own packets."""
    host = Host(sim, "h", tx_jitter=5e-6, seed=3)
    order = []

    class Recorder:
        def enqueue(self, pkt):
            order.append((sim.now, pkt.pid))
            return True

    host.nic = Recorder()
    packets = [Packet(src="h", dst="x", sport=1, dport=2, payload_len=10)
               for _ in range(50)]
    for p in packets:
        host.wire_out(p)
    sim.run()
    times = [t for t, _ in order]
    pids = [pid for _, pid in order]
    assert times == sorted(times)
    assert pids == [p.pid for p in packets]


def test_zero_jitter_is_synchronous(sim):
    host = Host(sim, "h", tx_jitter=0.0)
    got = []

    class Recorder:
        def enqueue(self, pkt):
            got.append(pkt)
            return True

    host.nic = Recorder()
    host.wire_out(Packet(src="h", dst="x", sport=1, dport=2))
    assert got  # delivered without running the simulator


def test_vswitch_can_consume_packets(two_hosts):
    sim, topo, a, b, _sw = two_hosts

    class BlackHole:
        def egress(self, pkt):
            return None

        def ingress(self, pkt):
            return pkt

    a.attach_vswitch(BlackHole())
    conn = a.connect(b.addr, 7000)
    sim.run(until=0.05)
    assert b.rx_packets == 0  # nothing escaped the host


def test_unknown_flow_packets_ignored(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    stray = Packet(src="a-ghost", dst=b.addr, sport=9, dport=9,
                   ack=True, ack_seq=100)
    b.receive(stray)  # no listener, not a SYN: silently dropped
    assert not b.connections


def test_listener_conn_opts_applied(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    b.listen(7000, cc="vegas", wscale=3)
    conn = a.connect(b.addr, 7000)
    sim.run(until=0.01)
    server = b.connections[(b.addr, 7000, a.addr, conn.lport)]
    assert server.cc_name == "vegas"
    assert server.my_wscale == 3
