"""32-bit sequence wraparound: serial arithmetic end to end.

The vSwitch infers CC state from raw sequence numbers, so a flow that
transfers more than 4 GB (or whose ISS sits near 2^32) crosses the wrap
mid-flight.  These tests drive the conntrack, the CC gates and the
policer across the boundary with synthetic packets — simulating a 4 GB
transfer packet-by-packet would be wasteful; the arithmetic is what's
under test.
"""

from repro.core.conntrack import ConnTrack
from repro.core.dctcp_vswitch import VswitchDctcp
from repro.core.enforcement import Policer
from repro.net.packet import (
    SEQ_MASK,
    SEQ_SPACE,
    Packet,
    seq_add,
    seq_delta,
    seq_geq,
    seq_gt,
    seq_leq,
    seq_lt,
)

MSS = 1460


def _data(seq, length):
    return Packet(src="a", dst="b", sport=1, dport=2,
                  seq=seq & SEQ_MASK, payload_len=length)


def _ack(ack_seq):
    return Packet(src="b", dst="a", sport=2, dport=1, ack=True,
                  ack_seq=ack_seq & SEQ_MASK)


# ---------------------------------------------------------------------------
# Serial-arithmetic helpers
# ---------------------------------------------------------------------------
def test_serial_helpers_basics():
    assert seq_add(SEQ_MASK, 1) == 0
    assert seq_add(SEQ_SPACE - 100, 200) == 100
    assert seq_delta(100, SEQ_SPACE - 100) == 200
    assert seq_delta(SEQ_SPACE - 100, 100) == -200
    assert seq_gt(5, SEQ_SPACE - 5)
    assert seq_lt(SEQ_SPACE - 5, 5)
    assert seq_leq(7, 7) and seq_geq(7, 7)
    # Ordinary (non-wrapping) comparisons are unchanged.
    assert seq_lt(100, 200) and seq_gt(200, 100)


def test_serial_helpers_half_space_boundary():
    # Exactly half the space apart: delta is -2^31 (RFC 1982's undefined
    # zone resolves to "behind", deterministically).
    assert seq_delta(0, 1 << 31) == -(1 << 31)
    assert seq_lt(0, 1 << 31)


# ---------------------------------------------------------------------------
# ConnTrack across the wrap
# ---------------------------------------------------------------------------
def test_conntrack_tracks_across_wrap():
    ct = ConnTrack()
    iss = SEQ_SPACE - 3 * MSS  # SYN 3 segments below the wrap
    syn = Packet(src="a", dst="b", sport=1, dport=2, syn=True, seq=iss)
    ct.on_egress_syn(syn, now=0.0)
    seq = seq_add(iss, 1)
    ct.on_ingress_ack(_ack(seq), now=0.0005)  # SYN-ACK consumes the SYN
    for i in range(6):  # data crosses the wrap on the third segment
        ct.on_egress_data(_data(seq, MSS))
        seq = seq_add(seq, MSS)
    assert ct.snd_nxt == seq
    assert ct.bytes_outstanding == 6 * MSS
    verdict = ct.on_ingress_ack(_ack(seq), now=0.001)
    assert verdict.newly_acked == 6 * MSS
    assert ct.bytes_outstanding == 0
    assert ct.snd_una == seq < 6 * MSS  # numerically tiny: we wrapped


def test_conntrack_dupacks_across_wrap():
    ct = ConnTrack()
    iss = SEQ_SPACE - MSS - 1
    syn = Packet(src="a", dst="b", sport=1, dport=2, syn=True, seq=iss)
    ct.on_egress_syn(syn, now=0.0)
    seq = seq_add(iss, 1)
    for _ in range(4):
        ct.on_egress_data(_data(seq, MSS))
        seq = seq_add(seq, MSS)
    una = seq_add(iss, 1)
    ct.on_ingress_ack(_ack(una), now=0.001)  # nothing new
    for i in range(3):
        verdict = ct.on_ingress_ack(_ack(una), now=0.002 + i * 0.001)
        assert verdict.is_dupack
    assert verdict.loss_detected


def test_conntrack_cumulative_4gb_transfer():
    """Chunked 64 KB ACK clock over > 2^32 bytes: newly_acked sums to the
    full transfer with no spurious dupacks or stalls at the wrap."""
    ct = ConnTrack()
    syn = Packet(src="a", dst="b", sport=1, dport=2, syn=True, seq=0)
    ct.on_egress_syn(syn, now=0.0)
    ct.on_ingress_ack(_ack(1), now=0.0)  # SYN-ACK consumes the SYN
    chunk = 64 * 1024
    chunks = SEQ_SPACE // chunk + 16  # cross the wrap and keep going
    seq = 1
    acked_total = 0
    now = 0.0
    for i in range(chunks):
        ct.on_egress_data(_data(seq, chunk))
        seq = seq_add(seq, chunk)
        now += 1e-5
        verdict = ct.on_ingress_ack(_ack(seq), now)
        assert not verdict.is_dupack
        assert verdict.newly_acked == chunk
        acked_total += verdict.newly_acked
        assert ct.bytes_outstanding == 0
    assert acked_total == chunks * chunk > SEQ_SPACE
    assert ct.dupacks == 0
    assert ct.timeouts_inferred == 0


# ---------------------------------------------------------------------------
# vSwitch CC gates across the wrap
# ---------------------------------------------------------------------------
def test_dctcp_cut_gate_across_wrap():
    cc = VswitchDctcp(mss=MSS)
    cc.wnd = 100.0 * MSS
    una = SEQ_SPACE - 50 * MSS  # window in flight straddles the wrap
    nxt = seq_add(una, 100 * MSS)
    cc.on_ack(una, nxt, 0, MSS, MSS, loss=False)
    assert cc.cuts == 1
    # More marks while snd_una advances through the wrap: same window,
    # no further cut.
    for step in range(1, 5):
        cc.on_ack(seq_add(una, step * 20 * MSS), nxt, 0, MSS, MSS,
                  loss=False)
    assert cc.cuts == 1
    # Past the recorded cut point (beyond nxt): a new window, cut again.
    cc.on_ack(seq_add(nxt, MSS), seq_add(nxt, 50 * MSS), 0, MSS, MSS,
              loss=False)
    assert cc.cuts == 2


def test_dctcp_grows_for_flow_starting_near_wrap():
    """Lazy gate seeding: a flow whose first ACK sits just below 2^32
    must not be read as 'already cut' forever."""
    cc = VswitchDctcp(mss=MSS)
    start = cc.window_bytes
    una = SEQ_SPACE - 10 * MSS
    for i in range(20):  # unmarked ACK clock across the wrap
        una = seq_add(una, MSS)
        cc.on_ack(una, seq_add(una, 10 * MSS), MSS, MSS, 0, loss=False)
    assert cc.window_bytes > start


# ---------------------------------------------------------------------------
# Policer across the wrap
# ---------------------------------------------------------------------------
def test_policer_window_check_across_wrap():
    policer = Policer(slack_segments=0)
    una = SEQ_SPACE - 1000
    window = 3000
    inside = _data(seq_add(una, 1000), 1000)   # crosses the wrap, in-window
    beyond = _data(seq_add(una, 3500), 1000)   # past una+window
    assert policer.allow(inside, una, window, MSS)
    assert not policer.allow(beyond, una, window, MSS)
    assert policer.drops == 1
