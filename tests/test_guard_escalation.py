"""Unit tests for the escalation ladder (repro.guard.escalation)."""

import random

import pytest

from repro.core import FlowPolicy, PolicyEngine
from repro.core.vswitch_cc import make_vswitch_cc
from repro.guard import EscalationEngine, FlowConformance, GuardConfig, TokenBucket
from repro.guard.escalation import MAX_LEVEL

MSS = 1000
KEY = ("h1", 10000, "h2", 6000)


class FakeEntry:
    """The slice of FlowEntry the escalation engine touches."""

    def __init__(self):
        self.key = KEY
        self.policy = FlowPolicy()
        self.vswitch_cc = make_vswitch_cc("reno", mss=MSS)
        self.vswitch_cc.wnd = 50.0 * MSS
        self.enforced_wnd = 50 * MSS


def make(**over):
    cfg = GuardConfig(clean_windows=2, decay_base_s=1.0, decay_jitter=0.0,
                      penalty_wnd_segments=2, **over)
    policy = PolicyEngine()
    events = []

    def notify(kind, entry, **detail):
        events.append((kind, detail))

    eng = EscalationEngine(cfg, MSS, policy, notify)
    entry = FakeEntry()
    fc = FlowConformance(random.Random(0))
    return eng, entry, fc, policy, events


def test_escalate_steps_one_level_with_floor():
    eng, entry, fc, policy, events = make()
    eng.escalate(entry, fc, floor=1, now=0.0, reason="x")
    assert fc.level == 1 and fc.state == "suspect"
    # Violator-grade evidence jumps straight to the floor.
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")
    assert fc.level == 2 and fc.state == "violator"
    eng.escalate(entry, fc, floor=1, now=0.0, reason="x")
    assert fc.level == 3
    # Saturates at MAX_LEVEL, no duplicate event.
    n = len(events)
    eng.escalate(entry, fc, floor=1, now=0.0, reason="x")
    assert fc.level == MAX_LEVEL
    assert len(events) == n


def test_escalate_event_carries_transition_details():
    eng, entry, fc, policy, events = make()
    eng.escalate(entry, fc, floor=2, now=0.0, reason="rwnd_violation_rate")
    kind, detail = events[0]
    assert kind == "guard_escalate"
    assert detail == {"level_from": 0, "level_to": 2,
                      "reason": "rwnd_violation_rate", "state": "violator"}


def test_penalty_clamp_applied_at_level_2():
    eng, entry, fc, policy, events = make()
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")
    penalty = 2 * MSS
    assert entry.vswitch_cc.max_wnd == penalty
    assert entry.vswitch_cc.wnd <= penalty
    assert entry.enforced_wnd <= penalty
    # The clamp is also a first-match policy rule, so a resurrected
    # entry (vSwitch restart) starts clamped too.
    assert policy.policy_for(KEY).max_rwnd == penalty
    assert policy.policy_for(("other", 1, "flow", 2)).max_rwnd is None


def test_penalty_respects_tighter_admin_clamp():
    eng, entry, fc, policy, events = make()
    entry.policy = FlowPolicy(max_rwnd=MSS)  # admin already stricter
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")
    assert policy.policy_for(KEY).max_rwnd == MSS


def test_quarantine_bucket_created_at_level_3():
    eng, entry, fc, policy, events = make()
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")
    assert fc.bucket is None
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")
    assert fc.level == 3
    assert fc.bucket is not None


def test_deescalation_needs_streak_and_decay_deadline():
    eng, entry, fc, policy, events = make()
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")
    # Streak satisfied but deadline (decay_base * 2^(level-1) = 2 s) not.
    eng.note_clean_window(entry, fc, now=0.5)
    eng.note_clean_window(entry, fc, now=1.0)
    assert fc.level == 2
    # Deadline passed but streak was reset by nothing — still counting.
    eng.note_clean_window(entry, fc, now=3.0)
    assert fc.level == 1
    assert events[-1][0] == "guard_deescalate"


def test_deescalation_unwinds_penalty_and_rule():
    eng, entry, fc, policy, events = make()
    saved_max = entry.vswitch_cc.max_wnd
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")
    eng.escalate(entry, fc, floor=2, now=0.0, reason="x")  # level 3
    # Walk all the way back down, one level per sustained clean stretch.
    t = 100.0
    for expected in (2, 1, 0):
        for _ in range(2):  # clean_windows
            t += 10.0
            eng.note_clean_window(entry, fc, now=t)
        assert fc.level == expected
    assert fc.bucket is None
    assert entry.vswitch_cc.max_wnd == saved_max
    assert policy.policy_for(KEY).max_rwnd is None


def test_escalation_resets_clean_streak():
    eng, entry, fc, policy, events = make()
    eng.escalate(entry, fc, floor=1, now=0.0, reason="x")
    eng.note_clean_window(entry, fc, now=0.1)
    assert fc.clean_streak == 1
    eng.escalate(entry, fc, floor=1, now=0.2, reason="x")
    assert fc.clean_streak == 0


def test_decay_deadline_deterministic_per_seeded_stream():
    eng1, entry1, fc1, _, _ = make()
    eng2, entry2, fc2, _, _ = make()
    eng1.escalate(entry1, fc1, floor=2, now=0.0, reason="x")
    eng2.escalate(entry2, fc2, floor=2, now=0.0, reason="x")
    assert fc1.decay_deadline == fc2.decay_deadline


def test_token_bucket_rates_and_burst():
    bucket = TokenBucket(rate_bps=8000.0, burst_bytes=500, now=0.0)
    # 1000 bytes/s refill; burst admits 500 bytes instantly.
    assert bucket.consume(500, now=0.0)
    assert not bucket.consume(1, now=0.0)
    # After 0.1 s: 100 bytes of tokens.
    assert bucket.consume(100, now=0.1)
    assert not bucket.consume(100, now=0.1)
    # Tokens cap at the burst size.
    assert not bucket.consume(501, now=10.0)
    assert bucket.consume(500, now=10.0)
