"""Guest TCP: flow control, window scaling, clamps, pacing."""

import pytest

from repro.workloads.apps import Sink


def test_sender_respects_min_cwnd_rwnd(two_hosts):
    """A tiny receive buffer bounds the bytes in flight."""
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000, rcv_buf=4 * 1460)
    conn = a.connect(b.addr, 7000)
    conn.send_forever()
    max_seen = {"inflight": 0}
    conn.window_probe = lambda c: max_seen.__setitem__(
        "inflight", max(max_seen["inflight"], c.bytes_in_flight))
    sim.run(until=0.05)
    # rwnd encoding rounds up by < one scale unit (512 B at wscale 9).
    assert max_seen["inflight"] <= 4 * 1460 + 512


def test_rwnd_limits_throughput(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000, rcv_buf=2 * 1460)
    conn = a.connect(b.addr, 7000)
    conn.send_forever()
    sim.run(until=0.1)
    # Throughput ~ rwnd / RTT (~0.9 Gb/s at a ~25 us base RTT),
    # far below the 10 G line rate.
    assert conn.bytes_acked_total * 8 / 0.1 < 2e9


def test_ignore_rwnd_disregards_peer_window(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000, rcv_buf=4 * 1460)
    cheater = a.connect(b.addr, 7000, ignore_rwnd=True)
    cheater.send_forever()
    sim.run(until=0.05)
    assert cheater.send_window == int(cheater.cwnd)
    # It pushes far beyond the advertised 4-segment window.
    assert cheater.bytes_acked_total > 20 * 1460


def test_max_cwnd_clamp(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000, max_cwnd=5 * 1460)
    conn.send_forever()
    sim.run(until=0.1)
    assert conn.cwnd <= 5 * 1460


def test_cwnd_limited_gate_blocks_growth_when_rwnd_bound(two_hosts):
    """With a small peer window, cwnd parks near 2x the usable window
    instead of growing without bound (Linux's is_cwnd_limited)."""
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000, rcv_buf=8 * 1460)
    conn = a.connect(b.addr, 7000)
    conn.send_forever()
    sim.run(until=0.2)
    assert conn.cwnd <= 4 * 8 * 1460  # parked, not hundreds of MB


def test_pacing_rate_limits_throughput(two_hosts_jumbo):
    sim, topo, a, b, _sw = two_hosts_jumbo
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000, pacing_rate_bps=1e9)
    conn.send_forever()
    sim.run(until=0.1)
    goodput = conn.bytes_acked_total * 8 / 0.1
    assert 0.8e9 < goodput < 1.1e9


def test_sub_mss_window_does_not_deadlock(two_hosts):
    """A receive window below one MSS must still make (slow) progress."""
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000, rcv_buf=700)  # < 1 MSS
    conn = a.connect(b.addr, 7000)
    conn.send(10_000)
    sim.run(until=0.5)
    assert conn.bytes_acked_total > 0


def test_zero_window_stalls_sender(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000, rcv_buf=0)
    conn = a.connect(b.addr, 7000)
    conn.send(10_000)
    sim.run(until=0.1)
    assert conn.bytes_acked_total == 0


def test_window_probe_hook_called(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    samples = []
    conn.window_probe = lambda c: samples.append(c.cwnd)
    conn.send(100_000)
    sim.run(until=0.1)
    assert len(samples) > 10
