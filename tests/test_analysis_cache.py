"""Incremental-cache and baseline tests for the whole-program analyzer.

The cache contract: a warm rerun with nothing changed parses and checks
nothing; touching one module re-checks exactly its reverse-import
closure; findings served from cache are identical to a cold run; and
any epoch change (config, schemas, picklable set) re-checks everything
while still reusing content-hashed summaries.
"""

import textwrap

from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     write_baseline)
from repro.analysis.cache import AnalysisCache
from repro.analysis.checkers import AnalyzeConfig, analyze_paths


def write_pkg(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


_TREE = {
    "pkg/__init__.py": "",
    "pkg/a.py": """\
        def f():
            return 1
        """,
    "pkg/b.py": "from .a import f\n",
    # c carries a finding so cached-findings reuse is observable.
    "pkg/c.py": """\
        import time


        class M:
            def tick(self):
                self.t0 = time.time()
        """,
}


def _run(root, cache, select=("RL101",)):
    return analyze_paths([str(root / "pkg")],
                         AnalyzeConfig(select=select), cache=cache)


def test_warm_run_checks_nothing_and_findings_match(tmp_path):
    root = write_pkg(tmp_path, _TREE)
    cache_path = str(tmp_path / "cache.json")
    cold, cold_stats = _run(root, AnalysisCache(cache_path))
    assert cold_stats.checked == cold_stats.modules == 4
    assert [v.code for v in cold] == ["RL101"]

    warm, warm_stats = _run(root, AnalysisCache(cache_path))
    assert warm_stats.parsed == 0
    assert warm_stats.checked == 0
    assert warm_stats.from_cache == 4
    assert warm == cold


def test_touching_one_module_rechecks_its_reverse_closure(tmp_path):
    root = write_pkg(tmp_path, _TREE)
    cache_path = str(tmp_path / "cache.json")
    _run(root, AnalysisCache(cache_path))

    a = root / "pkg" / "a.py"
    a.write_text(a.read_text() + "\n# touched\n")
    findings, stats = _run(root, AnalysisCache(cache_path))
    # a changed; b imports a; __init__ and c are untouched.
    assert stats.parsed == 1
    assert stats.checked == 2
    assert stats.from_cache == 2
    assert [v.code for v in findings] == ["RL101"]


def test_epoch_change_invalidates_findings_not_summaries(tmp_path):
    root = write_pkg(tmp_path, _TREE)
    cache_path = str(tmp_path / "cache.json")
    _run(root, AnalysisCache(cache_path), select=("RL101",))

    _findings, stats = _run(root, AnalysisCache(cache_path),
                            select=("RL101", "RL104"))
    assert stats.parsed == 0          # summaries depend only on content
    assert stats.reused == 4
    assert stats.checked == 4         # findings re-derived under new epoch
    assert stats.from_cache == 0


def test_corrupt_cache_file_falls_back_to_cold(tmp_path):
    root = write_pkg(tmp_path, _TREE)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    findings, stats = _run(root, AnalysisCache(str(cache_path)))
    assert stats.checked == 4
    assert [v.code for v in findings] == ["RL101"]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
def test_baseline_absorbs_recorded_findings_but_not_new_ones(tmp_path):
    root = write_pkg(tmp_path, _TREE)
    findings, _ = _run(root, cache=None)
    assert len(findings) == 1

    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(findings, baseline_path)
    baseline = load_baseline(baseline_path)
    kept, absorbed = apply_baseline(findings, baseline)
    assert kept == [] and absorbed == 1

    # A second identical finding in the same file is NEW: the count
    # bounds how many the baseline absorbs.
    doubled = findings + findings
    kept, absorbed = apply_baseline(doubled, baseline)
    assert len(kept) == 1 and absorbed == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.json")) == {}
