"""Unit tests for Timer (lazy restart) and PeriodicTimer."""

import pytest

from repro.sim import PeriodicTimer, Simulator, Timer


@pytest.fixture
def fired():
    return []


def make_timer(sim, fired):
    return Timer(sim, lambda: fired.append(sim.now))


def test_timer_fires_once(sim, fired):
    timer = make_timer(sim, fired)
    timer.start(0.5)
    sim.run()
    assert fired == [pytest.approx(0.5)]
    assert not timer.armed


def test_timer_stop_prevents_firing(sim, fired):
    timer = make_timer(sim, fired)
    timer.start(0.5)
    timer.stop()
    sim.run()
    assert fired == []


def test_timer_restart_extends_deadline(sim, fired):
    """Re-arming to a later deadline must postpone the callback — the
    lazy-restart optimisation may keep the old heap event but it must not
    fire early."""
    timer = make_timer(sim, fired)
    timer.start(0.5)
    sim.schedule(0.4, lambda: timer.start(1.0))  # re-arm at t=0.4 to t=1.4
    sim.run()
    assert fired == [pytest.approx(1.4)]


def test_timer_restart_shortens_deadline(sim, fired):
    timer = make_timer(sim, fired)
    timer.start(2.0)
    sim.schedule(0.1, lambda: timer.start(0.1))  # earlier: t=0.2
    sim.run()
    assert fired == [pytest.approx(0.2)]


def test_timer_repeated_restarts_fire_once(sim, fired):
    """The RTO pattern: re-armed on every 'ACK'; fires only after quiet."""
    timer = make_timer(sim, fired)
    timer.start(0.3)
    for i in range(1, 10):
        sim.schedule(i * 0.1, lambda: timer.start(0.3))
    sim.run()
    assert fired == [pytest.approx(0.9 + 0.3)]


def test_timer_stop_then_start_works(sim, fired):
    timer = make_timer(sim, fired)
    timer.start(0.5)
    timer.stop()
    timer.start(0.7)
    sim.run()
    assert fired == [pytest.approx(0.7)]


def test_timer_expires_at(sim, fired):
    timer = make_timer(sim, fired)
    timer.start(1.25)
    assert timer.armed
    assert timer.expires_at == pytest.approx(1.25)
    timer.stop()
    assert timer.expires_at is None


def test_timer_callback_can_rearm(sim, fired):
    timer = Timer(sim, lambda: None)

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(0.1)

    timer._callback = cb
    timer.start(0.1)
    sim.run()
    assert fired == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)]


# ---------------------------------------------------------------------------
def test_periodic_timer_ticks(sim, fired):
    periodic = PeriodicTimer(sim, 0.25, lambda: fired.append(sim.now))
    periodic.start()
    sim.run(until=1.0)
    assert fired == [pytest.approx(x) for x in (0.25, 0.5, 0.75, 1.0)]


def test_periodic_timer_stop(sim, fired):
    periodic = PeriodicTimer(sim, 0.25, lambda: fired.append(sim.now))
    periodic.start()
    sim.schedule(0.6, periodic.stop)
    sim.run(until=2.0)
    assert len(fired) == 2
    assert not periodic.running


def test_periodic_timer_double_start_is_noop(sim, fired):
    periodic = PeriodicTimer(sim, 0.5, lambda: fired.append(sim.now))
    periodic.start()
    periodic.start()
    sim.run(until=0.5)
    assert len(fired) == 1


def test_periodic_timer_rejects_bad_interval(sim):
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)


def test_periodic_timer_stop_from_callback(sim, fired):
    periodic = PeriodicTimer(sim, 0.1, lambda: None)

    def cb():
        fired.append(sim.now)
        periodic.stop()

    periodic._callback = cb
    periodic.start()
    sim.run(until=1.0)
    assert len(fired) == 1
