"""Tests for the `python -m repro.experiments` convenience CLI."""

import json

import pytest

from repro.experiments.__main__ import EXPERIMENTS, _shorten, main


def test_list_enumerates_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)
    # Every §5 figure/table is runnable from the CLI.
    for required in ("fig01", "fig08", "table1", "fig18-19", "fig23"):
        assert required in out


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_shorten_truncates_long_lists():
    value = {"samples": list(range(5000)), "n": 1}
    short = _shorten(value, limit=10)
    assert len(short["samples"]) == 11
    assert "5000 items" in short["samples"][-1]
    assert short["n"] == 1


def test_registry_functions_are_callable():
    for name, fn in EXPERIMENTS.items():
        assert callable(fn), name
