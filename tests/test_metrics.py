"""Unit tests for statistics helpers."""

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    Ewma,
    cdf_points,
    jain_index,
    moving_average,
    percentile,
    summarize,
)
from repro.metrics.stats import _percentile_sorted


def test_percentile_basic():
    data = [1, 2, 3, 4, 5]
    assert percentile(data, 0) == 1
    assert percentile(data, 50) == 3
    assert percentile(data, 100) == 5


def test_percentile_interpolates():
    assert percentile([0, 10], 25) == pytest.approx(2.5)


def test_percentile_unsorted_input():
    assert percentile([5, 1, 3], 50) == 3


def test_percentile_single_sample():
    assert percentile([7.0], 99.9) == 7.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1], 101)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=100),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_sample_bounds(samples, p):
    value = percentile(samples, p)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2,
                max_size=50))
def test_percentile_monotone_in_p(samples):
    values = [percentile(samples, p) for p in (10, 50, 90, 99)]
    tolerance = 1e-6 * (max(samples) + 1.0)  # FP interpolation noise
    for a, b in zip(values, values[1:]):
        assert b >= a - tolerance


def test_cdf_points():
    points = cdf_points([3, 1, 2])
    assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]
    assert cdf_points([]) == []


def test_jain_index_uniform_is_one():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_index_single_hog():
    # One of N flows gets everything: index = 1/N.
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)


def test_jain_index_bounds():
    assert 0 < jain_index([1, 2, 3, 4]) <= 1.0


def test_jain_index_rejects_negative():
    with pytest.raises(ValueError):
        jain_index([-1, 2])


def test_jain_index_all_zero():
    assert jain_index([0, 0]) == 1.0


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                max_size=50))
def test_jain_index_always_in_range(values):
    index = jain_index(values)
    assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


def test_summarize_fields():
    s = summarize([1, 2, 3, 4, 5])
    assert s["count"] == 5
    assert s["min"] == 1 and s["max"] == 5
    assert s["mean"] == 3
    assert s["p50"] == 3


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_ewma_convergence():
    ewma = Ewma(gain=0.5, initial=0.0)
    for _ in range(20):
        ewma.update(10.0)
    assert ewma.value == pytest.approx(10.0, abs=0.01)


def test_ewma_gain_validation():
    with pytest.raises(ValueError):
        Ewma(gain=0.0)
    with pytest.raises(ValueError):
        Ewma(gain=1.5)


def test_moving_average_window():
    series = [(0.0, 0.0), (0.05, 10.0), (0.10, 20.0), (0.5, 100.0)]
    out = moving_average(series, window_s=0.1)
    assert out[0] == (0.0, 0.0)
    assert out[2][1] == pytest.approx((0.0 + 10 + 20) / 3)
    # Far-away point: window has slid past the early samples.
    assert out[3][1] == pytest.approx(100.0)


def test_moving_average_bad_window():
    with pytest.raises(ValueError):
        moving_average([(0, 1)], window_s=0)


def test_moving_average_rejects_non_monotonic_time():
    """Out-of-order timestamps used to corrupt the eviction window
    silently (the start pointer under/over-evicted); now they raise."""
    series = [(0.0, 1.0), (0.2, 2.0), (0.1, 3.0)]
    with pytest.raises(ValueError, match="non-decreasing"):
        moving_average(series, window_s=0.5)


def test_moving_average_allows_equal_timestamps():
    out = moving_average([(0.0, 2.0), (0.0, 4.0)], window_s=0.1)
    assert out[1][1] == pytest.approx(3.0)


def test_moving_average_boundary_point_exactly_window_old():
    """A sample exactly ``window_s`` old is still in the window: the
    eviction test is strict (< t - window), so the boundary point
    contributes to the average at t."""
    series = [(0.0, 10.0), (0.1, 20.0)]
    out = moving_average(series, window_s=0.1)
    assert out[1][1] == pytest.approx(15.0)  # both points: 0.0 kept
    # One epsilon past the boundary, the old point is evicted.
    series = [(0.0, 10.0), (0.1 + 1e-9, 20.0)]
    out = moving_average(series, window_s=0.1)
    assert out[1][1] == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# Sorted fast path + property tests against the stdlib
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=80),
       st.floats(min_value=0, max_value=100))
def test_percentile_sorted_fast_path_matches(samples, p):
    assert _percentile_sorted(sorted(samples), p) == percentile(samples, p)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                max_size=80))
def test_percentile_matches_statistics_quantiles(samples):
    """The linear-interpolation percentile agrees with the stdlib's
    inclusive quantiles at every interior percent point."""
    cuts = statistics.quantiles(samples, n=100, method="inclusive")
    tolerance = 1e-9 * (abs(max(samples)) + abs(min(samples)) + 1.0)
    for k in (1, 5, 25, 50, 75, 95, 99):
        assert percentile(samples, k) == pytest.approx(
            cuts[k - 1], abs=tolerance)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=80))
def test_cdf_points_properties(samples):
    points = cdf_points(samples)
    n = len(samples)
    assert len(points) == n
    values = [v for v, _f in points]
    fractions = [f for _v, f in points]
    assert values == sorted(samples)
    assert fractions == [(i + 1) / n for i in range(n)]
    assert fractions[-1] == 1.0
    # The CDF at the stdlib's inclusive median never exceeds the value
    # the empirical CDF assigns to the next sorted sample above it.
    if n >= 2:
        med = statistics.median(samples)
        assert min(values) <= med <= max(values)
