"""Unit tests for the datapath flight recorder (repro.obs.recorder)."""

import pytest

from repro.obs import FlightRecorder, read_jsonl

FLOW = ("s1", 10000, "r1", 5000)


class FakeSim:
    def __init__(self):
        self.now = 0.0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(FakeSim(), capacity=0)


def test_note_and_records_are_trace_shaped():
    sim = FakeSim()
    rec = FlightRecorder(sim, name="h1")
    sim.now = 0.5
    rec.note("rwnd.rewrite", FLOW, wnd_bytes=3000, rewritten=True)
    assert len(rec) == 1 and rec.noted == 1
    (record,) = rec.records()
    assert record == {"t": 0.5, "type": "rwnd.rewrite", "sev": "info",
                      "component": "h1", "flow": "s1:10000>r1:5000",
                      "wnd_bytes": 3000, "rewritten": True}


def test_ring_keeps_only_the_tail():
    rec = FlightRecorder(FakeSim(), capacity=4)
    for i in range(10):
        rec.note("flow.state", FLOW, state=str(i))
    assert len(rec) == 4 and rec.noted == 10
    assert [r["state"] for r in rec.records()] == ["6", "7", "8", "9"]


def test_clear():
    rec = FlightRecorder(FakeSim())
    rec.note("flow.state", FLOW, state="x")
    rec.clear()
    assert len(rec) == 0 and rec.records() == []
    assert rec.noted == 1  # offered count is cumulative


def test_dump_writes_jsonl_to_dir_arg(tmp_path):
    rec = FlightRecorder(FakeSim(), name="h/1")  # slash must be sanitised
    rec.note("policer.drop", FLOW, reason="window_overrun")
    path = rec.dump(dir_path=tmp_path, tag="window_overrun")
    assert path.startswith(str(tmp_path))
    assert "h-1" in path and path.endswith(".jsonl")
    (record,) = read_jsonl(path)
    assert record["type"] == "policer.drop"
    assert record["reason"] == "window_overrun"


def test_dump_honours_repro_obs_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "dumps"))
    rec = FlightRecorder(FakeSim(), name="h2")
    rec.note("flow.state", FLOW, state="restart")
    path = rec.dump()
    assert path.startswith(str(tmp_path / "dumps"))
    assert len(read_jsonl(path)) == 1


def test_dump_serials_never_collide(tmp_path):
    rec = FlightRecorder(FakeSim(), name="h3")
    rec.note("flow.state", FLOW, state="x")
    assert rec.dump(dir_path=tmp_path) != rec.dump(dir_path=tmp_path)


def test_same_named_recorders_never_overwrite_each_other(tmp_path):
    """Regression: two same-named vSwitches (e.g. two services in one
    process) dumping in the same pid/serial window used to race one
    global serial; with per-recorder serials they would collide outright
    if dump() did not O_EXCL-and-retry to a free name."""
    sim = FakeSim()
    first = FlightRecorder(sim, name="h1")
    second = FlightRecorder(sim, name="h1")
    first.note("flow.state", FLOW, state="a")
    second.note("flow.state", FLOW, state="b")
    path_a = first.dump(dir_path=tmp_path)
    path_b = second.dump(dir_path=tmp_path)
    assert path_a != path_b
    (rec_a,) = read_jsonl(path_a)
    (rec_b,) = read_jsonl(path_b)
    assert rec_a["state"] == "a" and rec_b["state"] == "b"


def test_restored_recorder_serial_reset_cannot_overwrite(tmp_path):
    """Regression: a snapshot-restored vSwitch carries its recorder's
    serial from checkpoint time; earlier incarnations' later dumps must
    survive the replayed serials."""
    import pickle

    rec = FlightRecorder(FakeSim(), name="h2")
    rec.note("flow.state", FLOW, state="pre")
    frozen = pickle.dumps(rec)           # checkpoint before any dump
    first = rec.dump(dir_path=tmp_path)  # original incarnation dumps

    restored = pickle.loads(frozen)      # serial rewinds to 0 inside
    restored.note("flow.state", FLOW, state="post")
    second = restored.dump(dir_path=tmp_path)
    assert second != first
    (kept,) = read_jsonl(first)
    assert kept["state"] == "pre"  # the original dump was not clobbered
