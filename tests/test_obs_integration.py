"""End-to-end tests for the telemetry layer on real datapaths.

Covers the acceptance path for the observability issue: a traced Fig. 9
run whose ``rwnd.rewrite`` series reproduces the vSwitch-vs-host window
overlay (and renders through ``python -m repro.obs timeline``), the
flight-recorder dump attached to an injected invariant violation, and
byte-identical telemetry across identical runs.
"""

import json

import pytest

from repro.analysis.sanitize import InvariantViolation
from repro.core import AcdcConfig, AcdcVswitch
from repro.experiments import fig09_window_tracking as fig09
from repro.net.packet import mss_for_mtu
from repro.obs import read_jsonl
from repro.obs.__main__ import main as obs_main
from repro.workloads.apps import Sink


# ---------------------------------------------------------------------------
# Traced Fig. 9: the rwnd.rewrite series IS the window overlay
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_fig09(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "fig09.jsonl"
    out = fig09.run(duration=0.05, trace_path=str(path))
    return out, str(path)


def test_traced_run_reports_trace_metadata(traced_fig09):
    out, _ = traced_fig09
    assert out["trace_events"] > 0
    assert out["trace_flow"]
    summary = out["telemetry"]["trace"]
    assert summary["recorded"] > 0
    assert summary["by_type"]["rwnd.rewrite"] > 0
    assert summary["by_type"]["flow.state"] > 0
    assert summary["emitted"] == (summary["recorded"] + summary["filtered"]
                                  + summary["sampled_out"]
                                  + summary["dropped"])
    # Engine and switch metrics rode along in the same snapshot.
    metrics = out["telemetry"]["metrics"]
    assert metrics["engine.events_processed"] > 0
    assert any(k.endswith("buffer_peak_used") for k in metrics)


def test_rwnd_rewrite_series_reproduces_the_overlay(traced_fig09):
    out, path = traced_fig09
    mss = mss_for_mtu(1500)
    records = [r for r in read_jsonl(path)
               if r["type"] == "rwnd.rewrite" and r["flow"] == out["trace_flow"]]
    assert records, "traced flow has no rwnd.rewrite events"
    # Log-only mode: windows computed on every ACK, never applied.
    assert all(r["rewritten"] is False for r in records)
    # Every WindowLogger sample of the vSwitch series appears in the
    # trace — the trace alone reconstructs Fig. 9's vSwitch curve.
    traced_wnds = {r["wnd_bytes"] for r in records}
    series_wnds = {int(round(w * mss)) for _, w in out["rwnd_series_mss"]}
    assert series_wnds <= traced_wnds
    # The guest's half of the overlay is on the bus too.
    guest = [r for r in read_jsonl(path)
             if r["type"] == "flow.state" and r.get("state") == "cwnd"
             and r["flow"] == out["trace_flow"]]
    assert guest and all(r["component"] == "guest" for r in guest)


def test_timeline_renders_the_traced_flow(traced_fig09, capsys):
    out, path = traced_fig09
    assert obs_main(["timeline", path, "--flow", out["trace_flow"],
                     "--limit", "40"]) == 0
    rendered = capsys.readouterr().out
    assert "rwnd.rewrite" in rendered and "wnd_bytes=" in rendered
    assert obs_main(["summary", path]) == 0


def test_traced_runs_are_deterministic(tmp_path):
    a = fig09.run(duration=0.02, trace=True)
    b = fig09.run(duration=0.02, trace=True)
    dump = lambda r: json.dumps(r["telemetry"], sort_keys=True, default=str)
    assert dump(a) == dump(b)
    assert a["trace_events"] == b["trace_events"]


# ---------------------------------------------------------------------------
# Flight recorder: violation dumps carry the offending decision
# ---------------------------------------------------------------------------
def test_tracing_off_vswitch_has_no_obs_hot_path(two_hosts):
    sim, topo, a, b, sw = two_hosts
    vsw = AcdcVswitch(a)
    assert vsw.trace is None and vsw.obs is None and vsw.flight is None


def test_lying_rewrite_attaches_flight_dump(two_hosts, monkeypatch, tmp_path):
    from repro.core.enforcement import WindowEnforcer

    def lying_enforce(self, pkt, window_bytes, wscale):
        pkt.rwnd_field = 1
        return True

    monkeypatch.setattr(WindowEnforcer, "enforce", lying_enforce)
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
    sim, topo, a, b, sw = two_hosts
    cfg = AcdcConfig(sanitize=True, trace=True)
    for host in (a, b):
        host.attach_vswitch(AcdcVswitch(host, config=cfg))
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    with pytest.raises(InvariantViolation) as exc:
        sim.run(until=0.2)
    assert exc.value.invariant == "rwnd-roundtrip"
    # The dump path is attached, inside REPRO_OBS_DIR, and readable.
    assert exc.value.flight_dump is not None
    assert exc.value.flight_dump.startswith(str(tmp_path))
    assert "flight recorder dump" in str(exc.value)
    dump = read_jsonl(exc.value.flight_dump)
    offending = [r for r in dump if r["type"] == "rwnd.rewrite"]
    assert offending, "dump must contain the offending rewrite decision"
    assert offending[-1]["rwnd_field"] == 1  # the lie itself, on record


def test_sanitize_only_vswitch_still_dumps(two_hosts, monkeypatch, tmp_path):
    """The flight recorder arms for sanitize-only runs too (no tracing)."""
    from repro.core.enforcement import WindowEnforcer

    monkeypatch.setattr(WindowEnforcer, "enforce",
                        lambda self, pkt, wb, ws: (
                            setattr(pkt, "rwnd_field", 1) or True))
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
    sim, topo, a, b, sw = two_hosts
    cfg = AcdcConfig(sanitize=True)
    for host in (a, b):
        host.attach_vswitch(AcdcVswitch(host, config=cfg))
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    with pytest.raises(InvariantViolation) as exc:
        sim.run(until=0.2)
    assert exc.value.flight_dump is not None
    assert read_jsonl(exc.value.flight_dump)
