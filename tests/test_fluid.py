"""Fluid tier: model laws, coupling contract, fidelity vs the packet tier.

The load-bearing contracts (DESIGN.md §15):

* a zero-background hybrid run is **byte-identical** to pure-packet
  mode — same event count, same throughputs, same switch counters,
  same telemetry;
* the fluid tier is deterministic and RNG-free;
* a single fluid DCTCP class converges to the same steady state a
  packet-level DCTCP flow reaches (utilization within tolerance);
* the fluid overlay never breaks the sanitizer's packet-tier
  byte-conservation audit.
"""

import pytest

from repro.analysis import sanitize
from repro.experiments.common import DCTCP
from repro.experiments.hybrid import run_hybrid_dumbbell, run_hybrid_incast
from repro.experiments.runners import run_dumbbell
from repro.fluid import FluidFlowSpec, FluidPort, FluidTier
from repro.net.buffer import SharedBuffer
from repro.net.link import SwitchTxPort
from repro.net.red import EcnMarker
from repro.sim import Simulator
from repro.workloads.background import BackgroundFlowGroup, TierRouter

RATE = 1e9
K = 20 * 1500
DT = 1e-4


def make_fluid_port(rate=RATE, k=K, dt=DT, enabled=True):
    sim = Simulator()
    shared = SharedBuffer(9 * 1024 * 1024, dt_alpha=1.0)
    marker = EcnMarker(enabled=enabled, threshold_bytes=k)
    port = SwitchTxPort(sim, rate, 5e-6, shared, marker, queue_id=0)
    fport = FluidPort(port, shared, marker, dt=dt)
    port.attach_fluid(fport)
    return sim, shared, marker, port, fport


# ---------------------------------------------------------------------------
# Model validation
# ---------------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(ValueError):
        FluidFlowSpec("x", n_flows=0, rtt_s=1e-3)
    with pytest.raises(ValueError):
        FluidFlowSpec("x", n_flows=1, rtt_s=0.0)
    with pytest.raises(ValueError):
        FluidFlowSpec("x", n_flows=1, rtt_s=1e-3, cc="bbr")
    with pytest.raises(ValueError):
        FluidFlowSpec("x", n_flows=1, rtt_s=1e-3, mss=1460,
                      init_cwnd_bytes=100)


def test_router_modes():
    groups = (
        BackgroundFlowGroup("a", n_flows=4, rtt_s=1e-3, cc="dctcp"),
        BackgroundFlowGroup("b", n_flows=2, rtt_s=1e-3, cc="reno",
                            packet_tier=True),
    )
    pkt, fluid = TierRouter("auto").route(groups)
    assert [g.name for g in pkt] == ["b"]
    assert [s.name for s in fluid] == ["a"]
    pkt, fluid = TierRouter("packet").route(groups)
    assert len(pkt) == 2 and not fluid
    pkt, fluid = TierRouter("fluid").route(groups)
    assert not pkt and len(fluid) == 2
    with pytest.raises(ValueError):
        TierRouter("hybrid")


def test_router_ect_defaults_from_cc():
    dctcp = BackgroundFlowGroup("a", n_flows=1, rtt_s=1e-3, cc="dctcp")
    reno = BackgroundFlowGroup("b", n_flows=1, rtt_s=1e-3, cc="reno")
    assert dctcp.to_fluid_spec().ect is True
    assert reno.to_fluid_spec().ect is False


# ---------------------------------------------------------------------------
# Single-class steady state and determinism
# ---------------------------------------------------------------------------
def run_single_class(steps=5000, n_flows=1, cc="dctcp", ect=True):
    _sim, shared, _marker, _port, fport = make_fluid_port()
    fport.add_class(FluidFlowSpec("bg", n_flows=n_flows, rtt_s=1e-3,
                                  cc=cc, ect=ect, init_cwnd_bytes=1460))
    for _ in range(steps):
        fport.step(DT)
    return shared, fport


def test_single_dctcp_class_fills_the_link():
    """One fluid DCTCP flow sustains near-line-rate, queue near K."""
    steps = 5000
    shared, fport = run_single_class(steps=steps)
    cls = fport.classes[0]
    utilization = fport.delivered_bytes * 8 / (RATE * steps * DT)
    assert utilization >= 0.85
    # The DCTCP sawtooth parks the queue around K, not at the DT cap.
    assert shared.occupancy(0) <= 6 * K
    assert cls.alpha > 0.0  # marking feedback actually engaged
    assert cls.cwnd >= cls.spec.mss


def test_fluid_matches_packet_steady_state():
    """Fluid single-flow utilization within 0.2 of a packet DCTCP pair."""
    steps = 5000
    _shared, fport = run_single_class(steps=steps)
    u_fluid = fport.delivered_bytes * 8 / (RATE * steps * DT)
    pkt = run_dumbbell(DCTCP, pairs=1, duration=0.05, mtu=1500,
                       rate_bps=RATE, rtt_probe=False)
    u_packet = pkt.tputs_bps[0] / RATE
    assert abs(u_fluid - u_packet) <= 0.2


def test_fluid_is_deterministic_and_rng_free():
    import repro.sim.rng as rng_registry
    before = rng_registry.stream(0, "red.wred-drop").getstate() \
        if hasattr(rng_registry.stream(0, "red.wred-drop"), "getstate") \
        else None
    a_shared, a = run_single_class(steps=1500)
    b_shared, b = run_single_class(steps=1500)
    assert a.delivered_bytes == b.delivered_bytes
    assert a.marked_bytes == b.marked_bytes
    assert a.classes[0].cwnd == b.classes[0].cwnd
    assert a_shared.occupancy(0) == b_shared.occupancy(0)
    if before is not None:
        after = rng_registry.stream(0, "red.wred-drop").getstate()
        assert after == before  # batch WRED never consumes the RNG


def test_nonect_class_starves_under_marking():
    """The Fig. 15 trap in fluid form: non-ECT background competing with
    a DCTCP class that parks the queue above K gets WRED-dropped."""
    _sim, _shared, _marker, _port, fport = make_fluid_port()
    fport.add_class(FluidFlowSpec("dctcp", n_flows=8, rtt_s=1e-3,
                                  cc="dctcp", ect=True,
                                  init_cwnd_bytes=1460))
    fport.add_class(FluidFlowSpec("reno", n_flows=8, rtt_s=1e-3,
                                  cc="reno", ect=False,
                                  init_cwnd_bytes=1460))
    for _ in range(5000):
        fport.step(DT)
    dctcp, reno = fport.classes
    # Expected-value WRED is gentler than per-packet coin flips (the
    # drop *fraction* near K is small, while a real ramp draw kills
    # whole packets), so the fluid starvation ratio undershoots the
    # packet-tier Fig. 15 one — a documented fidelity boundary
    # (DESIGN.md §15).  The ordering must still be decisive.
    assert dctcp.delivered_bytes > 3 * reno.delivered_bytes
    assert reno.lost_bytes > 0.0


def test_disabled_marker_means_no_marks_only_dt_losses():
    _sim, _shared, _marker, _port, fport = make_fluid_port(enabled=False)
    fport.add_class(FluidFlowSpec("bg", n_flows=16, rtt_s=1e-3,
                                  cc="reno", ect=False,
                                  init_cwnd_bytes=1460))
    for _ in range(3000):
        fport.step(DT)
    assert fport.marked_bytes == 0.0
    assert fport.wred_dropped_bytes == 0.0


# ---------------------------------------------------------------------------
# Coupling hooks
# ---------------------------------------------------------------------------
def test_service_inflation_identity_when_idle():
    _sim, _shared, _marker, port, fport = make_fluid_port()
    assert fport.service_inflation() == 1.0
    assert port._serialization_time is not None
    # With arrivals, inflation is capped by the packet-share floor.
    fport.arrival_bps = RATE * 10
    from repro.fluid.coupling import MIN_PACKET_SHARE
    assert fport.service_inflation() == pytest.approx(1.0 / MIN_PACKET_SHARE)


def test_overlay_pressure_reaches_packet_wred(trap=None):
    """Fluid backlog alone pushes the composed occupancy over K, so an
    arriving ECT packet is marked even with an empty packet queue."""
    from repro.net.packet import ECN_ECT0, Packet
    sim, shared, _marker, port, fport = make_fluid_port()
    fport.add_class(FluidFlowSpec("bg", n_flows=64, rtt_s=1e-3,
                                  cc="dctcp", ect=True,
                                  init_cwnd_bytes=14600))
    fport.step(DT)  # one step: classes dump 64 x 10 MSS, overlay > K
    assert shared.occupancy(0) > K
    assert shared.queue_bytes(0) == 0
    pkt = Packet(src="a", dst="b", sport=1, dport=2, payload_len=960,
                 ecn=ECN_ECT0)
    assert port.enqueue(pkt)
    assert port.stats.marked_packets == 1


def test_tier_without_classes_schedules_nothing():
    sim = Simulator()
    tier = FluidTier(sim, dt=DT)
    from repro.net.switch import Switch
    switch = Switch(sim, "sw", ecn_enabled=True)
    switch.add_port(RATE, 5e-6)
    tier.couple(switch, 0)
    tier.start()
    assert not tier.active
    assert tier._source is None
    sim.run(until=0.01)
    assert sim.events_processed == 0


def test_tier_stepper_advances_ports():
    sim = Simulator()
    tier = FluidTier(sim, dt=DT)
    from repro.net.switch import Switch
    switch = Switch(sim, "sw", ecn_enabled=True,
                    ecn_threshold_bytes=K)
    switch.add_port(RATE, 5e-6)
    fport = tier.couple(switch, 0, classes=(
        FluidFlowSpec("bg", n_flows=4, rtt_s=1e-3, cc="dctcp",
                      init_cwnd_bytes=1460),))
    tier.start()
    sim.run(until=0.05)
    assert fport.steps == pytest.approx(0.05 / DT, abs=1)
    assert fport.delivered_bytes > 0
    assert tier.delivered_packets() == pytest.approx(
        fport.delivered_bytes / 1460)
    tier.stop()
    processed = sim.events_processed
    sim.run(until=0.06)
    assert sim.events_processed == processed  # stopped: no further ticks


# ---------------------------------------------------------------------------
# Byte-identity of zero-background hybrid runs
# ---------------------------------------------------------------------------
def run_signature(result):
    """Everything observable about a run, for exact A/B comparison."""
    topo = result.topology
    ports = {}
    for name, sw in sorted(topo.switches.items()):
        for pid, port in sorted(sw.ports.items()):
            s = port.stats
            ports[f"{name}.{pid}"] = (s.tx_packets, s.tx_bytes,
                                      s.dropped_packets, s.dropped_bytes,
                                      s.marked_packets)
    markers = {name: sw.marker.snapshot()
               for name, sw in sorted(topo.switches.items())}
    return {
        "events": result.sim.events_processed,
        "now": result.sim.now,
        "tputs": result.tputs_bps,
        "drop_rate": result.drop_rate,
        "ports": ports,
        "markers": markers,
        "telemetry": result.telemetry,
    }


def test_zero_background_hybrid_is_byte_identical():
    """Installing the coupling hooks with no fluid classes must not
    change one byte of the run: same events, throughputs, counters."""
    from repro.obs import ObsContext
    runs = []
    for inert in (False, True):
        result = run_hybrid_dumbbell(
            DCTCP, fg_pairs=2, background=(), duration=0.02,
            rate_bps=RATE, seed=0, inert_coupling=inert,
            obs=ObsContext())
        assert bool(result.fluid) == inert
        runs.append(run_signature(result))
    assert runs[0] == runs[1]
    assert runs[0]["tputs"][0] > 0  # the run actually carried traffic


def test_zero_background_incast_is_byte_identical():
    runs = []
    for inert in (False, True):
        result = run_hybrid_incast(
            DCTCP, n_senders=4, background=(), duration=0.02,
            rate_bps=RATE, seed=0, inert_coupling=inert)
        runs.append(run_signature(result))
    assert runs[0] == runs[1]


def test_hybrid_run_is_deterministic():
    sigs = []
    bg = (BackgroundFlowGroup("bg", n_flows=16, rtt_s=1e-3, cc="dctcp"),)
    for _ in range(2):
        result = run_hybrid_dumbbell(
            DCTCP, fg_pairs=1, background=bg, duration=0.02,
            rate_bps=RATE, seed=0, bg_start_at=0.002)
        sig = run_signature(result)
        sig["fluid"] = result.fluid
        sigs.append(sig)
    assert sigs[0] == sigs[1]


# ---------------------------------------------------------------------------
# Sanitizer compatibility and hybrid behaviour
# ---------------------------------------------------------------------------
def test_hybrid_with_background_passes_sanitizer():
    """The overlay must stay out of the packet-tier byte-conservation
    audit: a sanitized hybrid run with real background raises nothing."""
    bg = (BackgroundFlowGroup("bg", n_flows=24, rtt_s=1e-3, cc="dctcp"),)
    sanitize.enable(True)
    try:
        result = run_hybrid_dumbbell(
            DCTCP, fg_pairs=1, background=bg, duration=0.02,
            rate_bps=RATE, seed=0, bg_start_at=0.002)
    finally:
        sanitize.enable(None)
    assert result.fluid["active"]
    assert result.fluid["ports"][0]["delivered_bytes"] > 0


def test_background_squeezes_foreground():
    """Fluid background takes real bandwidth from the packet foreground."""
    quiet = run_hybrid_dumbbell(DCTCP, fg_pairs=1, background=(),
                                duration=0.03, rate_bps=RATE, seed=0)
    bg = (BackgroundFlowGroup("bg", n_flows=48, rtt_s=1e-3, cc="dctcp"),)
    loud = run_hybrid_dumbbell(DCTCP, fg_pairs=1, background=bg,
                               duration=0.03, rate_bps=RATE, seed=0,
                               bg_start_at=0.002)
    assert loud.tputs_bps[0] < 0.7 * quiet.tputs_bps[0]
    assert loud.tputs_bps[0] > 0  # ... but the foreground still lives


def test_packet_tier_background_rides_packets():
    bg = (BackgroundFlowGroup("bg", n_flows=2, rtt_s=1e-3, cc="dctcp",
                              packet_tier=True),)
    result = run_hybrid_dumbbell(DCTCP, fg_pairs=1, background=bg,
                                 duration=0.02, rate_bps=RATE, seed=0)
    assert len(result.flows) == 3  # 1 fg + 2 packet-tier background
    assert not result.fluid       # nothing rode the fluid tier
