"""Unit tests for the seeded RNG factory."""

from repro.sim import RngFactory


def test_same_name_same_stream():
    a = RngFactory(seed=42).stream("incast")
    b = RngFactory(seed=42).stream("incast")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    factory = RngFactory(seed=42)
    a = factory.stream("alpha")
    b = factory.stream("beta")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngFactory(seed=1).stream("x")
    b = RngFactory(seed=2).stream("x")
    assert a.random() != b.random()


def test_streams_are_independent():
    """Drawing from one stream must not perturb another."""
    factory = RngFactory(seed=7)
    fresh = RngFactory(seed=7).stream("b")
    baseline = [fresh.random() for _ in range(3)]
    a = factory.stream("a")
    for _ in range(100):
        a.random()
    b = factory.stream("b")
    assert [b.random() for _ in range(3)] == baseline


def test_jitter_bounds():
    values = RngFactory(seed=3).jitter("j", 1000, 0.5, 1.5)
    assert len(values) == 1000
    assert all(0.5 <= v < 1.5 for v in values)
