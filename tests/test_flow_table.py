"""Unit tests for the flow table (§4 lifecycle: SYN create, FIN + GC)."""

from repro.core.flow_table import FLOW_ENTRY_BYTES, FlowTable
from repro.core.policy import FlowPolicy

KEY = ("a", 1, "b", 2)
KEY2 = ("b", 2, "a", 1)


def make_table(sim, **kw):
    return FlowTable(sim, **kw)


def test_lookup_miss_and_hit(sim):
    table = make_table(sim)
    assert table.lookup(KEY) is None
    entry = table.ensure(KEY, FlowPolicy(), mss=1460)
    assert table.lookup(KEY) is entry
    assert table.lookups == 3
    assert table.hits == 1  # the ensure's internal lookup missed
    assert table.inserts == 1


def test_ensure_is_idempotent(sim):
    table = make_table(sim)
    a = table.ensure(KEY, FlowPolicy(), mss=1460)
    b = table.ensure(KEY, FlowPolicy(beta=0.5), mss=1460)
    assert a is b
    assert a.policy.beta == 1.0  # first policy wins
    assert table.inserts == 1


def test_two_directions_are_distinct_entries(sim):
    table = make_table(sim)
    table.ensure(KEY, FlowPolicy(), mss=1460)
    table.ensure(KEY2, FlowPolicy(), mss=1460)
    assert len(table) == 2


def test_remove(sim):
    table = make_table(sim)
    table.ensure(KEY, FlowPolicy(), mss=1460)
    table.remove(KEY)
    assert table.lookup(KEY) is None
    assert table.removes == 1
    table.remove(KEY)  # idempotent
    assert table.removes == 1


def test_gc_reclaims_finished_idle_flows(sim):
    table = make_table(sim, gc_interval=0.5)
    table.start_gc()
    table.ensure(KEY, FlowPolicy(), mss=1460)
    table.mark_fin(KEY)
    sim.run(until=0.6)
    assert KEY in table.entries  # not idle long enough yet (1 s grace)
    sim.run(until=2.0)
    assert KEY not in table.entries


def test_gc_keeps_active_flows(sim):
    table = make_table(sim, gc_interval=0.5)
    table.start_gc()
    entry = table.ensure(KEY, FlowPolicy(), mss=1460)
    table.mark_fin(KEY)

    def refresh():
        entry.touch(sim.now)
        sim.schedule(0.3, refresh)

    refresh()
    sim.run(until=3.0)
    assert KEY in table.entries


def test_gc_reclaims_long_idle_flows_without_fin(sim):
    table = make_table(sim, gc_interval=1.0, idle_timeout=5.0)
    table.start_gc()
    table.ensure(KEY, FlowPolicy(), mss=1460)
    sim.run(until=4.0)
    assert KEY in table.entries
    sim.run(until=7.0)
    assert KEY not in table.entries


def test_stop_gc(sim):
    table = make_table(sim, gc_interval=0.5, idle_timeout=1.0)
    table.start_gc()
    table.stop_gc()
    table.ensure(KEY, FlowPolicy(), mss=1460)
    sim.run(until=10.0)
    assert KEY in table.entries


def test_memory_accounting_matches_prototype(sim):
    table = make_table(sim)
    for i in range(10):
        table.ensure(("a", i, "b", 2), FlowPolicy(), mss=1460)
    assert table.memory_bytes() == 10 * FLOW_ENTRY_BYTES


def test_iteration(sim):
    table = make_table(sim)
    table.ensure(KEY, FlowPolicy(), mss=1460)
    table.ensure(KEY2, FlowPolicy(), mss=1460)
    assert {e.key for e in table} == {KEY, KEY2}


def test_entry_carries_all_role_state(sim):
    table = make_table(sim)
    entry = table.ensure(KEY, FlowPolicy(beta=0.5, max_rwnd=10_000), mss=1460)
    assert entry.conntrack is not None
    assert entry.vswitch_cc.beta == 0.5
    assert entry.vswitch_cc.max_wnd == 10_000
    assert entry.receiver_feedback.total_bytes == 0
    assert entry.enforcer.rewrites == 0
