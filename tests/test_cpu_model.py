"""Unit tests for the CPU-overhead cost model."""

import pytest

from repro.core.ops import OPS, OpsCounter
from repro.metrics.cpu_model import (
    DEFAULT_OP_COSTS_NS,
    TSO_GRO_FACTOR,
    CpuReport,
    cpu_percent,
    datapath_seconds,
)


def test_ops_counter_accepts_known_ops():
    ops = OpsCounter()
    ops.record("flow_lookup")
    ops.record("cc_update", 3)
    assert ops.counts["cc_update"] == 3
    assert ops.total() == 4


def test_ops_counter_rejects_typos():
    with pytest.raises(KeyError):
        OpsCounter().record("flowlookup")


def test_ops_counter_reset():
    ops = OpsCounter()
    ops.record("forward")
    ops.packets_egress = 5
    ops.reset()
    assert ops.total() == 0
    assert ops.packets_egress == 0


def test_every_op_has_a_cost():
    assert set(DEFAULT_OP_COSTS_NS) == set(OPS)


def test_datapath_seconds_amortised_by_tso():
    seconds = datapath_seconds({"flow_lookup": 1000})
    expected = 1000 * DEFAULT_OP_COSTS_NS["flow_lookup"] * 1e-9 / TSO_GRO_FACTOR
    assert seconds == pytest.approx(expected)


def test_cpu_percent_structure():
    report = cpu_percent({"flow_lookup": 1000, "forward": 1000},
                         tx_packets=10_000, rx_packets=10_000,
                         tx_bytes=10_000_000, rx_bytes=1_000_000,
                         connections=100, duration_s=1.0,
                         floor_percent=10.0)
    assert isinstance(report, CpuReport)
    assert report.total_percent == pytest.approx(
        report.floor_percent + report.stack_percent + report.datapath_percent)
    assert report.floor_percent == 10.0
    assert report.stack_percent > 0
    assert report.datapath_percent > 0


def test_cpu_percent_scales_with_duration():
    kwargs = dict(op_counts={}, tx_packets=1000, rx_packets=0,
                  tx_bytes=1_000_000, rx_bytes=0, connections=0)
    one = cpu_percent(duration_s=1.0, **kwargs)
    two = cpu_percent(duration_s=2.0, **kwargs)
    assert one.stack_percent == pytest.approx(2 * two.stack_percent)


def test_cpu_percent_connection_term():
    base = cpu_percent({}, 0, 0, 0, 0, connections=0, duration_s=1.0)
    many = cpu_percent({}, 0, 0, 0, 0, connections=10_000, duration_s=1.0)
    assert many.stack_percent > base.stack_percent


def test_cpu_percent_rejects_bad_duration():
    with pytest.raises(ValueError):
        cpu_percent({}, 0, 0, 0, 0, 0, duration_s=0)


def test_more_acdc_ops_cost_more_than_baseline():
    """The structural claim behind Fig. 11/12: AC/DC ops are a strict
    superset of the baseline's, so per equal packets it costs more — but
    only slightly."""
    baseline = {"flow_lookup": 1000, "forward": 1000}
    acdc = dict(baseline)
    acdc.update({"seq_update": 500, "cc_update": 500, "rwnd_rewrite": 500,
                 "checksum_recalc": 1000, "ecn_mark": 500})
    extra = datapath_seconds(acdc) - datapath_seconds(baseline)
    assert extra > 0
    # The extra work is well under the baseline's own cost.
    assert extra < datapath_seconds(baseline)
