"""Guest TCP: loss detection and recovery (dupacks, SACK, RTO)."""

import pytest
from hypothesis import given, strategies as st

from conftest import FaultInjector
from repro.tcp.connection import _merge_interval
from repro.workloads.apps import Sink


def lossy_transfer(two_hosts, drop_pred, nbytes=400_000, until=0.5):
    """Run a transfer with `drop_pred(pkt, idx)` applied to a's egress."""
    sim, topo, a, b, _sw = two_hosts
    injector = FaultInjector(drop_egress=drop_pred)
    a.attach_vswitch(injector)
    sink = Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(nbytes)
    sim.run(until=until)
    return conn, sink, injector


def test_single_loss_recovers_by_fast_retransmit(two_hosts):
    dropped = []

    def drop(pkt, i):
        if pkt.payload_len > 0 and not dropped and pkt.seq > 20_000:
            dropped.append(pkt.seq)
            return True
        return False

    conn, sink, _ = lossy_transfer(two_hosts, drop)
    assert sink.bytes_received == 400_000
    assert conn.fast_retransmits == 1
    assert conn.timeouts == 0
    assert not conn.in_recovery


def test_burst_loss_recovers_with_sack(two_hosts):
    """Dropping a burst of consecutive segments must not need an RTO: the
    SACK scoreboard retransmits all holes within the recovery window."""
    window = {"count": 0}

    def drop(pkt, i):
        if pkt.payload_len > 0 and 30_000 < pkt.seq < 90_000 and window["count"] < 10:
            window["count"] += 1
            return True
        return False

    conn, sink, _ = lossy_transfer(two_hosts, drop)
    assert sink.bytes_received == 400_000
    assert conn.fast_retransmits >= 1
    assert conn.timeouts == 0


def test_lost_retransmission_needs_rto(two_hosts):
    """If the retransmission itself is lost, only the RTO saves the flow."""
    # Data begins at seq 1 (the SYN consumes seq 0), so segment k starts
    # at 1 + k * MSS.
    seen = {"orig": False, "retx": 0}
    target = (1 + 10 * 1460, 1 + 11 * 1460)

    def drop(pkt, i):
        if pkt.payload_len > 0 and pkt.seq == target[0]:
            seen["retx"] += 1
            if seen["retx"] <= 2:   # original + first retransmission
                return True
        return False

    conn, sink, _ = lossy_transfer(two_hosts, drop, nbytes=100_000, until=1.0)
    assert sink.bytes_received == 100_000
    assert conn.timeouts >= 1


def test_ack_loss_is_harmless(two_hosts):
    """Cumulative ACKs cover for one another."""
    sim, topo, a, b, _sw = two_hosts
    # Drop 30% of pure ACKs leaving b.
    state = {"i": 0}

    def drop(pkt, i):
        if pkt.payload_len == 0 and pkt.ack and not pkt.syn:
            state["i"] += 1
            return state["i"] % 3 == 0
        return False

    b.attach_vswitch(FaultInjector(drop_egress=drop))
    sink = Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(300_000)
    sim.run(until=0.5)
    assert sink.bytes_received == 300_000


def test_heavy_random_loss_still_completes(two_hosts):
    import random
    rng = random.Random(4)

    def drop(pkt, i):
        return pkt.payload_len > 0 and rng.random() < 0.05

    conn, sink, _ = lossy_transfer(two_hosts, drop, nbytes=300_000, until=2.0)
    assert sink.bytes_received == 300_000


def test_retransmitted_bytes_counted(two_hosts):
    def drop(pkt, i):
        return pkt.payload_len > 0 and pkt.seq == 1 + 10 * 1460 and i < 30

    conn, sink, _ = lossy_transfer(two_hosts, drop, nbytes=100_000)
    assert conn.retransmitted_bytes >= 1460


def test_rto_backoff_grows_and_resets(two_hosts):
    """Consecutive timeouts double the RTO; a new ACK resets the backoff."""
    state = {"drops": 0}

    def drop(pkt, i):
        if pkt.payload_len > 0 and state["drops"] < 3 and pkt.seq == 0 + 1:
            state["drops"] += 1
            return True
        return False

    conn, sink, _ = lossy_transfer(two_hosts, drop, nbytes=50_000, until=2.0)
    assert sink.bytes_received == 50_000
    assert conn.backoff == 0  # reset after successful delivery


def test_fin_retransmitted_on_loss(two_hosts):
    state = {"dropped": False}

    def drop(pkt, i):
        if pkt.fin and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    sim, topo, a, b, _sw = two_hosts
    a.attach_vswitch(FaultInjector(drop_egress=drop))
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(5000)
    conn.close()
    sim.run(until=1.0)
    assert conn.state == "CLOSED"
    assert state["dropped"]


# ---------------------------------------------------------------------------
# Scoreboard interval algebra
# ---------------------------------------------------------------------------
def test_merge_interval_disjoint():
    iv = [(10, 20)]
    _merge_interval(iv, 30, 40)
    assert iv == [(10, 20), (30, 40)]


def test_merge_interval_overlapping():
    iv = [(10, 20), (30, 40)]
    _merge_interval(iv, 15, 35)
    assert iv == [(10, 40)]


def test_merge_interval_touching():
    iv = [(10, 20)]
    _merge_interval(iv, 20, 30)
    assert iv == [(10, 30)]


@given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40)),
                min_size=1, max_size=40))
def test_merge_interval_invariants(raw):
    """Result is always sorted, disjoint, and covers exactly the union."""
    intervals = []
    covered = set()
    for start, length in raw:
        end = start + length
        _merge_interval(intervals, start, end)
        covered.update(range(start, end))
        # sorted and strictly disjoint
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 < s2 or (e1 <= s2)
            assert s1 < e1
        got = set()
        for s, e in intervals:
            got.update(range(s, e))
        assert got == covered
