"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0
    assert sim.events_processed == 0


def test_schedule_relative_and_absolute(sim):
    fired = []
    sim.schedule(1.5, fired.append, "rel")
    sim.schedule_at(1.0, fired.append, "abs")
    sim.run()
    assert fired == ["abs", "rel"]
    assert sim.now == 1.5


def test_events_fire_in_time_order(sim):
    order = []
    for delay in (0.3, 0.1, 0.2):
        sim.schedule(delay, order.append, delay)
    sim.run()
    assert order == [0.1, 0.2, 0.3]


def test_same_time_events_fire_in_insertion_order(sim):
    order = []
    for tag in "abcde":
        sim.schedule_at(1.0, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_scheduling_in_the_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_is_inclusive(sim):
    fired = []
    sim.schedule_at(2.0, fired.append, "edge")
    sim.schedule_at(2.0001, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["edge"]
    assert sim.now == 2.0


def test_run_until_advances_clock_even_if_queue_drains(sim):
    sim.schedule(0.5, lambda: None)
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_late_event_survives_run_until(sim):
    fired = []
    sim.schedule_at(5.0, fired.append, "later")
    sim.run(until=1.0)
    assert fired == []
    sim.run()
    assert fired == ["later"]


def test_cancellation(sim):
    fired = []
    keep = sim.schedule(1.0, fired.append, "keep")
    drop = sim.schedule(1.0, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert drop.cancelled


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(0.1, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_max_events_limits_execution(sim):
    for i in range(10):
        sim.schedule(i * 0.1, lambda: None)
    sim.run(max_events=4)
    assert sim.events_processed == 4
    assert sim.pending() == 6


def test_step_runs_one_event(sim):
    fired = []
    sim.schedule(0.1, fired.append, 1)
    sim.schedule(0.2, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_peek_time_skips_cancelled(sim):
    first = sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    first.cancel()
    assert sim.peek_time() == pytest.approx(0.2)


def test_peek_time_empty(sim):
    assert sim.peek_time() is None


def test_clear_drops_everything(sim):
    for i in range(5):
        sim.schedule(i + 1.0, lambda: None)
    sim.clear()
    assert sim.pending() == 0
    sim.run()
    assert sim.events_processed == 0


def test_run_is_not_reentrant(sim):
    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(0.1, nested)
    sim.run()


def test_max_events_break_does_not_fast_forward_clock(sim):
    # Regression: the until fast-forward used to fire on *any* exit, so a
    # max_events break jumped the clock past still-pending events.
    for i in range(10):
        sim.schedule(0.1 * (i + 1), lambda: None)
    sim.run(until=5.0, max_events=4)
    assert sim.now == pytest.approx(0.4)
    assert sim.pending() == 6
    sim.run(until=5.0)
    assert sim.pending() == 0
    assert sim.now == 5.0


def test_max_events_break_then_strict_resume():
    # With the old fast-forward, a strict-mode resume raised ("event
    # surfaced behind the clock"); events must instead run in order.
    sim = Simulator(strict=True)
    fired = []
    for i in range(6):
        sim.schedule_at(0.1 * (i + 1), fired.append, i)
    sim.run(until=2.0, max_events=2)
    assert fired == [0, 1]
    sim.run(until=2.0)
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 2.0


def test_max_events_exhausting_queue_still_fast_forwards(sim):
    # When max_events happens to drain the queue, the until bound was
    # genuinely reached and the throughput-denominator contract holds.
    for i in range(3):
        sim.schedule(0.1 * (i + 1), lambda: None)
    sim.run(until=5.0, max_events=3)
    assert sim.now == 5.0


def test_fast_forward_skips_only_beyond_bound_events(sim):
    sim.schedule_at(7.0, lambda: None)
    sim.run(until=5.0, max_events=10)
    # The only pending event lies beyond the bound: fast-forward is safe.
    assert sim.now == 5.0


def test_heap_compaction_sheds_cancelled_corpses(sim):
    from repro.sim.engine import COMPACT_MIN_CANCELLED
    keep = [sim.schedule_at(10.0 + i, lambda: None) for i in range(4)]
    corpses = [sim.schedule_at(20.0 + i, lambda: None)
               for i in range(4 * COMPACT_MIN_CANCELLED)]
    for event in corpses:
        event.cancel()
    assert sim.heap_compactions == 0
    sim.schedule_at(1.0, lambda: None)  # push triggers the compaction check
    assert sim.heap_compactions == 1
    assert len(sim._heap) == len(keep) + 1
    assert sim.pending() == len(keep) + 1
    sim.run()
    assert sim.events_processed == len(keep) + 1


def test_heap_compaction_preserves_order_and_determinism():
    import random
    rng = random.Random(7)
    a, b = Simulator(), Simulator()
    logs = [], []
    for s, log in zip((a, b), logs):
        events = []
        for i in range(2000):
            if events and rng.random() < 0.6:
                events.pop(rng.randrange(len(events))).cancel()
            else:
                events.append(s.schedule_at(rng.uniform(0, 1), log.append, i))
        rng = random.Random(7)  # same choices for both simulators
        s.run()
    assert logs[0] == logs[1]
    assert a.heap_compactions == b.heap_compactions


def test_freelist_recycles_unreferenced_events(sim):
    for i in range(50):
        sim.schedule(0.01 * i, lambda: None)
    sim.run()
    assert len(sim._free) > 0
    # Recycled storage is reused by later schedules.
    recycled = sim._free[-1]
    event = sim.schedule(1.0, lambda: None)
    assert event is recycled
    assert not event.cancelled
    sim.run()


def test_freelist_never_recycles_held_handles(sim):
    fired = []
    held = sim.schedule(0.1, fired.append, "held")
    sim.run()
    assert fired == ["held"]
    # The handle is still referenced here, so it must not be in the pool;
    # a late cancel() on it must not defuse an unrelated future event.
    assert held not in sim._free
    other = sim.schedule(1.0, fired.append, "other")
    held.cancel()
    sim.run()
    assert fired == ["held", "other"]
    assert not other.cancelled


def test_cancelled_pending_counter_stays_exact(sim):
    events = [sim.schedule_at(1.0 + i, lambda: None) for i in range(10)]
    for event in events[:5]:
        event.cancel()
        event.cancel()  # idempotent: counted once
    assert sim._cancelled_pending == 5
    sim.run()
    assert sim._cancelled_pending == 0
    sim.clear()
    assert sim._cancelled_pending == 0


def test_determinism_across_instances():
    def build(s):
        log = []
        for i in range(100):
            s.schedule((i * 37 % 11) * 0.01, log.append, i)
        return log

    a, b = Simulator(), Simulator()
    la, lb = build(a), build(b)
    a.run()
    b.run()
    assert la == lb


# ---------------------------------------------------------------------------
# PeriodicSource: grid-aligned batch event source
# ---------------------------------------------------------------------------
def test_periodic_source_fires_on_grid(sim):
    times = []
    source = sim.schedule_periodic(0.1, lambda: times.append(sim.now))
    sim.run(until=0.55)
    assert times == [pytest.approx(0.1 * i) for i in range(6)]
    assert source.ticks == 6


def test_periodic_source_does_not_drift(sim):
    """Tick times come from start + n*interval, not accumulation: after
    many ticks of an inexact-binary interval, the clock is still the
    exact product, not a sum of rounding errors."""
    source = sim.schedule_periodic(1e-4, lambda: None)
    sim.run(until=1.0)
    assert source.ticks == 10_001
    assert sim.now == (source.ticks - 1) * 1e-4


def test_periodic_source_stop_cancels_pending(sim):
    count = [0]

    def tick():
        count[0] += 1
        if count[0] == 3:
            source.stop()

    source = sim.schedule_periodic(0.1, tick)
    sim.run()
    assert count[0] == 3
    assert source.stopped
    source.stop()  # idempotent


def test_periodic_source_start_at(sim):
    times = []
    sim.schedule_periodic(0.1, lambda: times.append(sim.now), start_at=0.25)
    sim.run(until=0.5)
    assert times == [pytest.approx(0.25), pytest.approx(0.35),
                     pytest.approx(0.45)]


def test_periodic_source_rejects_bad_args(sim):
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.0, lambda: None)
    sim.schedule(0.0, lambda: None)
    sim.run()
    sim.schedule_at(1.0, lambda: None)
    sim.run(until=1.0)
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.1, lambda: None, start_at=0.5)
