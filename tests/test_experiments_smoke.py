"""Smoke tests for the experiment plumbing at miniature scale.

The benchmarks run the full-size experiments; these only verify that the
runner/config machinery is wired correctly (fast)."""

import pytest

from repro.core import AcdcConfig
from repro.experiments.common import (
    ACDC,
    ALL_SCHEMES,
    CUBIC,
    DCTCP,
    Scheme,
    attach_vswitches,
    k_bytes_for_rate,
    switch_opts,
)
from repro.experiments.runners import RunResult, run_dumbbell, run_incast


def test_schemes_match_paper_configs():
    assert CUBIC.vswitch == "plain" and not CUBIC.switch_ecn
    assert DCTCP.host_cc == "dctcp" and DCTCP.host_ecn and DCTCP.switch_ecn
    assert ACDC.vswitch == "acdc" and ACDC.switch_ecn
    assert ACDC.host_cc == "cubic"  # "host TCP stack as CUBIC unless stated"


def test_scheme_with_host_cc():
    scheme = ACDC.with_host_cc("vegas")
    assert scheme.host_cc == "vegas" and not scheme.host_ecn
    assert scheme.vswitch == "acdc"
    dctcp_guest = ACDC.with_host_cc("dctcp")
    assert dctcp_guest.host_ecn


def test_k_bytes_scales_with_rate():
    assert k_bytes_for_rate(10e9) == 65 * 1500
    assert k_bytes_for_rate(1e9) == 20 * 1500


def test_switch_opts_reflect_scheme():
    opts = switch_opts(CUBIC)
    assert opts["ecn_enabled"] is False
    opts = switch_opts(ACDC, rate_bps=1e9)
    assert opts["ecn_enabled"] is True
    assert opts["ecn_threshold_bytes"] == 20 * 1500


def test_attach_vswitches_types(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    from repro.core import AcdcVswitch, PlainOvs
    out = attach_vswitches(CUBIC, [a])
    assert isinstance(out[a.addr], PlainOvs)
    out = attach_vswitches(ACDC, [b], acdc_config=AcdcConfig(police=True))
    assert isinstance(out[b.addr], AcdcVswitch)
    assert out[b.addr].config.police


def test_run_dumbbell_result_shape():
    result = run_dumbbell(ACDC, pairs=2, duration=0.08, mtu=9000)
    assert isinstance(result, RunResult)
    assert len(result.tputs_bps) == 2
    assert result.rtt_samples
    assert 0 < result.fairness <= 1.0
    assert result.avg_tput_bps > 1e9


def test_run_dumbbell_per_flow_stacks():
    result = run_dumbbell(CUBIC, pairs=2, duration=0.05, mtu=9000,
                          host_ccs=["vegas", "illinois"], rtt_probe=False)
    assert result.flows[0].conn.cc_name == "vegas"
    assert result.flows[1].conn.cc_name == "illinois"


def test_run_dumbbell_staggered_flows():
    result = run_dumbbell(ACDC, pairs=2, duration=0.2, mtu=9000,
                          start_times=[0.0, 0.1], stop_times=[0.2, 0.2],
                          rtt_probe=False, tput_meters=True)
    assert len(result.meters) == 2
    # The late flow moved no bytes before its start.
    early_series = result.meters[1].series
    pre_start = [v for t, v in early_series if t <= 0.1]
    assert all(v == 0 for v in pre_start)


def test_run_incast_steady_state_measurement():
    result = run_incast(ACDC, n_senders=4, duration=0.15, mtu=9000)
    assert len(result.tputs_bps) == 4
    assert result.fairness > 0.95
    # Steady-state shares sum close to the line rate.
    assert sum(result.tputs_bps) > 8e9


def test_meters_default_on_every_runner():
    # Regression: .meters was assigned ad hoc in run_dumbbell only, so
    # parking-lot/incast results raised AttributeError on access.
    from repro.experiments.runners import run_parking_lot
    incast = run_incast(CUBIC, n_senders=2, duration=0.05, mtu=9000)
    assert incast.meters == []
    lot = run_parking_lot(CUBIC, n_senders=2, duration=0.05, mtu=9000)
    assert lot.meters == []
    plain = run_dumbbell(CUBIC, pairs=2, duration=0.05, rtt_probe=False)
    assert plain.meters == []
