"""Tests for the trace-inspection CLI (python -m repro.obs)."""

import json

import pytest

from repro.obs import write_jsonl
from repro.obs.__main__ import main

RECORDS = [
    {"t": 0.001, "type": "flow.state", "sev": "info", "component": "vswitch",
     "flow": "s1:10000>r1:5000", "state": "insert"},
    {"t": 0.002, "type": "rwnd.rewrite", "sev": "info", "component": "vswitch",
     "flow": "s1:10000>r1:5000", "wnd_bytes": 3000, "rewritten": True},
    {"t": 0.003, "type": "ecn.mark", "sev": "info", "component": "vswitch",
     "flow": "s2:10001>r1:5001", "direction": "egress"},
    {"t": 0.004, "type": "flow.state", "sev": "warning", "component": "vswitch",
     "flow": "s1:10000>r1:5000", "state": "resurrect"},
    {"t": 0.005, "type": "fault.inject", "sev": "warning",
     "component": "faults", "flow": None, "cause": "loss", "n": 1},
]


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(RECORDS, path)
    return str(path)


def test_no_subcommand_is_usage_error(capsys):
    assert main([]) == 2


def test_unreadable_trace_is_io_error(tmp_path, capsys):
    assert main(["summary", str(tmp_path / "missing.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_summary(trace, capsys):
    assert main(["summary", trace]) == 0
    out = capsys.readouterr().out
    assert "5 events over [0.001000s, 0.005000s] virtual time" in out
    assert "2 flows" in out
    assert "flow.state" in out and "rwnd.rewrite" in out
    # Busiest flow first.
    assert out.index("s1:10000>r1:5000") < out.index("s2:10001>r1:5001")


def test_summary_empty_trace(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["summary", str(path)]) == 1


def test_grep_type_filter_prints_jsonl(trace, capsys):
    assert main(["grep", trace, "--type", "rwnd.rewrite"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["wnd_bytes"] == 3000


def test_grep_severity_and_time_filters(trace, capsys):
    assert main(["grep", trace, "--min-sev", "warning"]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 2
    assert main(["grep", trace, "--since", "0.003", "--until", "0.004"]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 2


def test_grep_no_match_exits_1(trace, capsys):
    assert main(["grep", trace, "--type", "sanitizer.violation"]) == 1


def test_grep_limit(trace, capsys):
    assert main(["grep", trace, "--limit", "2"]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 2


def test_timeline_defaults_to_first_flow(trace, capsys):
    assert main(["timeline", trace]) == 0
    out = capsys.readouterr().out
    assert "using first flow s1:10000>r1:5000" in out
    # Flow-scoped rows only: the s2 flow and flowless fault are excluded.
    assert "ecn.mark" not in out and "fault.inject" not in out
    assert "state=insert" in out and "rewritten=True" in out


def test_timeline_explicit_flow_substring(trace, capsys):
    assert main(["timeline", trace, "--flow", "s2:"]) == 0
    out = capsys.readouterr().out
    assert "ecn.mark" in out and "rwnd.rewrite" not in out


def test_timeline_unknown_flow_exits_1(trace, capsys):
    assert main(["timeline", trace, "--flow", "nope"]) == 1
    assert "no events for flow" in capsys.readouterr().err


def test_timeline_flowless_trace_exits_1(tmp_path, capsys):
    path = tmp_path / "flowless.jsonl"
    write_jsonl([{"t": 0.0, "type": "fault.inject", "sev": "warning",
                  "component": "faults", "flow": None, "cause": "loss"}],
                path)
    assert main(["timeline", str(path)]) == 1


def test_grep_flow_filter(trace, capsys):
    assert main(["grep", trace, "--flow", "s2:"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["type"] == "ecn.mark"


INT_RECORDS = [
    {"t": 0.010, "type": "int.report", "sev": "info", "component": "int",
     "flow": "s1:10000>recv:5000", "status": "ok", "serial": 1,
     "bottleneck": "sw-edge.p1", "q_max_bytes": 45000.0,
     "residence_s": 3.2e-4, "path": ["sw-core.p0", "sw-edge.p1"]},
    {"t": 0.012, "type": "int.report", "sev": "info", "component": "int",
     "flow": "s2:10001>recv:5000", "status": "ok", "serial": 1,
     "bottleneck": "sw-edge.p1", "q_max_bytes": 30000.0,
     "residence_s": 2.0e-4, "path": ["sw-core.p0", "sw-edge.p1"]},
    {"t": 0.013, "type": "int.path_change", "sev": "info", "component": "int",
     "flow": "s1:10000>recv:5000", "path": ["sw-core.p0", "sw-edge.p2"]},
    {"t": 0.014, "type": "int.report", "sev": "warning", "component": "int",
     "flow": "s1:10000>recv:5000", "status": "invalid_echo"},
    {"t": 0.015, "type": "int.report", "sev": "info", "component": "int",
     "flow": "s1:10000>recv:5000", "status": "ok", "serial": 2,
     "bottleneck": "sw-core.p0", "q_max_bytes": 15000.0,
     "residence_s": 1.0e-4, "path": ["sw-core.p0", "sw-edge.p2"]},
]


@pytest.fixture
def int_trace(tmp_path):
    path = tmp_path / "int.jsonl"
    write_jsonl(RECORDS + INT_RECORDS, path)
    return str(path)


def test_int_timeline_and_attribution(int_trace, capsys):
    assert main(["int", int_trace]) == 0
    out = capsys.readouterr().out
    assert "per-flow hop timeline:" in out
    assert "bottleneck=sw-edge.p1" in out
    assert "path -> ['sw-core.p0', 'sw-edge.p2']" in out
    assert "degraded: invalid_echo" in out
    assert "bottleneck attribution:" in out
    # Two of three ok reports name the edge hop; it ranks first.
    assert out.index("sw-edge.p1 ") < out.rindex("sw-core.p0 ")
    assert "66.7%" in out and "33.3%" in out
    assert "(1 degraded report(s) not attributed)" in out
    # Non-INT events (flow.state etc.) never leak into the timeline.
    assert "flow.state" not in out


def test_int_flow_filter(int_trace, capsys):
    assert main(["int", int_trace, "--flow", "s2:"]) == 0
    out = capsys.readouterr().out
    assert "s2:10001>recv:5000" in out and "s1:10000" not in out
    assert "100.0%" in out


def test_int_without_int_events_exits_1(trace, capsys):
    assert main(["int", trace]) == 1
    assert "no int.* events" in capsys.readouterr().err
