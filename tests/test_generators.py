"""Tests for the §5.2 workload orchestrators (on a small scaled star)."""

import random

import pytest

from repro.core import AcdcVswitch
from repro.metrics import FctRecorder
from repro.net.topology import star
from repro.sim import Simulator
from repro.workloads.generators import (
    ConcurrentStride,
    Shuffle,
    TraceDriven,
    start_incast,
)
from repro.workloads.traces import web_search


@pytest.fixture
def small_star():
    sim = Simulator()
    topo, hosts, switch = star(sim, 6, rate_bps=1e9, mtu=1500,
                               ecn_enabled=True, ecn_threshold_bytes=30_000)
    for h in hosts:
        h.attach_vswitch(AcdcVswitch(h))
    return sim, hosts, switch


def test_incast_generator_starts_all_flows(small_star):
    sim, hosts, switch = small_star
    flows = start_incast(sim, hosts[1:], hosts[0], size_bytes=100_000)
    sim.run(until=0.5)
    assert len(flows) == 5
    for flow in flows:
        assert flow.bytes_acked == 100_000


def test_incast_generator_jitter(small_star):
    sim, hosts, switch = small_star
    flows = start_incast(sim, hosts[1:3], hosts[0],
                         start_jitter=[0.0, 0.2])
    sim.run(until=0.1)
    assert flows[0].conn is not None
    assert flows[1].conn is None  # not started yet
    sim.run(until=0.3)
    assert flows[1].conn is not None


def test_concurrent_stride_structure(small_star):
    sim, hosts, switch = small_star
    rec = FctRecorder()
    ConcurrentStride(sim, hosts, rec, background_bytes=200_000,
                     mice_bytes=4_000, mice_interval=0.05, duration=0.2,
                     stride=2, mice_offset=3)
    sim.run(until=0.8)
    # 6 hosts x 2 background transfers, each completed once.
    assert len(rec.completed("background")) == 12
    # Mice at t≈0(stagger)..0.2 every 50 ms: >= 4 per host.
    assert len(rec.completed("mice")) >= 4 * 6
    assert rec.completion_fraction("mice") == 1.0


def test_shuffle_runs_to_completion(small_star):
    sim, hosts, switch = small_star
    rec = FctRecorder()
    shuffle = Shuffle(sim, hosts, rec, block_bytes=100_000,
                      rng=random.Random(3), fanout=2,
                      mice_bytes=4_000, mice_interval=0.05, mice_until=0.2)
    sim.run(until=2.0)
    assert shuffle.finished()
    # All-to-all: 6*5 transfers.
    assert len(rec.completed("background")) == 30


def test_shuffle_fanout_bound(small_star):
    sim, hosts, switch = small_star
    rec = FctRecorder()
    shuffle = Shuffle(sim, hosts, rec, block_bytes=50_000,
                      rng=random.Random(3), fanout=2, mice_until=0.0)
    max_active = {"n": 0}

    def watch():
        max_active["n"] = max(max_active["n"],
                              max(shuffle._active.values()))
        sim.schedule(0.001, watch)

    sim.schedule(0.0, watch)
    sim.run(until=1.0)
    assert max_active["n"] <= 2


def test_trace_driven_labels_by_size(small_star):
    sim, hosts, switch = small_star
    rec = FctRecorder()
    TraceDriven(sim, hosts, rec, web_search(scale=0.01, max_bytes=200_000),
                rng=random.Random(9), apps_per_host=2, messages_per_app=5)
    sim.run(until=2.0)
    mice = rec.completed("mice")
    elephants = rec.completed("elephant")
    assert mice and elephants
    assert all(r.size_bytes < 10_000 for r in mice)
    assert all(r.size_bytes >= 10_000 for r in elephants)
    total = len(mice) + len(elephants)
    assert total == 6 * 2 * 5  # every message completed
