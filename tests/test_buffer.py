"""Unit tests for the shared buffer with dynamic thresholding."""

import pytest
from hypothesis import given, strategies as st

from repro.net.buffer import SharedBuffer


def test_admit_and_release():
    buf = SharedBuffer(1000, dt_alpha=1.0)
    assert buf.try_admit(0, 400)
    assert buf.used == 400
    assert buf.queue_bytes(0) == 400
    buf.release(0, 400)
    assert buf.used == 0


def test_capacity_is_hard_limit():
    buf = SharedBuffer(1000, dt_alpha=100.0)
    assert buf.try_admit(0, 900)
    assert not buf.try_admit(1, 200)
    assert buf.try_admit(1, 100)


def test_dynamic_threshold_single_queue():
    """With alpha=1, one queue converges to at most half the buffer."""
    buf = SharedBuffer(1000, dt_alpha=1.0)
    admitted = 0
    for _ in range(100):
        if buf.try_admit(0, 10):
            admitted += 10
    # q <= alpha * (capacity - q)  =>  q <= 500
    assert 450 <= admitted <= 500


def test_dynamic_threshold_shrinks_under_contention():
    """A second congested queue reduces the first queue's allowance."""
    buf = SharedBuffer(1000, dt_alpha=1.0)
    while buf.try_admit(0, 10):
        pass
    q0_alone = buf.queue_bytes(0)
    buf2 = SharedBuffer(1000, dt_alpha=1.0)
    for _ in range(200):
        buf2.try_admit(0, 10)
        buf2.try_admit(1, 10)
    assert buf2.queue_bytes(0) < q0_alone


def test_threshold_formula():
    buf = SharedBuffer(1000, dt_alpha=2.0)
    assert buf.threshold() == 2000
    buf.try_admit(0, 300)
    assert buf.threshold() == pytest.approx(1400)


def test_release_more_than_held_raises():
    buf = SharedBuffer(1000)
    buf.try_admit(0, 100)
    with pytest.raises(ValueError):
        buf.release(0, 200)


def test_invalid_construction():
    with pytest.raises(ValueError):
        SharedBuffer(0)
    with pytest.raises(ValueError):
        SharedBuffer(100, dt_alpha=0)


def test_register_queue_idempotent():
    buf = SharedBuffer(100)
    buf.register_queue(3)
    buf.try_admit(3, 10)
    buf.register_queue(3)
    assert buf.queue_bytes(3) == 10


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 200),
                          st.booleans()), max_size=200))
def test_accounting_invariants(ops):
    """used == sum of queues, never negative, never above capacity."""
    buf = SharedBuffer(2000, dt_alpha=1.5)
    held = {q: [] for q in range(4)}
    for queue, size, is_admit in ops:
        if is_admit:
            if buf.try_admit(queue, size):
                held[queue].append(size)
        elif held[queue]:
            buf.release(queue, held[queue].pop())
        assert 0 <= buf.used <= buf.capacity
        assert buf.used == sum(sum(v) for v in held.values())
        for q in range(4):
            assert buf.queue_bytes(q) == sum(held[q])


# ---------------------------------------------------------------------------
# Fluid overlay composition (repro.fluid coupling; see buffer docstring)
# ---------------------------------------------------------------------------
def test_overlay_composes_into_occupancy_not_packet_accounting():
    buf = SharedBuffer(10_000, dt_alpha=1.0)
    buf.register_queue(0)
    assert buf.try_admit(0, 1_000)
    buf.set_overlay(0, 2_500)
    assert buf.occupancy(0) == 3_500
    assert buf.overlay_bytes(0) == 2_500
    # Packet-tier accounting stays packet-only (sanitizer contract).
    assert buf.queue_bytes(0) == 1_000
    assert buf.used == 1_000
    assert buf.queued_total() == 1_000
    # ... but free capacity (and with it the DT threshold) feels it.
    assert buf.free == 10_000 - 1_000 - 2_500
    assert buf.threshold() == buf.free


def test_overlay_replaces_previous_charge():
    buf = SharedBuffer(10_000)
    buf.set_overlay(3, 4_000)
    buf.set_overlay(3, 1_500)
    assert buf.overlay_total == 1_500
    assert buf.occupancy(3) == 1_500
    buf.set_overlay(3, 0)
    assert buf.overlay_total == 0
    assert buf.occupancy(3) == 0


def test_overlay_guards():
    buf = SharedBuffer(10_000)
    with pytest.raises(ValueError):
        buf.set_overlay(0, -1)
    assert buf.try_admit(0, 6_000)
    with pytest.raises(ValueError):
        buf.set_overlay(1, 5_000)  # 6000 + 5000 > capacity
    buf.set_overlay(1, 4_000)      # exactly full is fine
    assert buf.free == 0


def test_peak_used_tracks_total_occupancy():
    buf = SharedBuffer(10_000)
    buf.set_overlay(0, 3_000)
    assert buf.peak_used == 3_000
    assert buf.try_admit(1, 2_000)
    assert buf.peak_used == 5_000
    buf.set_overlay(0, 0)
    assert buf.peak_used == 5_000  # high-water mark never recedes


def test_zero_overlay_degenerates_to_packet_only():
    """With no overlay every composed reading equals its packet value
    (the byte-identity contract for zero-background hybrid runs)."""
    buf = SharedBuffer(5_000, dt_alpha=2.0)
    assert buf.try_admit(0, 700)
    assert buf.occupancy(0) == buf.queue_bytes(0) == 700
    assert buf.free == buf.capacity - buf.used
    assert buf.overlay_total == 0
