"""Unit tests for the shared buffer with dynamic thresholding."""

import pytest
from hypothesis import given, strategies as st

from repro.net.buffer import SharedBuffer


def test_admit_and_release():
    buf = SharedBuffer(1000, dt_alpha=1.0)
    assert buf.try_admit(0, 400)
    assert buf.used == 400
    assert buf.queue_bytes(0) == 400
    buf.release(0, 400)
    assert buf.used == 0


def test_capacity_is_hard_limit():
    buf = SharedBuffer(1000, dt_alpha=100.0)
    assert buf.try_admit(0, 900)
    assert not buf.try_admit(1, 200)
    assert buf.try_admit(1, 100)


def test_dynamic_threshold_single_queue():
    """With alpha=1, one queue converges to at most half the buffer."""
    buf = SharedBuffer(1000, dt_alpha=1.0)
    admitted = 0
    for _ in range(100):
        if buf.try_admit(0, 10):
            admitted += 10
    # q <= alpha * (capacity - q)  =>  q <= 500
    assert 450 <= admitted <= 500


def test_dynamic_threshold_shrinks_under_contention():
    """A second congested queue reduces the first queue's allowance."""
    buf = SharedBuffer(1000, dt_alpha=1.0)
    while buf.try_admit(0, 10):
        pass
    q0_alone = buf.queue_bytes(0)
    buf2 = SharedBuffer(1000, dt_alpha=1.0)
    for _ in range(200):
        buf2.try_admit(0, 10)
        buf2.try_admit(1, 10)
    assert buf2.queue_bytes(0) < q0_alone


def test_threshold_formula():
    buf = SharedBuffer(1000, dt_alpha=2.0)
    assert buf.threshold() == 2000
    buf.try_admit(0, 300)
    assert buf.threshold() == pytest.approx(1400)


def test_release_more_than_held_raises():
    buf = SharedBuffer(1000)
    buf.try_admit(0, 100)
    with pytest.raises(ValueError):
        buf.release(0, 200)


def test_invalid_construction():
    with pytest.raises(ValueError):
        SharedBuffer(0)
    with pytest.raises(ValueError):
        SharedBuffer(100, dt_alpha=0)


def test_register_queue_idempotent():
    buf = SharedBuffer(100)
    buf.register_queue(3)
    buf.try_admit(3, 10)
    buf.register_queue(3)
    assert buf.queue_bytes(3) == 10


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 200),
                          st.booleans()), max_size=200))
def test_accounting_invariants(ops):
    """used == sum of queues, never negative, never above capacity."""
    buf = SharedBuffer(2000, dt_alpha=1.5)
    held = {q: [] for q in range(4)}
    for queue, size, is_admit in ops:
        if is_admit:
            if buf.try_admit(queue, size):
                held[queue].append(size)
        elif held[queue]:
            buf.release(queue, held[queue].pop())
        assert 0 <= buf.used <= buf.capacity
        assert buf.used == sum(sum(v) for v in held.values())
        for q in range(4):
            assert buf.queue_bytes(q) == sum(held[q])
