"""Unit tests for the output-queued switch."""

import pytest

from repro.net.packet import Packet
from repro.net.switch import Switch


def pkt(dst="b", payload=960):
    return Packet(src="a", dst=dst, sport=1, dport=2, payload_len=payload)


def test_forwarding_by_fib(sim, trap):
    sw = Switch(sim, "sw", ecn_enabled=False)
    port = sw.add_port(1e9, 0.0, peer=trap)
    sw.set_route("b", port)
    sw.receive(pkt("b"))
    sim.run()
    assert len(trap.packets) == 1
    assert sw.rx_packets == 1


def test_no_route_drops_and_counts(sim, trap):
    sw = Switch(sim, "sw", ecn_enabled=False)
    sw.add_port(1e9, 0.0, peer=trap)
    sw.receive(pkt("unknown"))
    sim.run()
    assert not trap.packets
    assert sw.no_route_drops == 1


def test_set_route_unknown_port_raises(sim):
    sw = Switch(sim, "sw")
    with pytest.raises(KeyError):
        sw.set_route("b", 99)


def test_ports_share_one_buffer(sim, trap):
    """Filling one port's queue shrinks what another port may hold."""
    sw = Switch(sim, "sw", buffer_bytes=10_000, dt_alpha=1.0,
                ecn_enabled=False)
    slow_a = sw.add_port(8e3, 0.0, peer=trap)
    slow_b = sw.add_port(8e3, 0.0, peer=trap)
    sw.set_route("a_side", slow_a)
    sw.set_route("b_side", slow_b)
    for _ in range(10):
        sw.receive(pkt("a_side"))
    used_after_a = sw.shared.used
    for _ in range(10):
        sw.receive(pkt("b_side"))
    assert sw.shared.queue_bytes(slow_b) < used_after_a


def test_drop_counters_aggregate(sim, trap):
    sw = Switch(sim, "sw", buffer_bytes=2_500, dt_alpha=10.0,
                ecn_enabled=False)
    port = sw.add_port(8e3, 0.0, peer=trap)
    sw.set_route("b", port)
    for _ in range(5):
        sw.receive(pkt("b"))
    assert sw.total_drops() == 3
    sim.run()
    assert sw.total_tx_packets() == 2
    assert sw.drop_rate() == pytest.approx(3 / 5)


def test_connect_port_later(sim, trap):
    sw = Switch(sim, "sw", ecn_enabled=False)
    port = sw.add_port(1e9, 0.0)
    sw.connect_port(port, trap)
    sw.set_route("b", port)
    sw.receive(pkt("b"))
    sim.run()
    assert trap.packets
